#include "multithread/workload.hh"

#include <algorithm>

#include "multithread/simulation_spec.hh"

namespace rr::mt {

WorkloadSpec
paperWorkload(unsigned num_threads, uint64_t work_per_thread,
              unsigned c_lo, unsigned c_hi)
{
    WorkloadSpec spec;
    spec.numThreads = num_threads;
    spec.workDist = makeConstant(work_per_thread);
    spec.regsDist = makeUniformInt(c_lo, c_hi);
    return spec;
}

WorkloadSpec
homogeneousWorkload(unsigned num_threads, uint64_t work_per_thread,
                    unsigned c)
{
    WorkloadSpec spec;
    spec.numThreads = num_threads;
    spec.workDist = makeConstant(work_per_thread);
    spec.regsDist = makeConstant(c);
    return spec;
}

uint64_t
defaultWorkPerThread(double mean_run)
{
    // At least ~250 faults per thread, with a floor so short-run
    // workloads still dominate the fixed transients.
    return std::max<uint64_t>(20000,
                              static_cast<uint64_t>(mean_run * 250.0));
}

// The helpers below are deprecated shims over SimulationSpec (see
// simulation_spec.hh); they are kept so existing callers continue to
// compile and produce value-identical configurations.

MtConfig
fig5Config(ArchKind arch, unsigned num_regs, double mean_run,
           uint64_t latency, uint64_t seed)
{
    return SimulationSpec()
        .cacheFaults(mean_run, latency)
        .arch(arch)
        .numRegs(num_regs)
        .seed(seed)
        .build();
}

MtConfig
fig6Config(ArchKind arch, unsigned num_regs, double mean_run,
           double mean_latency, uint64_t seed)
{
    return SimulationSpec()
        .syncFaults(mean_run, mean_latency)
        .arch(arch)
        .numRegs(num_regs)
        .seed(seed)
        .build();
}

MtConfig
combinedConfig(ArchKind arch, unsigned num_regs, double cache_run,
               uint64_t cache_latency, double sync_run,
               double sync_latency, uint64_t seed)
{
    return SimulationSpec()
        .combinedFaults(cache_run, cache_latency, sync_run,
                        sync_latency)
        .arch(arch)
        .numRegs(num_regs)
        .seed(seed)
        .build();
}

MtConfig
deterministicConfig(ArchKind arch, unsigned num_regs, uint64_t run,
                    uint64_t latency, unsigned num_threads,
                    unsigned regs_used, uint64_t seed)
{
    return SimulationSpec()
        .deterministicFaults(run, latency)
        .threads(num_threads)
        .registerDemand(regs_used)
        .arch(arch)
        .numRegs(num_regs)
        .seed(seed)
        .build();
}

} // namespace rr::mt
