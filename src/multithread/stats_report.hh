/**
 * @file
 * Human-readable reporting of MtStats: a cycle-breakdown table
 * (useful / idle / switch / allocation / load / unload / queue) and
 * a one-line summary, used by examples and benches.
 */

#ifndef RR_MULTITHREAD_STATS_REPORT_HH
#define RR_MULTITHREAD_STATS_REPORT_HH

#include <string>

#include "base/table.hh"
#include "multithread/mt_processor.hh"

namespace rr::mt {

/** Two-column breakdown of where the cycles went. */
Table cycleBreakdownTable(const MtStats &stats);

/** "eff 0.42 (central) over 1234567 cycles, 890 faults, ...". */
std::string summaryLine(const MtStats &stats);

} // namespace rr::mt

#endif // RR_MULTITHREAD_STATS_REPORT_HH
