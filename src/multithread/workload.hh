/**
 * @file
 * Ready-made thread supplies matching the paper's experiments:
 * the C ~ U[6, 24] mix of Sections 3.2–3.3 and the homogeneous
 * context sizes of Section 3.4, plus the conventional supply sizing
 * used by the experiment harnesses. Full simulation configurations
 * are assembled with mt::SimulationSpec (simulation_spec.hh).
 */

#ifndef RR_MULTITHREAD_WORKLOAD_HH
#define RR_MULTITHREAD_WORKLOAD_HH

#include <cstdint>

#include "multithread/mt_processor.hh"

namespace rr::mt {

/**
 * The paper's standard thread supply: @p num_threads threads of
 * @p work_per_thread useful cycles each, requiring C registers drawn
 * uniformly from [@p c_lo, @p c_hi] (the paper uses 6..24, a
 * distribution deliberately biased toward large contexts under the
 * power-of-two constraint).
 */
WorkloadSpec paperWorkload(unsigned num_threads,
                           uint64_t work_per_thread,
                           unsigned c_lo = 6, unsigned c_hi = 24);

/** Homogeneous context sizes (Section 3.4): every thread uses C. */
WorkloadSpec homogeneousWorkload(unsigned num_threads,
                                 uint64_t work_per_thread, unsigned c);

/**
 * Default thread-supply size used by the experiment configs.
 * Large enough to keep every register file saturated with waiting
 * threads through the measurement window.
 */
constexpr unsigned defaultThreadCount = 64;

/**
 * Work per thread scaled to the run length so that every simulation
 * observes many faults per thread in the measurement window.
 */
uint64_t defaultWorkPerThread(double mean_run);

} // namespace rr::mt

#endif // RR_MULTITHREAD_WORKLOAD_HH
