/**
 * @file
 * Ready-made workloads and simulation configurations matching the
 * paper's experiments (Sections 3.2–3.4): cache-fault runs (Figure
 * 5), synchronization-fault runs (Figure 6), the homogeneous context
 * sizes of Section 3.4, combined faults, and deterministic runs used
 * to validate against the analytical model.
 */

#ifndef RR_MULTITHREAD_WORKLOAD_HH
#define RR_MULTITHREAD_WORKLOAD_HH

#include <cstdint>

#include "multithread/mt_processor.hh"

namespace rr::mt {

/**
 * The paper's standard thread supply: @p num_threads threads of
 * @p work_per_thread useful cycles each, requiring C registers drawn
 * uniformly from [@p c_lo, @p c_hi] (the paper uses 6..24, a
 * distribution deliberately biased toward large contexts under the
 * power-of-two constraint).
 */
WorkloadSpec paperWorkload(unsigned num_threads,
                           uint64_t work_per_thread,
                           unsigned c_lo = 6, unsigned c_hi = 24);

/** Homogeneous context sizes (Section 3.4): every thread uses C. */
WorkloadSpec homogeneousWorkload(unsigned num_threads,
                                 uint64_t work_per_thread, unsigned c);

/**
 * Figure 5 configuration: cache faults (geometric run length mean
 * @p mean_run, constant latency @p latency), S = 6, contexts never
 * unloaded, C ~ U[6, 24].
 *
 * @param arch      architecture under test
 * @param num_regs  register file size F (64, 128, or 256)
 */
MtConfig fig5Config(ArchKind arch, unsigned num_regs, double mean_run,
                    uint64_t latency, uint64_t seed = 1);

/**
 * Figure 6 configuration: synchronization faults (geometric run
 * length mean @p mean_run, exponential latency mean @p mean_latency),
 * S = 8, two-phase competitive unloading, C ~ U[6, 24].
 */
MtConfig fig6Config(ArchKind arch, unsigned num_regs, double mean_run,
                    double mean_latency, uint64_t seed = 1);

/**
 * Combined cache + synchronization faults (Section 3: "the main
 * effect was to increase the overall fault rate").
 */
MtConfig combinedConfig(ArchKind arch, unsigned num_regs,
                        double cache_run, uint64_t cache_latency,
                        double sync_run, double sync_latency,
                        uint64_t seed = 1);

/**
 * Deterministic run lengths and latencies with @p num_threads
 * identical threads — the setting of the Section 3.4 closed-form
 * analysis (E_sat and E_lin).
 */
MtConfig deterministicConfig(ArchKind arch, unsigned num_regs,
                             uint64_t run, uint64_t latency,
                             unsigned num_threads, unsigned regs_used,
                             uint64_t seed = 1);

/**
 * Default thread-supply size used by the experiment configs.
 * Large enough to keep every register file saturated with waiting
 * threads through the measurement window.
 */
constexpr unsigned defaultThreadCount = 64;

/**
 * Work per thread scaled to the run length so that every simulation
 * observes many faults per thread in the measurement window.
 */
uint64_t defaultWorkPerThread(double mean_run);

} // namespace rr::mt

#endif // RR_MULTITHREAD_WORKLOAD_HH
