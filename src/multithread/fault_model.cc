#include "multithread/fault_model.hh"

#include <sstream>

#include "base/logging.hh"

namespace rr::mt {

CacheFaultModel::CacheFaultModel(double mean_run, uint64_t latency)
    : run_(mean_run), latency_(latency)
{
}

FaultSample
CacheFaultModel::next(Rng &rng, uint64_t /* sequence */) const
{
    return {run_.sample(rng), latency_, FaultClass::Cache};
}

double
CacheFaultModel::meanRunLength() const
{
    return run_.mean();
}

double
CacheFaultModel::meanLatency() const
{
    return static_cast<double>(latency_);
}

std::string
CacheFaultModel::describe() const
{
    std::ostringstream os;
    os << "cache(R=" << run_.mean() << ", L=" << latency_ << ")";
    return os.str();
}

SyncFaultModel::SyncFaultModel(double mean_run, double mean_latency)
    : run_(mean_run), latency_(mean_latency)
{
}

FaultSample
SyncFaultModel::next(Rng &rng, uint64_t /* sequence */) const
{
    return {run_.sample(rng), latency_.sample(rng),
            FaultClass::Synchronization};
}

double
SyncFaultModel::meanRunLength() const
{
    return run_.mean();
}

double
SyncFaultModel::meanLatency() const
{
    return latency_.mean();
}

std::string
SyncFaultModel::describe() const
{
    std::ostringstream os;
    os << "sync(R=" << run_.mean() << ", L=" << latency_.mean() << ")";
    return os.str();
}

CombinedFaultModel::CombinedFaultModel(double cache_run,
                                       uint64_t cache_latency,
                                       double sync_run,
                                       double sync_latency)
    : cacheRun_(cache_run),
      cacheLatency_(cache_latency),
      syncRun_(sync_run),
      syncLatency_(sync_latency)
{
}

FaultSample
CombinedFaultModel::next(Rng &rng, uint64_t /* sequence */) const
{
    const uint64_t cache_at = cacheRun_.sample(rng);
    const uint64_t sync_at = syncRun_.sample(rng);
    if (cache_at <= sync_at)
        return {cache_at, cacheLatency_, FaultClass::Cache};
    return {sync_at, syncLatency_.sample(rng),
            FaultClass::Synchronization};
}

double
CombinedFaultModel::meanRunLength() const
{
    // Approximate: the minimum of two geometrics is geometric with
    // combined per-cycle rate 1/Rc + 1/Rs - 1/(Rc*Rs).
    const double pc = 1.0 / cacheRun_.mean();
    const double ps = 1.0 / syncRun_.mean();
    return 1.0 / (pc + ps - pc * ps);
}

double
CombinedFaultModel::meanLatency() const
{
    // Weight latencies by each process's per-cycle rate.
    const double pc = 1.0 / cacheRun_.mean();
    const double ps = 1.0 / syncRun_.mean();
    return (pc * static_cast<double>(cacheLatency_) +
            ps * syncLatency_.mean()) /
           (pc + ps);
}

std::string
CombinedFaultModel::describe() const
{
    std::ostringstream os;
    os << "combined(cache R=" << cacheRun_.mean()
       << " L=" << cacheLatency_ << "; sync R=" << syncRun_.mean()
       << " L=" << syncLatency_.mean() << ")";
    return os.str();
}

PhasedFaultModel::PhasedFaultModel(std::vector<Phase> phases)
    : phases_(std::move(phases))
{
    rr_assert(!phases_.empty(), "need at least one phase");
    for (const Phase &phase : phases_) {
        rr_assert(phase.faults >= 1, "phase with no faults");
        rr_assert(phase.meanRun >= 1.0, "phase run length < 1");
        cycleLength_ += phase.faults;
    }
}

const PhasedFaultModel::Phase &
PhasedFaultModel::phaseFor(uint64_t sequence) const
{
    uint64_t pos = sequence % cycleLength_;
    for (const Phase &phase : phases_) {
        if (pos < phase.faults)
            return phase;
        pos -= phase.faults;
    }
    rr_panic("phase schedule exhausted");
}

FaultSample
PhasedFaultModel::next(Rng &rng, uint64_t sequence) const
{
    const Phase &phase = phaseFor(sequence);
    FaultSample sample;
    sample.runLength = GeometricDist(phase.meanRun).sample(rng);
    if (phase.exponentialLatency) {
        sample.latency =
            ExponentialDist(phase.meanLatency).sample(rng);
    } else {
        sample.latency = static_cast<uint64_t>(phase.meanLatency);
    }
    sample.kind = phase.kind;
    return sample;
}

double
PhasedFaultModel::meanRunLength() const
{
    double weighted = 0.0;
    for (const Phase &phase : phases_)
        weighted += static_cast<double>(phase.faults) * phase.meanRun;
    return weighted / static_cast<double>(cycleLength_);
}

double
PhasedFaultModel::meanLatency() const
{
    double weighted = 0.0;
    for (const Phase &phase : phases_) {
        weighted +=
            static_cast<double>(phase.faults) * phase.meanLatency;
    }
    return weighted / static_cast<double>(cycleLength_);
}

std::string
PhasedFaultModel::describe() const
{
    std::ostringstream os;
    os << "phased(" << phases_.size() << " phases, cycle "
       << cycleLength_ << " faults)";
    return os.str();
}

DeterministicFaultModel::DeterministicFaultModel(uint64_t run,
                                                 uint64_t latency)
    : run_(run), latency_(latency)
{
}

FaultSample
DeterministicFaultModel::next(Rng &, uint64_t /* sequence */) const
{
    return {run_, latency_, FaultClass::Cache};
}

double
DeterministicFaultModel::meanRunLength() const
{
    return static_cast<double>(run_);
}

double
DeterministicFaultModel::meanLatency() const
{
    return static_cast<double>(latency_);
}

std::string
DeterministicFaultModel::describe() const
{
    std::ostringstream os;
    os << "deterministic(R=" << run_ << ", L=" << latency_ << ")";
    return os.str();
}

} // namespace rr::mt
