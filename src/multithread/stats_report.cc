#include "multithread/stats_report.hh"

#include <sstream>

namespace rr::mt {

Table
cycleBreakdownTable(const MtStats &stats)
{
    Table table({"category", "cycles", "fraction"});
    const double total =
        stats.totalCycles == 0 ? 1.0
                               : static_cast<double>(stats.totalCycles);
    const auto row = [&](const char *name, uint64_t cycles) {
        table.addRow({name, Table::num(cycles),
                      Table::num(static_cast<double>(cycles) / total)});
    };
    row("useful work", stats.usefulCycles);
    row("idle / spin", stats.idleCycles);
    row("context switch", stats.switchCycles);
    row("allocation", stats.allocCycles);
    row("deallocation", stats.deallocCycles);
    row("context load", stats.loadCycles);
    row("context unload", stats.unloadCycles);
    row("thread queue", stats.queueCycles);
    row("total", stats.totalCycles);
    return table;
}

std::string
summaryLine(const MtStats &stats)
{
    std::ostringstream os;
    os << "eff " << Table::num(stats.efficiencyCentral)
       << " (central) / " << Table::num(stats.efficiencyTotal)
       << " (total) over " << stats.totalCycles << " cycles; "
       << stats.faults << " faults, " << stats.loads << " loads, "
       << stats.unloads << " unloads, resident avg "
       << Table::num(stats.avgResidentContexts, 1) << " (max "
       << stats.maxResidentContexts << ")";
    return os.str();
}

} // namespace rr::mt
