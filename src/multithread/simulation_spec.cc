#include "multithread/simulation_spec.hh"

#include <utility>

#include "base/bitops.hh"
#include "multithread/workload.hh"
#include "runtime/context_allocator.hh"

namespace rr::mt {

void
SimulationSpec::fail(const std::string &what)
{
    throw SpecError("SimulationSpec: " + what);
}

SimulationSpec &
SimulationSpec::threads(unsigned count)
{
    threads_ = count;
    return *this;
}

SimulationSpec &
SimulationSpec::workPerThread(uint64_t cycles)
{
    workPerThread_ = cycles;
    return *this;
}

SimulationSpec &
SimulationSpec::registerDemand(unsigned lo, unsigned hi)
{
    regsLo_ = lo;
    regsHi_ = hi;
    return *this;
}

SimulationSpec &
SimulationSpec::registerDemand(unsigned c)
{
    return registerDemand(c, c);
}

SimulationSpec &
SimulationSpec::priorities(unsigned levels,
                           std::shared_ptr<Distribution> dist)
{
    priorityLevels_ = levels;
    priorityDist_ = std::move(dist);
    return *this;
}

SimulationSpec &
SimulationSpec::cacheFaults(double mean_run, uint64_t latency)
{
    if (family_ != FaultFamily::None)
        fail("fault process set twice; pick one of cacheFaults(), "
             "syncFaults(), combinedFaults(), deterministicFaults()");
    if (mean_run <= 0.0)
        fail("cache-fault mean run length must be positive (got " +
             std::to_string(mean_run) + ")");
    family_ = FaultFamily::Cache;
    faultModel_ = std::make_shared<CacheFaultModel>(mean_run, latency);
    meanRun_ = mean_run;
    return *this;
}

SimulationSpec &
SimulationSpec::syncFaults(double mean_run, double mean_latency)
{
    if (family_ != FaultFamily::None)
        fail("fault process set twice; pick one of cacheFaults(), "
             "syncFaults(), combinedFaults(), deterministicFaults()");
    if (mean_run <= 0.0)
        fail("sync-fault mean run length must be positive (got " +
             std::to_string(mean_run) + ")");
    family_ = FaultFamily::Sync;
    faultModel_ =
        std::make_shared<SyncFaultModel>(mean_run, mean_latency);
    meanRun_ = mean_run;
    return *this;
}

SimulationSpec &
SimulationSpec::combinedFaults(double cache_run, uint64_t cache_latency,
                               double sync_run, double sync_latency)
{
    if (family_ != FaultFamily::None)
        fail("fault process set twice; pick one of cacheFaults(), "
             "syncFaults(), combinedFaults(), deterministicFaults()");
    if (cache_run <= 0.0 || sync_run <= 0.0)
        fail("combined-fault mean run lengths must be positive");
    family_ = FaultFamily::Combined;
    faultModel_ = std::make_shared<CombinedFaultModel>(
        cache_run, cache_latency, sync_run, sync_latency);
    meanRun_ = 1.0 / (1.0 / cache_run + 1.0 / sync_run);
    return *this;
}

SimulationSpec &
SimulationSpec::deterministicFaults(uint64_t run, uint64_t latency)
{
    if (family_ != FaultFamily::None)
        fail("fault process set twice; pick one of cacheFaults(), "
             "syncFaults(), combinedFaults(), deterministicFaults()");
    if (run == 0)
        fail("deterministic run length must be positive");
    family_ = FaultFamily::Deterministic;
    faultModel_ =
        std::make_shared<DeterministicFaultModel>(run, latency);
    meanRun_ = static_cast<double>(run);
    return *this;
}

SimulationSpec &
SimulationSpec::faultModel(std::shared_ptr<const FaultModel> model,
                           double mean_run)
{
    if (family_ != FaultFamily::None)
        fail("fault process set twice; pick one of cacheFaults(), "
             "syncFaults(), combinedFaults(), deterministicFaults()");
    if (model == nullptr)
        fail("custom fault model is null");
    if (mean_run <= 0.0)
        fail("custom fault model mean run length must be positive "
             "(got " +
             std::to_string(mean_run) + ")");
    family_ = FaultFamily::Custom;
    faultModel_ = std::move(model);
    meanRun_ = mean_run;
    return *this;
}

SimulationSpec &
SimulationSpec::arch(ArchKind kind)
{
    arch_ = kind;
    return *this;
}

SimulationSpec &
SimulationSpec::numRegs(unsigned f)
{
    numRegs_ = f;
    return *this;
}

SimulationSpec &
SimulationSpec::operandWidth(unsigned w)
{
    operandWidth_ = w;
    return *this;
}

SimulationSpec &
SimulationSpec::minContextSize(unsigned regs)
{
    minContextSize_ = regs;
    return *this;
}

SimulationSpec &
SimulationSpec::fixedContextRegs(unsigned regs)
{
    fixedContextRegs_ = regs;
    return *this;
}

SimulationSpec &
SimulationSpec::customPolicy(
    std::function<std::unique_ptr<ContextPolicy>()> make)
{
    customPolicy_ = std::move(make);
    return *this;
}

SimulationSpec &
SimulationSpec::switchCost(uint64_t s)
{
    switchCost_ = s;
    return *this;
}

SimulationSpec &
SimulationSpec::costs(const runtime::CostModel &model)
{
    costs_ = model;
    return *this;
}

SimulationSpec &
SimulationSpec::neverUnload()
{
    unloadPolicy_ = UnloadPolicyKind::Never;
    return *this;
}

SimulationSpec &
SimulationSpec::twoPhaseUnload()
{
    unloadPolicy_ = UnloadPolicyKind::TwoPhase;
    return *this;
}

SimulationSpec &
SimulationSpec::residencyCap(unsigned cap)
{
    residencyCap_ = cap;
    return *this;
}

SimulationSpec &
SimulationSpec::seed(uint64_t value)
{
    seed_ = value;
    return *this;
}

SimulationSpec &
SimulationSpec::statsWindow(double lo, double hi)
{
    statsLoFrac_ = lo;
    statsHiFrac_ = hi;
    return *this;
}

SimulationSpec &
SimulationSpec::traceSink(trace::TraceSink *sink)
{
    traceSink_ = sink;
    return *this;
}

SimulationSpec &
SimulationSpec::checkpointEvery(uint64_t n, std::string path)
{
    checkpointEvery_ = n;
    checkpointPath_ = std::move(path);
    return *this;
}

SimulationSpec &
SimulationSpec::resumeFrom(std::string checkpoint)
{
    resumeFrom_ = std::move(checkpoint);
    return *this;
}

MtConfig
SimulationSpec::build() const
{
    // --- validate ---------------------------------------------------
    if (family_ == FaultFamily::None)
        fail("no fault process; call cacheFaults(), syncFaults(), "
             "combinedFaults(), or deterministicFaults()");
    if (threads_ == 0)
        fail("thread count must be >= 1");
    if (regsLo_ == 0)
        fail("register demand must be >= 1 register per thread");
    if (regsLo_ > regsHi_)
        fail("register demand range is inverted (" +
             std::to_string(regsLo_) + ".." + std::to_string(regsHi_) +
             ")");
    if (operandWidth_ == 0 || operandWidth_ > 16)
        fail("operand width w must be in 1..16 (got " +
             std::to_string(operandWidth_) + ")");

    const unsigned max_context = 1u << operandWidth_;
    const bool custom = static_cast<bool>(customPolicy_);
    if (!custom) {
        switch (arch_) {
          case ArchKind::Flexible: {
            if (regsHi_ > max_context)
                fail("register demand " + std::to_string(regsLo_) +
                     ".." + std::to_string(regsHi_) +
                     " exceeds the largest context (2^" +
                     std::to_string(operandWidth_) + " = " +
                     std::to_string(max_context) + " registers)");
            // The chunked allocator behind the flexible policy only
            // deals in power-of-two contexts over a power-of-two
            // file; reject here rather than panic at run time.
            if (minContextSize_ < runtime::ContextAllocator::chunkRegs ||
                minContextSize_ > max_context ||
                !isPowerOfTwo(minContextSize_))
                fail("minimum context size " +
                     std::to_string(minContextSize_) +
                     " must be a power of two in " +
                     std::to_string(
                         runtime::ContextAllocator::chunkRegs) +
                     "..2^w = " + std::to_string(max_context));
            if (numRegs_ < 16 || !isPowerOfTwo(numRegs_))
                fail("register file size " + std::to_string(numRegs_) +
                     " must be a power of two >= 16 for flexible "
                     "contexts");
            // The largest context any thread will actually need: the
            // power-of-two covering the top of the demand range.
            unsigned needed = minContextSize_;
            while (needed < regsHi_)
                needed <<= 1;
            if (numRegs_ < needed)
                fail("register file of " + std::to_string(numRegs_) +
                     " cannot hold a context of " +
                     std::to_string(needed) +
                     " registers (demand up to " +
                     std::to_string(regsHi_) + " rounds up to it)");
            break;
          }
          case ArchKind::FixedHw:
            if (fixedContextRegs_ == 0)
                fail("fixed hardware contexts need >= 1 register");
            if (regsHi_ > fixedContextRegs_)
                fail("a thread may demand " + std::to_string(regsHi_) +
                     " registers but fixed hardware contexts hold " +
                     std::to_string(fixedContextRegs_));
            if (numRegs_ < fixedContextRegs_)
                fail("register file of " + std::to_string(numRegs_) +
                     " cannot hold one fixed context of " +
                     std::to_string(fixedContextRegs_));
            if (numRegs_ % fixedContextRegs_ != 0)
                fail("register file of " + std::to_string(numRegs_) +
                     " is not a whole number of fixed contexts of " +
                     std::to_string(fixedContextRegs_));
            break;
          case ArchKind::AddReloc:
            if (regsHi_ > numRegs_)
                fail("a thread may demand " + std::to_string(regsHi_) +
                     " registers but the register file holds " +
                     std::to_string(numRegs_));
            break;
        }
    }
    if (!(statsLoFrac_ >= 0.0 && statsLoFrac_ < statsHiFrac_ &&
          statsHiFrac_ <= 1.0))
        fail("stats window [" + std::to_string(statsLoFrac_) + ", " +
             std::to_string(statsHiFrac_) +
             "] must satisfy 0 <= lo < hi <= 1");
    if (checkpointEvery_ != 0 && checkpointPath_.empty())
        fail("checkpointEvery() needs a path to write snapshots to");
    if (checkpointEvery_ == 0 && !checkpointPath_.empty())
        fail("checkpoint path set but the interval is 0; pass the "
             "interval to checkpointEvery()");

    // --- assemble ---------------------------------------------------
    // Conventional per-family settings (Figures 5 and 6): the cache
    // experiments use S = 6 and never unload; the synchronization and
    // combined experiments use S = 8 with two-phase unloading.
    uint64_t s = 6;
    UnloadPolicyKind policy = UnloadPolicyKind::Never;
    if (family_ == FaultFamily::Sync ||
        family_ == FaultFamily::Combined) {
        s = 8;
        policy = UnloadPolicyKind::TwoPhase;
    }
    if (switchCost_)
        s = *switchCost_;
    if (unloadPolicy_)
        policy = *unloadPolicy_;

    MtConfig config;
    config.workload.numThreads = threads_;
    config.workload.workDist = makeConstant(
        workPerThread_ ? *workPerThread_
                       : defaultWorkPerThread(meanRun_));
    config.workload.regsDist =
        regsLo_ == regsHi_
            ? makeConstant(regsLo_)
            : makeUniformInt(regsLo_, regsHi_);
    config.workload.priorityDist = priorityDist_;
    config.faultModel = faultModel_;
    config.costs = costs_ ? *costs_
                          : (arch_ == ArchKind::FixedHw
                                 ? runtime::CostModel::paperFixed(s)
                                 : runtime::CostModel::paperFlexible(s));
    config.arch = arch_;
    config.customPolicy = customPolicy_;
    config.numRegs = numRegs_;
    config.operandWidth = operandWidth_;
    config.minContextSize = minContextSize_;
    config.fixedContextRegs = fixedContextRegs_;
    config.unloadPolicy = policy;
    config.residencyCap = residencyCap_;
    config.seed = seed_;
    config.priorityLevels = priorityLevels_;
    config.statsLoFrac = statsLoFrac_;
    config.statsHiFrac = statsHiFrac_;
    config.traceSink = traceSink_;
    config.checkpointEvery = checkpointEvery_;
    config.checkpointPath = checkpointPath_;
    config.resumeFrom = resumeFrom_;
    return config;
}

MtStats
SimulationSpec::run() const
{
    return simulate(build());
}

} // namespace rr::mt
