#include "ext/context_cache.hh"

#include <algorithm>
#include <deque>

#include "base/logging.hh"
#include "base/rng.hh"

namespace rr::ext {

namespace {

/** Internal per-thread state. */
struct CacheThread
{
    unsigned id = 0;
    unsigned regs = 0;        ///< footprint C
    uint64_t remaining = 0;   ///< useful cycles left
    bool resident = false;    ///< footprint currently cached
    bool blocked = false;
    uint64_t completion = 0;
    uint64_t faultSeq = 0;    ///< fault draws made (sequence index)
    Rng rng{0};
};

} // namespace

ContextCacheStats
simulateContextCache(const ContextCacheConfig &config)
{
    rr_assert(config.workDist && config.regsDist && config.faultModel,
              "incomplete configuration");
    rr_assert(config.numThreads >= 1, "no threads");

    Rng master(config.seed);
    std::vector<CacheThread> threads(config.numThreads);
    std::deque<unsigned> ready;
    for (unsigned i = 0; i < config.numThreads; ++i) {
        CacheThread &t = threads[i];
        t.id = i;
        t.rng = master.split();
        t.regs = static_cast<unsigned>(
            std::min<uint64_t>(config.regsDist->sample(t.rng),
                               config.numRegs));
        t.regs = std::max(t.regs, 1u);
        t.remaining =
            std::max<uint64_t>(1, config.workDist->sample(t.rng));
        ready.push_back(i);
    }

    // LRU order of resident footprints (front = least recent).
    std::list<unsigned> lru;
    std::unordered_map<unsigned, std::list<unsigned>::iterator>
        lruPos;
    unsigned residentRegs = 0;

    // Completion heap.
    using Event = std::pair<uint64_t, unsigned>;
    std::priority_queue<Event, std::vector<Event>, std::greater<>>
        completions;

    ContextCacheStats stats;
    IntervalRecorder recorder;
    uint64_t now = 0;
    uint64_t useful = 0;
    unsigned finished = 0;
    recorder.record(0, 0);

    auto evict_for = [&](unsigned needed) {
        while (config.numRegs - residentRegs < needed) {
            rr_assert(!lru.empty(), "cannot evict enough registers");
            const unsigned victim = lru.front();
            lru.pop_front();
            lruPos.erase(victim);
            threads[victim].resident = false;
            residentRegs -= threads[victim].regs;
        }
    };
    auto touch = [&](unsigned tid) {
        CacheThread &t = threads[tid];
        if (t.resident) {
            lru.erase(lruPos[tid]);
        } else {
            // Demand fill: evict LRU footprints, pay per register.
            evict_for(t.regs);
            residentRegs += t.regs;
            t.resident = true;
            const uint64_t cost =
                static_cast<uint64_t>(t.regs) *
                config.spillFillPerReg;
            now += cost;
            stats.spillFillCycles += cost;
            ++stats.refills;
        }
        lruPos[tid] = lru.insert(lru.end(), tid);
    };

    while (finished < config.numThreads) {
        // Wake completions.
        while (!completions.empty() &&
               completions.top().first <= now) {
            const unsigned tid = completions.top().second;
            completions.pop();
            threads[tid].blocked = false;
            ready.push_back(tid);
        }

        if (ready.empty()) {
            rr_assert(!completions.empty(), "deadlock");
            const uint64_t next = completions.top().first;
            stats.idleCycles += next - now;
            now = next;
            recorder.record(now, useful);
            continue;
        }

        // Resident-first dispatch: "spill only when immediately
        // needed" means the scheduler prefers threads whose bindings
        // are already cached; cold threads run when no hot thread is
        // ready (this is what keeps the cache from thrashing under
        // oversubscription).
        auto pick = ready.begin();
        for (auto it = ready.begin(); it != ready.end(); ++it) {
            if (threads[*it].resident) {
                pick = it;
                break;
            }
        }
        const unsigned tid = *pick;
        ready.erase(pick);
        CacheThread &t = threads[tid];

        // Context switch: just a context-ID change (no RRM setup, no
        // bulk restore) plus any demand fills.
        now += config.switchCost;
        stats.switchCycles += config.switchCost;
        touch(tid);

        // Sequence-indexed draw: phase-structured models advance
        // through their schedule as the thread faults.
        const mt::FaultSample fault =
            config.faultModel->next(t.rng, t.faultSeq++);
        const uint64_t segment =
            std::min<uint64_t>(fault.runLength, t.remaining);
        now += segment;
        useful += segment;
        stats.usefulCycles += segment;
        t.remaining -= segment;

        if (t.remaining == 0) {
            ++finished;
            if (t.resident) {
                lru.erase(lruPos[tid]);
                lruPos.erase(tid);
                t.resident = false;
                residentRegs -= t.regs;
            }
        } else {
            ++stats.faults;
            t.blocked = true;
            t.completion = now + fault.latency;
            completions.push({t.completion, tid});
            // The footprint stays cached until capacity evicts it —
            // "spills only when immediately needed" (Section 4).
        }
        recorder.record(now, useful);
    }

    stats.totalCycles = now;
    stats.efficiencyTotal =
        now == 0 ? 0.0
                 : static_cast<double>(useful) /
                       static_cast<double>(now);
    stats.efficiencyCentral =
        recorder.centralRate(config.statsLoFrac, config.statsHiFrac);
    return stats;
}

} // namespace rr::ext
