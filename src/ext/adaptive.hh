/**
 * @file
 * Section 5.2 extension: cache interference and adaptive limiting of
 * the number of resident contexts.
 *
 * Threads sharing a cache interfere mostly destructively: each
 * additional resident context raises the miss ratio, which shortens
 * the effective run length between faults. We model this with a
 * linear interference coefficient alpha:
 *
 *     R_eff(N) = R / (1 + alpha * (N - 1))
 *
 * More contexts help latency tolerance (Section 3.4) but hurt R_eff;
 * there is an optimum N. AdaptiveController searches for it the way
 * the paper's proposed runtime would — by measuring efficiency at
 * candidate residency caps and keeping the best (a working-set style
 * feedback control, after Denning).
 */

#ifndef RR_EXT_ADAPTIVE_HH
#define RR_EXT_ADAPTIVE_HH

#include <functional>
#include <vector>

#include "multithread/mt_processor.hh"

namespace rr::ext {

/** Effective run length with @p resident contexts (alpha model). */
double interferenceRunLength(double mean_run, double alpha,
                             unsigned resident);

/** Measured efficiency at one residency cap. */
struct CapSample
{
    unsigned cap = 0;
    double effectiveRunLength = 0.0;
    double efficiency = 0.0;
};

/** Outcome of the adaptive search. */
struct AdaptiveResult
{
    std::vector<CapSample> samples; ///< every cap evaluated
    CapSample best;                 ///< highest-efficiency cap
    CapSample uncapped;             ///< no limit (naive baseline)
};

/**
 * Evaluate residency caps 1..@p max_cap plus the uncapped baseline.
 *
 * @param base       configuration template (cache-fault experiments)
 * @param mean_run   interference-free run length R
 * @param latency    cache fault latency L
 * @param alpha      interference coefficient
 * @param max_cap    largest residency cap to evaluate
 * @param regs_per_context  registers per resident context (used to
 *                   derive the register file's context capacity, and
 *                   hence the uncapped residency, deterministically)
 */
AdaptiveResult adaptiveSearch(const mt::MtConfig &base, double mean_run,
                              uint64_t latency, double alpha,
                              unsigned max_cap,
                              unsigned regs_per_context = 8);

} // namespace rr::ext

#endif // RR_EXT_ADAPTIVE_HH
