#include "ext/software_only.hh"

#include <cmath>
#include <numeric>
#include <sstream>

#include "base/logging.hh"
#include "multithread/workload.hh"

namespace rr::ext {

using runtime::Context;

SoftwareOnlyPolicy::SoftwareOnlyPolicy(unsigned num_regs,
                                       std::vector<unsigned> slot_sizes)
    : numRegs_(num_regs)
{
    rr_assert(!slot_sizes.empty(), "need at least one slot");
    const unsigned total =
        std::accumulate(slot_sizes.begin(), slot_sizes.end(), 0u);
    rr_assert(total <= num_regs, "slots (", total,
              " regs) exceed the register file (", num_regs, ")");

    unsigned base = 0;
    for (const unsigned size : slot_sizes) {
        rr_assert(size > 0, "zero-size slot");
        slotBase_.push_back(base);
        slotSize_.push_back(size);
        slotFree_.push_back(true);
        base += size;
    }
}

std::optional<Context>
SoftwareOnlyPolicy::allocate(unsigned regs_used)
{
    // The thread's binary contains a code version for every slot, so
    // it can occupy any free slot that is large enough.
    for (size_t i = 0; i < slotFree_.size(); ++i) {
        if (!slotFree_[i] || slotSize_[i] < regs_used)
            continue;
        slotFree_[i] = false;
        Context context;
        context.rrm = slotBase_[i];
        context.size = slotSize_[i];
        return context;
    }
    return std::nullopt;
}

unsigned
SoftwareOnlyPolicy::requiredSpace(unsigned regs_used) const
{
    // Slots are fixed at compile time; report the smallest slot that
    // can hold the thread.
    unsigned best = 0;
    for (const unsigned size : slotSize_) {
        if (size >= regs_used && (best == 0 || size < best))
            best = size;
    }
    return best;
}

void
SoftwareOnlyPolicy::release(const Context &context)
{
    for (size_t i = 0; i < slotBase_.size(); ++i) {
        if (slotBase_[i] == context.rrm &&
            slotSize_[i] == context.size) {
            rr_assert(!slotFree_[i], "double free of slot ", i);
            slotFree_[i] = true;
            return;
        }
    }
    rr_panic("context does not match any compile-time slot");
}

unsigned
SoftwareOnlyPolicy::numRegs() const
{
    return numRegs_;
}

unsigned
SoftwareOnlyPolicy::freeRegs() const
{
    unsigned free_regs = 0;
    for (size_t i = 0; i < slotFree_.size(); ++i) {
        if (slotFree_[i])
            free_regs += slotSize_[i];
    }
    return free_regs;
}

std::string
SoftwareOnlyPolicy::describe() const
{
    std::ostringstream os;
    os << "software-only(F=" << numRegs_ << ", " << slotBase_.size()
       << " compile-time slots)";
    return os.str();
}

double
codeExpansionRunLength(double mean_run, unsigned versions,
                       double penalty_per_doubling)
{
    rr_assert(versions >= 1, "need at least one code version");
    rr_assert(penalty_per_doubling >= 0.0 && penalty_per_doubling < 1.0,
              "penalty must be in [0, 1)");
    const double doublings = std::log2(static_cast<double>(versions));
    return mean_run *
           std::pow(1.0 - penalty_per_doubling, doublings);
}

SoftwareOnlyResult
simulateSoftwareOnly(unsigned num_regs, unsigned versions,
                     double mean_run, uint64_t latency,
                     unsigned num_threads, uint64_t work_per_thread,
                     unsigned regs_per_thread,
                     double penalty_per_doubling, uint64_t seed)
{
    rr_assert(versions >= 1, "need at least one code version");
    const unsigned slot_regs = num_regs / versions;
    rr_assert(slot_regs >= regs_per_thread,
              "threads need ", regs_per_thread,
              " registers but slots hold only ", slot_regs);

    SoftwareOnlyResult result;
    result.versions = versions;
    result.effectiveRunLength =
        codeExpansionRunLength(mean_run, versions,
                               penalty_per_doubling);

    mt::MtConfig config;
    config.workload = mt::homogeneousWorkload(
        num_threads, work_per_thread, regs_per_thread);
    config.faultModel = std::make_shared<mt::CacheFaultModel>(
        result.effectiveRunLength, latency);
    // No relocation hardware: switching is a jump through a version
    // table, comparable to the Figure 3 path; allocation is static
    // and free.
    config.costs = runtime::CostModel::paperFixed(6);
    config.numRegs = num_regs;
    config.customPolicy = [num_regs, versions, slot_regs] {
        return std::make_unique<SoftwareOnlyPolicy>(
            num_regs,
            std::vector<unsigned>(versions, slot_regs));
    };
    config.unloadPolicy = mt::UnloadPolicyKind::Never;
    config.seed = seed;

    result.stats = mt::simulate(std::move(config));
    return result;
}

} // namespace rr::ext
