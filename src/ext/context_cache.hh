/**
 * @file
 * The Named State Processor comparison (Section 4): Nuth & Dally's
 * *context cache* replaces the register file with a fully
 * associative cache of variable bindings — registers spill "only
 * when they are immediately needed for another purpose". The paper
 * positions register relocation between fixed hardware contexts and
 * this design: "a binding of variable names to contexts that is
 * finer than conventional multithreaded processors, but coarser
 * than the context cache".
 *
 * Model (documented simplification): thread footprints are cached
 * with per-thread granularity under LRU. A thread is dispatched
 * whether or not its registers are resident; the registers it is
 * missing are filled on demand (charged per register), evicting the
 * least-recently-run threads' registers when the file is full.
 * There is no bulk context load/unload and no allocation — exactly
 * the behaviour that makes the design attractive — at the cost of
 * a fully associative register file, which we note but do not
 * model (it would lengthen the cycle time, not the cycle count).
 */

#ifndef RR_EXT_CONTEXT_CACHE_HH
#define RR_EXT_CONTEXT_CACHE_HH

#include <cstdint>
#include <list>
#include <memory>
#include <queue>
#include <unordered_map>
#include <vector>

#include "base/stats.hh"
#include "multithread/fault_model.hh"
#include "multithread/thread.hh"

namespace rr::ext {

/** Configuration of a context-cache simulation. */
struct ContextCacheConfig
{
    unsigned numThreads = 32;
    std::shared_ptr<Distribution> workDist;  ///< work per thread
    std::shared_ptr<Distribution> regsDist;  ///< footprint C
    std::shared_ptr<const mt::FaultModel> faultModel;

    unsigned numRegs = 128;    ///< register file (cache) capacity
    uint64_t switchCost = 4;   ///< context-ID change (no mask setup)
    uint64_t spillFillPerReg = 2; ///< cycles per demand spill+fill
    uint64_t seed = 1;

    double statsLoFrac = 0.2;
    double statsHiFrac = 0.8;
};

/** Results of a context-cache simulation. */
struct ContextCacheStats
{
    uint64_t totalCycles = 0;
    uint64_t usefulCycles = 0;
    uint64_t idleCycles = 0;
    uint64_t switchCycles = 0;
    uint64_t spillFillCycles = 0;
    uint64_t faults = 0;
    uint64_t refills = 0;      ///< dispatches that missed the cache
    double efficiencyCentral = 0.0;
    double efficiencyTotal = 0.0;
};

/** Simulate a coarse-MT node with a context-cache register file. */
ContextCacheStats
simulateContextCache(const ContextCacheConfig &config);

} // namespace rr::ext

#endif // RR_EXT_CONTEXT_CACHE_HH
