/**
 * @file
 * Section 5.3 extension: multiple active contexts.
 *
 * With more than one RRM bank, the high-order bit(s) of each register
 * operand select which mask relocates the remaining offset bits,
 * enabling inter-context operations such as
 * ADD C0.R3, C0.R4, C1.R6 — and, with a suitable mask schedule,
 * emulation of fixed-size overlapping register windows.
 *
 * The relocation hardware itself lives in machine::RelocationUnit
 * (rrmBanks > 1); this header provides the software conventions:
 * operand encoding helpers and a register-window emulator that
 * computes the per-window mask pairs.
 */

#ifndef RR_EXT_MULTI_RRM_HH
#define RR_EXT_MULTI_RRM_HH

#include <cstdint>

#include "machine/cpu.hh"

namespace rr::ext {

/**
 * Encode a dual-context register operand: bank 0 or 1 in the top
 * operand bit, @p reg in the remaining bits.
 *
 * @param bank           which RRM relocates this operand (0 or 1)
 * @param reg            offset within that context
 * @param operand_width  the machine's operand width w
 */
unsigned dualContextOperand(unsigned bank, unsigned reg,
                            unsigned operand_width);

/**
 * Emulates SPARC-style fixed-size overlapping register windows on the
 * dual-RRM hardware (the paper notes the mechanism "is sufficiently
 * powerful to emulate fixed-size, overlapping register windows").
 *
 * Windows have @p window_size registers and consecutive windows
 * overlap by @p overlap registers: window k starts at physical
 * register k * (window_size - overlap). Bank 0 is pointed at the
 * current window and bank 1 at the next, so the overlapping "out"
 * registers of the current window are the "in" registers of the
 * next.
 */
class RegisterWindowEmulator
{
  public:
    /**
     * @param cpu          machine with at least two RRM banks
     * @param window_size  registers per window (power of two)
     * @param overlap      registers shared between adjacent windows
     */
    RegisterWindowEmulator(machine::Cpu &cpu, unsigned window_size,
                           unsigned overlap);

    /** Number of windows that fit in the register file. */
    unsigned numWindows() const { return numWindows_; }

    /** Current window index. */
    unsigned currentWindow() const { return current_; }

    /** Physical base register of window @p index. */
    unsigned windowBase(unsigned index) const;

    /**
     * Install masks for window @p index: bank 0 = this window,
     * bank 1 = the next (for outgoing arguments).
     */
    void selectWindow(unsigned index);

    /** selectWindow(current + 1): procedure call. */
    void push();

    /** selectWindow(current - 1): procedure return. */
    void pop();

  private:
    machine::Cpu &cpu_;
    unsigned windowSize_;
    unsigned stride_;
    unsigned numWindows_;
    unsigned current_ = 0;
};

} // namespace rr::ext

#endif // RR_EXT_MULTI_RRM_HH
