#include "ext/multi_rrm.hh"

#include "base/bitops.hh"
#include "base/logging.hh"

namespace rr::ext {

unsigned
dualContextOperand(unsigned bank, unsigned reg, unsigned operand_width)
{
    rr_assert(bank <= 1, "bank must be 0 or 1");
    rr_assert(operand_width >= 2, "operand width too small for banks");
    const unsigned offset_bits = operand_width - 1;
    rr_assert(reg < (1u << offset_bits), "register ", reg,
              " exceeds the per-bank offset field");
    return (bank << offset_bits) | reg;
}

RegisterWindowEmulator::RegisterWindowEmulator(machine::Cpu &cpu,
                                               unsigned window_size,
                                               unsigned overlap)
    : cpu_(cpu),
      windowSize_(window_size),
      stride_(window_size)
{
    rr_assert(cpu.relocation().numBanks() >= 2,
              "register windows need two RRM banks");
    rr_assert(isPowerOfTwo(window_size), "window size must be a power "
                                         "of two");
    rr_assert(overlap < window_size, "overlap must be smaller than the "
                                     "window");

    // OR relocation requires size-aligned contexts, so the emulated
    // windows are physically disjoint; the SPARC-style "overlap" is
    // realized through bank 1: the caller reaches the callee window's
    // first `overlap` registers (its in-registers) via bank-1
    // operands before pushing. This is exactly the emulation the
    // paper sketches — no registers need to be physically shared.
    const unsigned regs = cpu.config().numRegs;
    rr_assert(regs >= window_size, "register file smaller than one "
                                   "window");
    numWindows_ = regs / stride_;
    selectWindow(0);
}

unsigned
RegisterWindowEmulator::windowBase(unsigned index) const
{
    rr_assert(index < numWindows_, "window ", index, " out of range");
    return index * stride_;
}

void
RegisterWindowEmulator::selectWindow(unsigned index)
{
    rr_assert(index < numWindows_, "window ", index, " out of range");
    current_ = index;
    cpu_.setRrmImmediate(windowBase(index), 0);
    // Bank 1 exposes the successor window (outgoing arguments); the
    // topmost window has no successor and aliases itself.
    const unsigned next = index + 1 < numWindows_ ? index + 1 : index;
    cpu_.setRrmImmediate(windowBase(next), 1);
}

void
RegisterWindowEmulator::push()
{
    rr_assert(current_ + 1 < numWindows_, "window overflow");
    selectWindow(current_ + 1);
}

void
RegisterWindowEmulator::pop()
{
    rr_assert(current_ > 0, "window underflow");
    selectWindow(current_ - 1);
}

} // namespace rr::ext
