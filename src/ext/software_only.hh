/**
 * @file
 * Section 5.1 extension: the software-only approach.
 *
 * With no relocation hardware at all, the compiler generates multiple
 * versions of each thread's code, each version bound to a disjoint
 * subset of the register file — relocation performed at compile time.
 * Consequences modelled here:
 *
 *  - the register file is partitioned *statically* into K slots
 *    (arbitrary sizes are allowed — no power-of-two constraint);
 *  - context allocation binds a thread to any free slot large enough
 *    for its register requirement (the thread's binary contains a
 *    version for every slot), at zero allocation cost;
 *  - code expansion: K versions of every function enlarge the
 *    instruction working set. We model this as a multiplicative run
 *    length degradation per doubling of K (more instruction cache
 *    misses shorten the distance between stalls), with a documented,
 *    tunable coefficient;
 *  - K is small in practice (the paper's gcc/MIPS experiment found
 *    more than two contexts impractical on a 32-register file).
 */

#ifndef RR_EXT_SOFTWARE_ONLY_HH
#define RR_EXT_SOFTWARE_ONLY_HH

#include <vector>

#include "multithread/context_policy.hh"
#include "multithread/mt_processor.hh"

namespace rr::ext {

/** Static compile-time partitioning of the register file. */
class SoftwareOnlyPolicy : public mt::ContextPolicy
{
  public:
    /**
     * @param num_regs    register file size F
     * @param slot_sizes  compile-time partition sizes; their sum must
     *                    not exceed F
     */
    SoftwareOnlyPolicy(unsigned num_regs,
                       std::vector<unsigned> slot_sizes);

    std::optional<runtime::Context> allocate(unsigned regs_used) override;
    unsigned requiredSpace(unsigned regs_used) const override;
    void release(const runtime::Context &context) override;
    unsigned numRegs() const override;
    unsigned freeRegs() const override;
    std::string describe() const override;

  private:
    unsigned numRegs_;
    std::vector<unsigned> slotBase_;
    std::vector<unsigned> slotSize_;
    std::vector<bool> slotFree_;
};

/**
 * Run length degradation from code expansion: each doubling of the
 * number of code versions multiplies the mean run length by
 * (1 - penalty_per_doubling).
 *
 * @return the effective mean run length for K versions
 */
double codeExpansionRunLength(double mean_run, unsigned versions,
                              double penalty_per_doubling);

/** Result of one software-only simulation. */
struct SoftwareOnlyResult
{
    unsigned versions = 0;       ///< K
    double effectiveRunLength = 0.0;
    mt::MtStats stats;
};

/**
 * Simulate the software-only scheme: partition @p num_regs registers
 * into @p versions equal slots, degrade the run length for code
 * expansion, and run the given fault parameters (cache-fault model,
 * S = 6, never unload).
 */
SoftwareOnlyResult simulateSoftwareOnly(
    unsigned num_regs, unsigned versions, double mean_run,
    uint64_t latency, unsigned num_threads, uint64_t work_per_thread,
    unsigned regs_per_thread, double penalty_per_doubling = 0.05,
    uint64_t seed = 1);

} // namespace rr::ext

#endif // RR_EXT_SOFTWARE_ONLY_HH
