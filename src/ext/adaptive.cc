#include "ext/adaptive.hh"

#include "base/logging.hh"

namespace rr::ext {

double
interferenceRunLength(double mean_run, double alpha, unsigned resident)
{
    rr_assert(alpha >= 0.0, "alpha must be nonnegative");
    const double n = resident == 0 ? 1.0 : static_cast<double>(resident);
    return mean_run / (1.0 + alpha * (n - 1.0));
}

namespace {

CapSample
evaluateCap(const mt::MtConfig &base, double mean_run, uint64_t latency,
            double alpha, unsigned cap, unsigned capacity)
{
    mt::MtConfig config = base;
    config.residencyCap = cap;

    // Residency in saturation is deterministic: the cap when one is
    // set, otherwise the register file's context capacity (both
    // limited by the thread supply). Interference is driven by that
    // steady-state residency.
    unsigned resident = cap != 0 ? std::min(cap, capacity) : capacity;
    resident = std::min(resident, config.workload.numThreads);

    const double r_eff =
        interferenceRunLength(mean_run, alpha, resident);
    config.faultModel =
        std::make_shared<mt::CacheFaultModel>(r_eff, latency);
    const mt::MtStats stats = mt::simulate(std::move(config));

    CapSample sample;
    sample.cap = cap;
    sample.effectiveRunLength = r_eff;
    sample.efficiency = stats.efficiencyCentral;
    return sample;
}

} // namespace

AdaptiveResult
adaptiveSearch(const mt::MtConfig &base, double mean_run,
               uint64_t latency, double alpha, unsigned max_cap,
               unsigned regs_per_context)
{
    rr_assert(max_cap >= 1, "need at least one cap candidate");
    rr_assert(regs_per_context >= 1, "bad context size");
    const unsigned capacity = base.numRegs / regs_per_context;

    AdaptiveResult result;
    result.uncapped =
        evaluateCap(base, mean_run, latency, alpha, 0, capacity);

    bool have_best = false;
    for (unsigned cap = 1; cap <= max_cap; ++cap) {
        const CapSample sample =
            evaluateCap(base, mean_run, latency, alpha, cap, capacity);
        result.samples.push_back(sample);
        if (!have_best ||
            sample.efficiency > result.best.efficiency) {
            result.best = sample;
            have_best = true;
        }
    }
    return result;
}

} // namespace rr::ext
