#include "runtime/context_loader.hh"

#include "base/logging.hh"

namespace rr::runtime {

using machine::Cpu;

void
pokeContextReg(Cpu &cpu, uint32_t rrm, unsigned reg, uint32_t value)
{
    cpu.regs().write(rrm | reg, value);
}

uint32_t
peekContextReg(const Cpu &cpu, uint32_t rrm, unsigned reg)
{
    return cpu.regs().read(rrm | reg);
}

void
unloadContext(Cpu &cpu, const Context &context, unsigned used_regs,
              uint64_t mem_base)
{
    rr_assert(used_regs <= context.size,
              "thread uses ", used_regs, " registers but context holds ",
              context.size);
    // Store registers (used_regs - 1) .. 0, exactly as the multi-
    // entry-point unload routine of Section 2.5 would.
    for (unsigned r = used_regs; r-- > 0;)
        cpu.mem().write(mem_base + r, cpu.regs().read(context.rrm | r));
}

void
loadContext(Cpu &cpu, const Context &context, unsigned used_regs,
            uint64_t mem_base)
{
    rr_assert(used_regs <= context.size,
              "thread uses ", used_regs, " registers but context holds ",
              context.size);
    for (unsigned r = used_regs; r-- > 0;)
        cpu.regs().write(context.rrm | r, cpu.mem().read(mem_base + r));
}

std::optional<uint64_t>
runUntilPc(Cpu &cpu, uint32_t target_pc, uint64_t max_steps)
{
    const uint64_t start = cpu.cycles();
    for (uint64_t i = 0; i < max_steps; ++i) {
        if (cpu.pc() == target_pc)
            return cpu.cycles() - start;
        if (!cpu.step())
            break;
    }
    if (cpu.pc() == target_pc)
        return cpu.cycles() - start;
    return std::nullopt;
}

MachineScheduler::MachineScheduler(Cpu &cpu, ContextAllocator &allocator)
    : cpu_(cpu), allocator_(allocator)
{
}

std::optional<Context>
MachineScheduler::createThread(const ThreadSpec &spec)
{
    const auto context = allocator_.allocate(spec.usedRegs);
    if (!context)
        return std::nullopt;

    pokeContextReg(cpu_, context->rrm, 0, spec.entryPc);
    pokeContextReg(cpu_, context->rrm, 1, spec.initialPsw);
    contexts_.push_back(*context);
    ring_.insert(context->rrm);
    return context;
}

void
MachineScheduler::start()
{
    rr_assert(!contexts_.empty(), "no threads created");

    // Wire NextRRM (r2) links: context i points at context i+1,
    // wrapping at the end — the circular linked list of relocation
    // masks from Section 2.2.
    for (size_t i = 0; i < contexts_.size(); ++i) {
        const Context &cur = contexts_[i];
        const Context &next = contexts_[(i + 1) % contexts_.size()];
        pokeContextReg(cpu_, cur.rrm, 2, next.rrm);
    }

    cpu_.setRrmImmediate(contexts_.front().rrm);
    cpu_.setPc(peekContextReg(cpu_, contexts_.front().rrm, 0));
}

} // namespace rr::runtime
