/**
 * @file
 * Glue between the software runtime and the cycle-level machine:
 * peek/poke of context-relative registers, exact-count context
 * save/restore (Section 2.5), a helper to run the CPU up to a target
 * PC (for cycle measurements), and MachineScheduler, which builds a
 * ring of live thread contexts wired through their NextRRM registers
 * exactly as Figure 3 expects.
 */

#ifndef RR_RUNTIME_CONTEXT_LOADER_HH
#define RR_RUNTIME_CONTEXT_LOADER_HH

#include <cstdint>
#include <optional>
#include <vector>

#include "machine/cpu.hh"
#include "runtime/context_allocator.hh"
#include "runtime/context_ring.hh"

namespace rr::runtime {

/**
 * Write @p value into context-relative register @p reg of the context
 * whose mask is @p rrm (OR relocation), without touching the CPU's
 * active RRM.
 */
void pokeContextReg(machine::Cpu &cpu, uint32_t rrm, unsigned reg,
                    uint32_t value);

/** Read a context-relative register of context @p rrm. */
uint32_t peekContextReg(const machine::Cpu &cpu, uint32_t rrm,
                        unsigned reg);

/**
 * Spill exactly @p used_regs registers of @p context to memory at
 * @p mem_base (the Section 2.5 unload path, performed by the runtime
 * rather than by simulated code).
 */
void unloadContext(machine::Cpu &cpu, const Context &context,
                   unsigned used_regs, uint64_t mem_base);

/** Restore exactly @p used_regs registers of @p context from memory. */
void loadContext(machine::Cpu &cpu, const Context &context,
                 unsigned used_regs, uint64_t mem_base);

/**
 * Step the CPU until its PC equals @p target_pc (checked before each
 * instruction), it halts/traps, or @p max_steps instructions retire.
 *
 * @return cycles elapsed, or nullopt when the target was not reached
 */
std::optional<uint64_t> runUntilPc(machine::Cpu &cpu, uint32_t target_pc,
                                   uint64_t max_steps);

/**
 * Builds and owns a set of thread contexts on a machine, wiring the
 * Figure 3 software ready-ring through each context's NextRRM
 * register (context-relative r2).
 */
class MachineScheduler
{
  public:
    /** Per-thread creation parameters. */
    struct ThreadSpec
    {
        uint32_t entryPc = 0;   ///< initial thread PC (r0)
        unsigned usedRegs = 8;  ///< registers the thread requires (C)
        uint32_t initialPsw = 0; ///< initial PSW image (r1)
    };

    MachineScheduler(machine::Cpu &cpu, ContextAllocator &allocator);

    /**
     * Allocate a context and initialize its r0 (PC) and r1 (PSW).
     * @return the context, or nullopt when allocation fails
     */
    std::optional<Context> createThread(const ThreadSpec &spec);

    /**
     * Wire every created context's NextRRM (r2) into a circular list
     * in creation order and install the first context: sets the CPU's
     * RRM and jumps the machine PC to that context's saved r0.
     * Panics when no thread was created.
     */
    void start();

    /** Contexts in creation order. */
    const std::vector<Context> &contexts() const { return contexts_; }

    /** The runtime-side mirror of the ready ring. */
    const ContextRing &ring() const { return ring_; }

  private:
    machine::Cpu &cpu_;
    ContextAllocator &allocator_;
    std::vector<Context> contexts_;
    ContextRing ring_;
};

} // namespace rr::runtime

#endif // RR_RUNTIME_CONTEXT_LOADER_HH
