#include "runtime/sync_runtime.hh"

#include <sstream>

#include "base/logging.hh"
#include "runtime/asm_routines.hh"

namespace rr::runtime {

const char *
syncScenarioName(SyncScenario scenario)
{
    switch (scenario) {
      case SyncScenario::UncontendedLock:
        return "uncontended_lock";
      case SyncScenario::LockConvoy:
        return "lock_convoy";
      case SyncScenario::ProducerConsumer:
        return "producer_consumer";
      case SyncScenario::BarrierSkew:
        return "barrier_skew";
    }
    return "unknown";
}

namespace {

/**
 * The synchronization runtime itself. Atomicity argument: the CPU
 * switches threads only at the explicit LDRRM inside `yield`, so any
 * straight-line load/test/store sequence — the whole body of
 * lock_acquire's fast path, of sem_p, of barrier_wait's update — is
 * uninterruptible by construction. The spin paths yield between
 * retries so a waiter never wedges the processor.
 *
 * Extra labels (la_take, sem_wait, bw_spin, bw_release) exist so the
 * harness can count acquisitions, blocked waits, and barrier
 * releases by program counter without disturbing the code.
 */
void
emitRuntime(std::ostringstream &os)
{
    os << figure3YieldSource();
    os << R"(
; --- test-and-set spinlock (r4 = &lock, clobbers r5, link r3) ---
lock_acquire:
    ld    r5, 0(r4)
    bne   r5, r7, la_spin
la_take:
    st    r6, 0(r4)
    jmp   r3
la_spin:
    jal   r0, yield
    b     lock_acquire

lock_release:
    st    r7, 0(r4)
    jmp   r3

; --- counting semaphore (r4 = &sem, clobbers r5, link r3) ---
sem_p:
    ld    r5, 0(r4)
    bne   r5, r7, sp_take
sem_wait:
    jal   r0, yield
    b     sem_p
sp_take:
    sub   r5, r5, r6
    st    r5, 0(r4)
    jmp   r3

sem_v:
    ld    r5, 0(r4)
    add   r5, r5, r6
    st    r5, 0(r4)
    jmp   r3

; --- sense-reversing barrier (r4 = &{count, generation, size},
;     clobbers r5 and r8, link r3) ---
barrier_wait:
    ld    r5, 0(r4)
    add   r5, r5, r6
    ld    r8, 2(r4)
    beq   r5, r8, bw_last
    st    r5, 0(r4)
    ld    r8, 1(r4)
bw_spin:
    jal   r0, yield
    ld    r5, 1(r4)
    beq   r5, r8, bw_spin
    jmp   r3
bw_last:
    st    r7, 0(r4)
    ld    r8, 1(r4)
    add   r8, r8, r6
    st    r8, 1(r4)
bw_release:
    jmp   r3

; --- countdown exit latch: last thread out stops the machine ---
thread_exit:
    li    r4, EXIT_LOCK
    jal   r3, lock_acquire
    li    r5, LIVE
    ld    r8, 0(r5)
    sub   r8, r8, r6
    st    r8, 0(r5)
    li    r4, EXIT_LOCK
    jal   r3, lock_release
    bne   r8, r7, parked
    halt
parked:
    jal   r0, yield
    b     parked
)";
}

/**
 * One round: acquire (r10 = &lock, private or shared), critical
 * work, FAULT (the long-latency operation that makes holding this
 * lock expensive), release, non-critical work.
 */
void
emitLockedWorkBody(std::ostringstream &os)
{
    os << R"(
; r9 = rounds, r10 = &lock, r11 = &completion flag
thread_start:
    add   r4, r10, r7
    jal   r3, lock_acquire
    li    r4, CS_UNITS
cs_work:
    sub   r4, r4, r6
    bne   r4, r7, cs_work
    fault 0
    jal   r0, yield
cs_poll:
    ld    r5, 0(r11)
    bne   r5, r7, cs_done
poll_fail:
    jal   r0, yield
    b     cs_poll
cs_done:
    add   r4, r10, r7
    jal   r3, lock_release
    li    r4, NC_UNITS
nc_work:
    sub   r4, r4, r6
    bne   r4, r7, nc_work
    sub   r9, r9, r6
    bne   r9, r7, thread_start
    b     thread_exit
)";
}

void
emitProducerConsumerBodies(std::ostringstream &os)
{
    os << R"(
; producer: r9 = items to produce, r11 = &completion flag
producer_start:
    li    r4, PRODUCE_UNITS
p_work:
    sub   r4, r4, r6
    bne   r4, r7, p_work
    fault 0
    jal   r0, yield
p_poll:
    ld    r5, 0(r11)
    bne   r5, r7, p_ready
pp_fail:
    jal   r0, yield
    b     p_poll
p_ready:
    li    r4, SEM_SPACES
    jal   r3, sem_p
    li    r4, MUTEX
    jal   r3, lock_acquire
    li    r4, TAIL_A
    ld    r5, 0(r4)
    li    r8, RING_BASE
    add   r8, r8, r5
p_item:
    st    r9, 0(r8)
    add   r5, r5, r6
    li    r8, RING_SIZE
    bne   r5, r8, p_nowrap
    add   r5, r7, r7
p_nowrap:
    st    r5, 0(r4)
    li    r4, MUTEX
    jal   r3, lock_release
    li    r4, SEM_ITEMS
    jal   r3, sem_v
    sub   r9, r9, r6
    bne   r9, r7, producer_start
    b     thread_exit

; consumer: r9 = items to consume
consumer_start:
    li    r4, SEM_ITEMS
    jal   r3, sem_p
    li    r4, MUTEX
    jal   r3, lock_acquire
    li    r4, HEAD_A
    ld    r5, 0(r4)
    li    r8, RING_BASE
    add   r8, r8, r5
c_item:
    ld    r8, 0(r8)
    add   r5, r5, r6
    li    r8, RING_SIZE
    bne   r5, r8, c_nowrap
    add   r5, r7, r7
c_nowrap:
    st    r5, 0(r4)
    li    r4, MUTEX
    jal   r3, lock_release
    li    r4, SEM_SPACES
    jal   r3, sem_v
    li    r4, CONSUME_UNITS
c_work:
    sub   r4, r4, r6
    bne   r4, r7, c_work
    sub   r9, r9, r6
    bne   r9, r7, consumer_start
    b     thread_exit
)";
}

void
emitBarrierBody(std::ostringstream &os)
{
    os << R"(
; r9 = phases, r10 = this thread's work units per phase
barrier_start:
    add   r4, r10, r7
b_work:
    sub   r4, r4, r6
    bne   r4, r7, b_work
    li    r4, BARRIER_A
    jal   r3, barrier_wait
    sub   r9, r9, r6
    bne   r9, r7, barrier_start
    b     thread_exit
)";
}

} // namespace

std::string
syncScenarioSource(const SyncProgramParams &params)
{
    rr_assert(params.csUnits >= 1 && params.ncUnits >= 1 &&
                  params.produceUnits >= 1 && params.consumeUnits >= 1,
              "work loops need at least one unit");
    rr_assert(params.ringSize >= 1, "ring needs at least one slot");

    const SyncLayout &mem = params.layout;
    std::ostringstream os;
    os << "; generated scenario: " << syncScenarioName(params.scenario)
       << " (src/runtime/sync_runtime.cc)\n";
    os << "        .equ LIVE, 0x" << std::hex << mem.live << "\n"
       << "        .equ EXIT_LOCK, 0x" << mem.exitLock << "\n"
       << std::dec;

    switch (params.scenario) {
      case SyncScenario::UncontendedLock:
      case SyncScenario::LockConvoy:
        os << "        .equ CS_UNITS, " << params.csUnits << "\n"
           << "        .equ NC_UNITS, " << params.ncUnits << "\n"
           << "        .thread thread_start\n";
        break;
      case SyncScenario::ProducerConsumer:
        os << std::hex
           << "        .equ MUTEX, 0x" << mem.mutex << "\n"
           << "        .equ SEM_ITEMS, 0x" << mem.semItems << "\n"
           << "        .equ SEM_SPACES, 0x" << mem.semSpaces << "\n"
           << "        .equ HEAD_A, 0x" << mem.head << "\n"
           << "        .equ TAIL_A, 0x" << mem.tail << "\n"
           << "        .equ RING_BASE, 0x" << mem.ringBase << "\n"
           << std::dec
           << "        .equ RING_SIZE, " << params.ringSize << "\n"
           << "        .equ PRODUCE_UNITS, " << params.produceUnits
           << "\n"
           << "        .equ CONSUME_UNITS, " << params.consumeUnits
           << "\n"
           << "        .thread producer_start\n"
           << "        .thread consumer_start\n";
        break;
      case SyncScenario::BarrierSkew:
        os << std::hex << "        .equ BARRIER_A, 0x" << mem.barrier
           << "\n"
           << std::dec << "        .thread barrier_start\n";
        break;
    }
    os << "        .lockdef mutex, lock_acquire, lock_release\n"
       << "        .lockdef sem, sem_p, sem_v\n"
       << "        .lockdef barrier, barrier_wait, barrier_wait\n"
       << "\nentry:\n    jmp r0\n";

    switch (params.scenario) {
      case SyncScenario::UncontendedLock:
      case SyncScenario::LockConvoy:
        emitLockedWorkBody(os);
        break;
      case SyncScenario::ProducerConsumer:
        emitProducerConsumerBodies(os);
        break;
      case SyncScenario::BarrierSkew:
        emitBarrierBody(os);
        break;
    }

    emitRuntime(os);
    return os.str();
}

} // namespace rr::runtime
