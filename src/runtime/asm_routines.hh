/**
 * @file
 * Embedded RRISC assembly sources for the paper's runtime routines.
 * These are executed on the cycle-level machine to *measure* the cycle
 * costs that the stochastic simulators then charge (Figure 4):
 *
 *  - the Figure 3 fast context switch (yield);
 *  - the Appendix A context allocation / deallocation routines
 *    (binary-search, linear-search, and FF1-accelerated variants);
 *  - the Section 2.5 multi-entry-point context save/restore code.
 *
 * Register conventions used by the routines (all context-relative):
 *
 *  yield path (Figure 3):
 *    r0  thread program counter (PC)
 *    r1  processor status word (PSW)
 *    r2  mask for next thread (NextRRM)
 *
 *  allocator (Appendix A):
 *    r4, r5, r7, r14  scratch
 *    r6   constant 0
 *    r8   constant 0x11111111
 *    r9   constant 0x0000ffff
 *    r10  address of AllocMap (one memory word)
 *    r11  address of the thread record: word 0 = rrm, word 1 =
 *         allocMask
 *    r12  result: 1 = SUCCESS, 0 = FAILURE
 *    r13  constant 0x0000000f
 *    r15  return address
 *
 *  save/restore (Section 2.5):
 *    r30  save-area pointer
 *    r31  return address
 */

#ifndef RR_RUNTIME_ASM_ROUTINES_HH
#define RR_RUNTIME_ASM_ROUTINES_HH

#include <string>

namespace rr::runtime {

/**
 * The Figure 3 yield routine. Expects to be included in a program
 * that defines the label 'yield'. A thread switches away with
 * 'jal r0, yield' (explicit fault) and resumes at the instruction
 * after that jal.
 */
std::string figure3YieldSource();

/**
 * The Appendix A allocator translated to RRISC, with labels
 * ctx_alloc16 (binary search), ctx_alloc64 (linear search),
 * ctx_alloc16_ff1 (using the FF1 instruction, footnote 2), and
 * ctx_dealloc. Callers use 'jal r15, <label>'.
 */
std::string appendixAAllocatorSource();

/**
 * A complete round-robin multithreading demo program: @p num_threads
 * threads share one body; each runs @p iterations loop iterations,
 * yielding (Figure 3) after each, then decrements a live-thread
 * counter and halts the machine when it reaches zero.
 *
 * The caller must initialize, per context: r0 = address of
 * 'thread_body', r2 = NextRRM, r4 = iterations, r6 = 1, r7 = 0,
 * r9 = address of the live counter; and store @p num_threads in that
 * counter. Labels: 'yield', 'thread_body', 'entry'.
 */
std::string roundRobinDemoSource();

/**
 * Multi-entry-point context save/restore (Section 2.5): labels
 * 'unload_k' store registers r(k-1)..r0 to the save area at r30 and
 * return via r31; labels 'load_k' restore them. Entry points exist
 * for k = 1 .. @p max_regs (max_regs <= 30 because r30/r31 carry the
 * pointer and return address).
 */
std::string saveRestoreSource(unsigned max_regs);

/**
 * The complete dynamic runtime in RRISC assembly: a rotation
 * scheduler that, on every fault, unloads the faulting thread's
 * 8-register context (Section 2.5 style, within the victim context),
 * deallocates it (Appendix A), dequeues the next thread from a
 * memory-resident ready queue, allocates a fresh context
 * (an FF1-accelerated 8-register allocator), reloads the thread, and
 * resumes it — exercising every software mechanism of Section 2 with
 * no hardware support beyond the RRM.
 *
 * Thread context conventions (8 registers):
 *   r0 resume PC    r1 PSW save     r2 own RRM     r3 scheduler RRM
 *   r4 save-area pointer   r5 scratch/link   r6 segments left
 *   r7 constant 0
 *
 * Save-area layout (8 words per thread):
 *   [0] r0  [1] r1  [2] r2  [3] r3  [4] r6  [5] r7
 *   [6] rrm (thread struct word 0)  [7] allocMask (word 1)
 *
 * Scheduler context: 32 registers at base 0 (RRM 0). Registers
 * follow the Appendix A conventions (r6, r8, r9, r10, r13, r15 plus
 * scratch r4, r5, r7, r14) extended with r16 queue base, r17 head,
 * r18 tail, r19 capacity mask, r20-r24 scratch, r25 = 0x55555555.
 *
 * Memory conventions are defined with .equ at the top of the source:
 * MAILBOX (victim save-area handoff), MAILBOX2 (reload handoff),
 * LIVE (live-thread counter), ALLOCMAP, QUEUE (ring buffer of
 * save-area addresses).
 *
 * @param work_units loop passes per run segment (1 .. 2047)
 */
std::string rotationSchedulerSource(unsigned work_units);

/**
 * The two-phase scheduler in RRISC assembly: a ring of fixed context
 * *slots* switched with the Figure 3 fast path; each slot multiplexes
 * threads. A blocked thread polls its completion flag when the ring
 * visits it; after @p poll_budget failed polls (the accumulated cost
 * of unsuccessful resume attempts, Section 3.3) it gives up the slot:
 * it saves its state, and the slot dequeues a ready thread from the
 * memory queue and resumes it. Unloaded threads re-enter the queue
 * when their fault completes (posted by the memory system — the C++
 * harness).
 *
 * Every instruction of the runtime addresses only r0..r7, so the
 * whole program passes an 8-register context-boundary check:
 *   r0 resume PC    r1 PSW save / scratch   r2 next-slot RRM (fixed)
 *   r3 poll counter r4 save-area pointer    r5 scratch
 *   r6 segments left                        r7 constant 0
 *
 * Save-area layout (8 words):
 *   [0] r0  [1] r1  [4] r6  [5] completion flag
 *   [7] unloaded marker (1 = blocked & unloaded; the memory system
 *       enqueues the thread on completion and clears it)
 *
 * @param work_units  loop passes per run segment (1 .. 2047)
 * @param poll_budget failed polls before surrendering the slot
 */
std::string twoPhaseSchedulerSource(unsigned work_units,
                                    unsigned poll_budget);

} // namespace rr::runtime

#endif // RR_RUNTIME_ASM_ROUTINES_HH
