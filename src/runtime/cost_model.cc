#include "runtime/cost_model.hh"

namespace rr::runtime {

CostModel
CostModel::paperFlexible(uint64_t s)
{
    CostModel m;
    m.allocSucceed = 25;
    m.allocFail = 15;
    m.dealloc = 5;
    m.contextSwitch = s;
    return m;
}

CostModel
CostModel::paperFixed(uint64_t s)
{
    CostModel m;
    m.allocSucceed = 0;
    m.allocFail = 0;
    m.dealloc = 0;
    m.contextSwitch = s;
    return m;
}

CostModel
CostModel::ff1Flexible(uint64_t s)
{
    CostModel m;
    m.allocSucceed = 15;
    m.allocFail = 10;
    m.dealloc = 5;
    m.contextSwitch = s;
    return m;
}

CostModel
CostModel::lowCostFlexible(uint64_t s)
{
    CostModel m;
    m.allocSucceed = 4;
    m.allocFail = 2;
    m.dealloc = 1;
    m.contextSwitch = s;
    return m;
}

} // namespace rr::runtime
