/**
 * @file
 * A first-fit, arbitrary-size register allocator used to model the
 * AMD Am29000-style ADD (base-plus-offset) relocation discussed in
 * Section 4 of the paper: without the power-of-two constraint,
 * contexts can be exactly C registers, but allocation must manage
 * arbitrary intervals (with external fragmentation) instead of an
 * aligned bitmap.
 */

#ifndef RR_RUNTIME_INTERVAL_ALLOCATOR_HH
#define RR_RUNTIME_INTERVAL_ALLOCATOR_HH

#include <cstdint>
#include <map>
#include <optional>

namespace rr::runtime {

/** An allocated interval of registers [base, base + size). */
struct Interval
{
    unsigned base = 0;
    unsigned size = 0;

    bool operator==(const Interval &other) const = default;
};

/** First-fit interval allocator with free-block coalescing. */
class IntervalAllocator
{
  public:
    /** Manage @p num_regs registers, initially all free. */
    explicit IntervalAllocator(unsigned num_regs);

    /** Total registers managed. */
    unsigned numRegs() const { return numRegs_; }

    /**
     * Allocate exactly @p size registers, first fit at the lowest
     * base. @return nullopt when no free block is large enough.
     */
    std::optional<Interval> allocate(unsigned size);

    /** Free a previously allocated interval (coalesces neighbours). */
    void release(const Interval &interval);

    /**
     * Re-occupy @p interval during checkpoint restore: carves it out
     * of the free map, which must currently cover it. Replaying
     * reserve() for every restored context reproduces the free map
     * exactly (it is a pure function of the live interval set).
     */
    void reserve(const Interval &interval);

    /** Registers currently free. */
    unsigned freeRegs() const { return freeRegs_; }

    /** Size of the largest free block (0 when full). */
    unsigned largestFreeBlock() const;

    /** Number of free blocks (fragmentation indicator). */
    size_t freeBlockCount() const { return free_.size(); }

  private:
    unsigned numRegs_;
    unsigned freeRegs_;
    std::map<unsigned, unsigned> free_; ///< base -> size, disjoint
};

} // namespace rr::runtime

#endif // RR_RUNTIME_INTERVAL_ALLOCATOR_HH
