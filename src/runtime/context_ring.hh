/**
 * @file
 * The software scheduler "ready queue" from Section 2.2: a circular
 * linked list of register relocation masks. In hardware terms each
 * resident context stores the mask of the next runnable context in
 * its NextRRM register (context-relative R2 in Figure 3); this class
 * models that ring for the runtime and the simulators.
 *
 * Multiple rings can be kept side by side to implement thread classes
 * or priorities, exactly as the paper suggests — see PriorityRing.
 */

#ifndef RR_RUNTIME_CONTEXT_RING_HH
#define RR_RUNTIME_CONTEXT_RING_HH

#include <cstddef>
#include <cstdint>
#include <unordered_map>
#include <vector>

namespace rr::runtime {

/** Circular list of context relocation masks. */
class ContextRing
{
  public:
    /** @return true when the ring has no members. */
    bool empty() const { return next_.empty(); }

    /** Number of members. */
    size_t size() const { return next_.size(); }

    /** @return true when @p rrm is in the ring. */
    bool contains(uint32_t rrm) const { return next_.count(rrm) != 0; }

    /**
     * Insert @p rrm immediately after the current member (so it is
     * scheduled last among the existing members in round-robin
     * order). The first insertion makes @p rrm current.
     */
    void insert(uint32_t rrm);

    /**
     * Remove @p rrm. When the current member is removed, the next
     * member becomes current.
     */
    void remove(uint32_t rrm);

    /** The current member; panics when empty. */
    uint32_t current() const;

    /**
     * Advance to the next member (the NextRRM of the current
     * context) and return it; panics when empty.
     */
    uint32_t advance();

    /** The NextRRM link of @p rrm; panics when absent. */
    uint32_t nextOf(uint32_t rrm) const;

    /** Members in ring order starting at current (for inspection). */
    std::vector<uint32_t> members() const;

  private:
    std::unordered_map<uint32_t, uint32_t> next_; ///< rrm -> NextRRM
    std::unordered_map<uint32_t, uint32_t> prev_; ///< rrm -> previous
    uint32_t current_ = 0;
};

/**
 * A fixed set of priority levels, each holding one ContextRing.
 * advance() always returns from the highest nonempty level — the
 * "separate linked lists of register relocation masks" scheme of
 * Section 2.2.
 */
class PriorityRing
{
  public:
    /** @param levels number of priority levels (0 is highest). */
    explicit PriorityRing(unsigned levels);

    /** Insert @p rrm at @p level. */
    void insert(uint32_t rrm, unsigned level);

    /** Remove @p rrm from whichever level holds it. */
    void remove(uint32_t rrm);

    /** @return true when no level has members. */
    bool empty() const;

    /** Total members across levels. */
    size_t size() const;

    /**
     * Current member of the highest nonempty level — what a coarse
     * multithreaded scheduler dispatches next; panics when empty.
     */
    uint32_t current() const;

    /**
     * Advance the highest nonempty level and return its new current
     * member; panics when empty.
     */
    uint32_t advance();

    /** Level that holds @p rrm, or -1. */
    int levelOf(uint32_t rrm) const;

    /** Direct access to a level's ring. */
    ContextRing &level(unsigned level);

  private:
    std::vector<ContextRing> rings_;
};

} // namespace rr::runtime

#endif // RR_RUNTIME_CONTEXT_RING_HH
