#include "runtime/context_allocator.hh"

#include <algorithm>

#include "base/bitops.hh"
#include "base/logging.hh"

namespace rr::runtime {

ContextAllocator::ContextAllocator(unsigned num_regs,
                                   unsigned operand_width,
                                   unsigned min_size)
    : numRegs_(num_regs),
      minSize_(min_size),
      maxSize_(std::min(num_regs, 1u << operand_width)),
      numChunks_(num_regs / chunkRegs),
      bitmap_((numChunks_ + 63) / 64, 0)
{
    rr_assert(isPowerOfTwo(num_regs) && num_regs >= 16,
              "register file size must be a power of two >= 16, got ",
              num_regs);
    rr_assert(isPowerOfTwo(min_size) && min_size >= chunkRegs,
              "min context size must be a power of two >= ", chunkRegs);
    rr_assert(minSize_ <= maxSize_, "min size ", minSize_,
              " exceeds max size ", maxSize_);

    // All chunks start free.
    for (unsigned c = 0; c < numChunks_; ++c)
        bitmap_[c / 64] |= uint64_t{1} << (c % 64);
}

unsigned
ContextAllocator::contextSizeFor(unsigned required_regs) const
{
    if (required_regs > maxSize_)
        return 0;
    const unsigned rounded = static_cast<unsigned>(
        roundUpPowerOfTwo(std::max(required_regs, 1u)));
    return std::max(rounded, minSize_);
}

std::optional<Context>
ContextAllocator::allocate(unsigned required_regs)
{
    ++stats_.allocCalls;

    const unsigned size = contextSizeFor(required_regs);
    if (size == 0) {
        ++stats_.allocFailures;
        return std::nullopt;
    }
    const unsigned run = size / chunkRegs; // chunks per context

    // Aligned power-of-two runs never straddle a 64-chunk boundary
    // (run <= 64 and runs are run-aligned), so each bitmap word can be
    // searched independently — this is the Appendix A algorithm
    // applied per word.
    rr_assert(run <= 64, "context larger than one bitmap word");
    for (unsigned w = 0; w * 64 < numChunks_; ++w) {
        uint64_t candidates = contiguousRunMap(bitmap_[w], run) &
                              alignedPositionsMask(run);
        if (w * 64 + 64 > numChunks_) {
            // Partial trailing word: mask off chunks beyond the file.
            candidates &= lowMask(numChunks_ - w * 64);
        }
        const int bit = findFirstSet(candidates);
        if (bit < 0)
            continue;

        const unsigned chunk = w * 64 + static_cast<unsigned>(bit);
        const uint64_t alloc_mask = lowMask(run)
                                    << static_cast<unsigned>(bit);
        bitmap_[w] &= ~alloc_mask;

        Context context;
        context.rrm = chunk * chunkRegs;
        context.size = size;
        return context;
    }

    ++stats_.allocFailures;
    return std::nullopt;
}

void
ContextAllocator::release(const Context &context)
{
    ++stats_.deallocCalls;

    rr_assert(context.size >= minSize_ && context.size <= maxSize_ &&
                  isPowerOfTwo(context.size),
              "bad context size ", context.size);
    rr_assert(context.rrm % context.size == 0,
              "context base ", context.rrm, " not aligned to size ",
              context.size);
    rr_assert(context.endReg() <= numRegs_,
              "context exceeds the register file");

    const unsigned run = context.size / chunkRegs;
    const unsigned chunk = context.rrm / chunkRegs;
    const unsigned w = chunk / 64;
    const unsigned bit = chunk % 64;
    const uint64_t alloc_mask = lowMask(run) << bit;

    rr_assert((bitmap_[w] & alloc_mask) == 0,
              "double free of context at base ", context.rrm);
    bitmap_[w] |= alloc_mask;
}

void
ContextAllocator::reserve(const Context &context)
{
    rr_assert(context.size >= minSize_ && context.size <= maxSize_ &&
                  isPowerOfTwo(context.size),
              "bad context size ", context.size);
    rr_assert(context.rrm % context.size == 0,
              "context base ", context.rrm, " not aligned to size ",
              context.size);
    rr_assert(context.endReg() <= numRegs_,
              "context exceeds the register file");

    const unsigned run = context.size / chunkRegs;
    const unsigned chunk = context.rrm / chunkRegs;
    const unsigned w = chunk / 64;
    const unsigned bit = chunk % 64;
    const uint64_t alloc_mask = lowMask(run) << bit;

    rr_assert((bitmap_[w] & alloc_mask) == alloc_mask,
              "reserve of occupied context at base ", context.rrm);
    bitmap_[w] &= ~alloc_mask;
}

unsigned
ContextAllocator::freeRegs() const
{
    unsigned free_chunks = 0;
    for (const uint64_t word : bitmap_)
        free_chunks += popCount(word);
    return free_chunks * chunkRegs;
}

double
ContextAllocator::utilization() const
{
    return static_cast<double>(allocatedRegs()) /
           static_cast<double>(numRegs_);
}

bool
ContextAllocator::regAllocated(unsigned reg) const
{
    rr_assert(reg < numRegs_, "register ", reg, " out of range");
    const unsigned chunk = reg / chunkRegs;
    return (bitmap_[chunk / 64] & (uint64_t{1} << (chunk % 64))) == 0;
}

} // namespace rr::runtime
