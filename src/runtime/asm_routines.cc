#include "runtime/asm_routines.hh"

#include <sstream>

#include "base/logging.hh"

namespace rr::runtime {

std::string
figure3YieldSource()
{
    // Figure 3 of the paper, in dst-first syntax. The mov in the
    // LDRRM delay slot still relocates through the *old* mask, saving
    // the outgoing thread's PSW into its own r1; the mov after the
    // slot runs under the new mask and restores the incoming thread's
    // PSW from its r1.
    return R"(
yield:
    ldrrm r2          ; install new relocation mask (1 delay slot)
    mov   r1, psw     ; delay slot: save old status register
    mov   psw, r1     ; restore new status register
    jmp   r0          ; execute code in new context
)";
}

std::string
appendixAAllocatorSource()
{
    return R"(
; ---- ContextAlloc16: binary search (Appendix A) --------------------
ctx_alloc16:
    ld    r4, 0(r10)       ; tempMap = AllocMap
    srli  r5, r4, 1
    and   r4, r4, r5       ; tempMap &= tempMap >> 1
    srli  r5, r4, 2
    and   r4, r4, r5       ; tempMap &= tempMap >> 2
    and   r4, r4, r8       ; tempMap &= 0x11111111
    bne   r4, r6, ca16_found
    mov   r12, r6          ; FAILURE
    jmp   r15
ca16_found:
    mov   r7, r6           ; rrm = 0
    and   r5, r4, r9       ; 16-bit block with a free chunk?
    bne   r5, r6, ca16_low16
    ori   r7, r7, 16
    srli  r4, r4, 16
ca16_low16:
    andi  r5, r4, 0xff     ; 8-bit block?
    bne   r5, r6, ca16_low8
    ori   r7, r7, 8
    srli  r4, r4, 8
ca16_low8:
    andi  r5, r4, 0xf      ; 4-bit block?
    bne   r5, r6, ca16_low4
    ori   r7, r7, 4
ca16_low4:
    sll   r5, r13, r7      ; tempMap = 0x000f << rrm
    ld    r14, 0(r10)
    xori  r4, r5, -1       ; ~tempMap
    and   r14, r14, r4
    st    r14, 0(r10)      ; AllocMap &= ~tempMap
    slli  r4, r7, 2
    st    r4, 0(r11)       ; t->rrm = rrm << 2
    st    r5, 1(r11)       ; t->allocMask = tempMap
    addi  r12, r6, 1       ; SUCCESS
    jmp   r15

; ---- ContextAlloc64: linear search (Appendix A) --------------------
ctx_alloc64:
    ld    r4, 0(r10)
    and   r5, r4, r9       ; low-order halfword
    beq   r5, r9, ca64_low
    srli  r5, r4, 16       ; high-order halfword
    beq   r5, r9, ca64_high
    mov   r12, r6          ; FAILURE
    jmp   r15
ca64_low:
    xori  r5, r9, -1       ; ~0xffff
    and   r4, r4, r5
    st    r4, 0(r10)       ; AllocMap &= ~0xffff
    st    r6, 0(r11)       ; t->rrm = 0
    st    r9, 1(r11)       ; t->allocMask = 0xffff
    addi  r12, r6, 1
    jmp   r15
ca64_high:
    and   r4, r4, r9
    st    r4, 0(r10)       ; AllocMap &= 0xffff
    addi  r5, r6, 64
    st    r5, 0(r11)       ; t->rrm = 16 << 2
    slli  r5, r9, 16
    st    r5, 1(r11)       ; t->allocMask = 0xffff << 16
    addi  r12, r6, 1
    jmp   r15

; ---- ContextAlloc16 with FF1 (footnote 2) --------------------------
ctx_alloc16_ff1:
    ld    r4, 0(r10)
    srli  r5, r4, 1
    and   r4, r4, r5
    srli  r5, r4, 2
    and   r4, r4, r5
    and   r4, r4, r8
    bne   r4, r6, caff_found
    mov   r12, r6          ; FAILURE
    jmp   r15
caff_found:
    ff1   r7, r4           ; find first free aligned block
    sll   r5, r13, r7
    ld    r14, 0(r10)
    xori  r4, r5, -1
    and   r14, r14, r4
    st    r14, 0(r10)
    slli  r4, r7, 2
    st    r4, 0(r11)
    st    r5, 1(r11)
    addi  r12, r6, 1
    jmp   r15

; ---- ContextDealloc (Appendix A) -----------------------------------
ctx_dealloc:
    ld    r4, 0(r10)
    ld    r5, 1(r11)
    or    r4, r4, r5       ; AllocMap |= t->allocMask
    st    r4, 0(r10)
    jmp   r15
)";
}

std::string
roundRobinDemoSource()
{
    std::ostringstream os;
    os << R"(
entry:
    jmp   r0              ; begin the first thread
)" << figure3YieldSource()
       << R"(
; Shared, context-relative thread body. Conventions:
;   r0 PC save, r1 PSW save, r2 NextRRM (Figure 3)
;   r4 remaining iterations, r5 accumulator
;   r6 constant 1, r7 constant 0, r9 live-counter address
thread_body:
    sub   r4, r4, r6      ; one unit of work
    add   r5, r5, r4
    jal   r0, yield       ; explicit fault: switch context
    bne   r4, r7, thread_body
    ld    r8, 0(r9)       ; thread done: live_count -= 1
    sub   r8, r8, r6
    st    r8, 0(r9)
    bne   r8, r7, spin
    halt                  ; last thread out stops the machine
spin:
    jal   r0, yield       ; completed threads keep yielding
    b     spin
)";
    return os.str();
}

std::string
rotationSchedulerSource(unsigned work_units)
{
    rr_assert(work_units >= 1 && work_units <= 2047,
              "work units must fit an addi immediate");
    std::ostringstream os;
    os << "; Complete software runtime: rotation scheduler.\n"
       << ".equ MAILBOX, 0x3000\n"
       << ".equ MAILBOX2, 0x3001\n"
       << ".equ LIVE, 0x3002\n"
       << ".equ QUEUE, 0x3010\n"
       << ".equ WORKUNITS, " << work_units << "\n"
       << R"(
entry:
    b    sched_dequeue

; ---------------- thread code (context-relative, 8 registers) -----
thread_start:
    addi r5, r7, WORKUNITS
work:
    addi r5, r5, -1
    bne  r5, r7, work
    addi r6, r6, -1
    beq  r6, r7, thread_done
    fault 0                    ; long-latency event at segment end
    jal  r0, unload_self       ; r0 = the 'b thread_start' below
    b    thread_start

thread_done:
    li   r5, LIVE
    ld   r1, 0(r5)
    addi r1, r1, -1
    st   r1, 0(r5)
    li   r5, MAILBOX
    st   r4, 0(r5)
    ldrrm r3                   ; into the scheduler context
    nop
    b    sched_finish

; Section 2.5 unload, run inside the victim context: store exactly
; the registers this 8-register context uses, then hand the save
; area to the scheduler through the mailbox.
unload_self:
    mov  r1, psw
    st   r0, 0(r4)
    st   r1, 1(r4)
    st   r2, 2(r4)
    st   r3, 3(r4)
    st   r6, 4(r4)
    st   r7, 5(r4)
    li   r1, MAILBOX
    st   r4, 0(r1)
    ldrrm r3
    nop
    b    sched_rotate

; ---------------- scheduler (context at base 0, 32 registers) -----
sched_rotate:
    li   r21, MAILBOX
    ld   r20, 0(r21)           ; victim save area
    add  r24, r16, r18         ; enqueue victim at the tail
    st   r20, 0(r24)
    addi r18, r18, 1
    and  r18, r18, r19
    addi r11, r20, 6           ; Appendix A thread struct
    jal  r15, ctx_dealloc
    b    sched_dequeue

sched_finish:
    li   r21, MAILBOX
    ld   r20, 0(r21)
    addi r11, r20, 6
    jal  r15, ctx_dealloc
    li   r21, LIVE
    ld   r24, 0(r21)
    bne  r24, r6, sched_dequeue
    halt                       ; last thread retired

sched_dequeue:
    add  r24, r16, r17         ; dequeue the head thread
    ld   r22, 0(r24)           ; its save area
    addi r17, r17, 1
    and  r17, r17, r19
    addi r11, r22, 6
    jal  r15, ctx_alloc8
    beq  r12, r6, alloc_panic
    li   r21, MAILBOX2
    st   r22, 0(r21)
    ld   r23, 6(r22)           ; freshly assigned RRM
    ldrrm r23                  ; into the new thread's context
    nop
    b    boot

alloc_panic:
    fault 63                   ; should be impossible: equal sizes
    halt

; Reload, bootstrapped inside the target context: LUI/ORI build
; constants without reading any (still undefined) register.
boot:
    li   r4, MAILBOX2
    ld   r4, 0(r4)             ; save area; also the thread's r4
    ld   r0, 0(r4)
    ld   r1, 1(r4)
    ld   r3, 3(r4)
    ld   r6, 4(r4)
    ld   r7, 5(r4)
    ld   r2, 6(r4)             ; own RRM — fresh, the context moved
    mov  psw, r1
    jmp  r0

; ---------------- 8-register allocator (FF1, aligned pairs) -------
ctx_alloc8:
    ld   r4, 0(r10)
    srli r5, r4, 1
    and  r4, r4, r5            ; runs of 2 free chunks
    and  r4, r4, r25           ; aligned pair positions (0x55555555)
    bne  r4, r6, ca8_found
    mov  r12, r6               ; FAILURE
    jmp  r15
ca8_found:
    ff1  r7, r4
    addi r5, r6, 3
    sll  r5, r5, r7            ; allocMask = 0x3 << chunk
    ld   r14, 0(r10)
    xori r4, r5, -1
    and  r14, r14, r4
    st   r14, 0(r10)           ; AllocMap &= ~allocMask
    slli r4, r7, 2
    st   r4, 0(r11)            ; rrm = chunk * 4
    st   r5, 1(r11)
    addi r12, r6, 1            ; SUCCESS
    jmp  r15
)" << appendixAAllocatorSource();
    return os.str();
}

std::string
twoPhaseSchedulerSource(unsigned work_units, unsigned poll_budget)
{
    rr_assert(work_units >= 1 && work_units <= 2047,
              "work units must fit an addi immediate");
    rr_assert(poll_budget >= 1 && poll_budget <= 2047,
              "poll budget must fit an addi immediate");
    std::ostringstream os;
    os << "; Two-phase slot scheduler: every instruction addresses\n"
       << "; only r0..r7 (one 8-register context).\n"
       << ".equ QHEAD, 0x3000\n"
       << ".equ QTAIL, 0x3001\n"
       << ".equ LIVE, 0x3002\n"
       << ".equ QMASK, 127\n"
       << ".equ QUEUE, 0x3010\n"
       << ".equ WORKUNITS, " << work_units << "\n"
       << ".equ BUDGET, " << poll_budget << "\n"
       << R"(
entry:
    jmp   r0

yield:                      ; Figure 3 among the slots
    ldrrm r2
    mov   r1, psw
    mov   psw, r1
    jmp   r0

work_seg:                   ; run one segment of the current thread
    addi  r5, r7, WORKUNITS
work:
    addi  r5, r5, -1
    bne   r5, r7, work
    addi  r6, r6, -1
    beq   r6, r7, thread_done
    fault 0                 ; long-latency event (flag cleared)
    addi  r3, r7, 0         ; first phase: reset the poll counter
    jal   r0, yield
poll:
    ld    r5, 5(r4)         ; has the fault completed?
    bne   r5, r7, work_seg
    addi  r3, r3, 1         ; one more unsuccessful resume attempt
    addi  r5, r7, BUDGET
    blt   r3, r5, poll_again
    ; Budget exhausted (second phase): surrender the slot if a
    ; queued thread could use it.
    li    r5, QHEAD
    ld    r5, 0(r5)
    li    r1, QTAIL
    ld    r1, 0(r1)
    bne   r5, r1, swap_out
poll_again:
    jal   r0, yield
    b     poll

swap_out:
    ; Commit the unload, then save state (Section 2.5: exactly the
    ; registers this thread uses).
    addi  r5, r7, 1
    st    r5, 7(r4)         ; unloaded marker
    st    r0, 0(r4)         ; resume PC (the poll loop re-entry)
    mov   r1, psw
    st    r1, 1(r4)
    st    r6, 4(r4)
    ; Lost-wakeup reconciliation. The memory system enqueues an
    ; unloaded thread when its fault completes and clears the marker;
    ; reading flag THEN marker makes the outcome unambiguous:
    ;   flag 0            -> still blocked, the unload stands;
    ;   flag 1, marker 0  -> completion already enqueued us, swap;
    ;   flag 1, marker 1  -> completion landed before the marker was
    ;                        visible: nobody enqueued us — cancel the
    ;                        unload and resume right here.
    ld    r5, 5(r4)
    beq   r5, r7, swap_in
    ld    r5, 7(r4)
    beq   r5, r7, swap_in
    st    r7, 7(r4)
    b     work_seg
swap_in:                    ; dequeue a ready thread into this slot
    li    r5, QHEAD
    ld    r1, 0(r5)
    addi  r1, r1, 1
    st    r1, 0(r5)         ; head++
    addi  r1, r1, -1
    andi  r0, r1, QMASK
    li    r3, QUEUE
    add   r3, r3, r0
    ld    r4, 0(r3)         ; new thread's save area
    st    r7, 7(r4)         ; it is loaded now
    ld    r0, 0(r4)
    ld    r1, 1(r4)
    mov   psw, r1
    ld    r6, 4(r4)
    addi  r3, r7, 0         ; fresh poll counter
    jmp   r0

thread_done:
    li    r5, LIVE
    ld    r1, 0(r5)
    addi  r1, r1, -1
    st    r1, 0(r5)
    beq   r1, r7, all_done
slot_idle:                  ; this slot waits for queued work
    li    r5, QHEAD
    ld    r5, 0(r5)
    li    r1, QTAIL
    ld    r1, 0(r1)
    bne   r5, r1, swap_in
    jal   r0, yield
    b     slot_idle

all_done:
    halt
)";
    return os.str();
}

std::string
saveRestoreSource(unsigned max_regs)
{
    rr_assert(max_regs >= 1 && max_regs <= 30,
              "save/restore supports 1..30 registers, got ", max_regs);
    std::ostringstream os;
    os << "; Multi-entry-point context unload (Section 2.5).\n";
    for (unsigned k = max_regs; k >= 1; --k) {
        os << "unload_" << k << ":\n";
        os << "    st r" << (k - 1) << ", " << (k - 1) << "(r30)\n";
    }
    os << "    jmp r31\n";
    os << "; Multi-entry-point context load (Section 2.5).\n";
    for (unsigned k = max_regs; k >= 1; --k) {
        os << "load_" << k << ":\n";
        os << "    ld r" << (k - 1) << ", " << (k - 1) << "(r30)\n";
    }
    os << "    jmp r31\n";
    return os.str();
}

} // namespace rr::runtime
