/**
 * @file
 * Cycle-cost assumptions from Figure 4 of the paper.
 *
 * Flexible (register relocation):
 *   context allocate (succeed)  25 cycles
 *   context allocate (fail)     15 cycles
 *   context deallocate           5 cycles
 * Fixed (conventional hardware contexts):
 *   all of the above             0 cycles (hardware scheduling —
 *                                 deliberately conservative in favour
 *                                 of the baseline)
 * Both:
 *   context load/unload          C cycles (registers actually used,
 *                                 Section 2.5) + 10 cycles software
 *                                 blocking/unblocking overhead
 *   thread queue insert/remove  10 cycles
 *   context switch               S cycles (6 for the cache-fault
 *                                 experiments, 8 for synchronization)
 */

#ifndef RR_RUNTIME_COST_MODEL_HH
#define RR_RUNTIME_COST_MODEL_HH

#include <cstdint>

namespace rr::runtime {

/** Cycle costs charged by the multithreading simulators. */
struct CostModel
{
    uint64_t allocSucceed = 0;  ///< successful context allocation
    uint64_t allocFail = 0;     ///< failed context allocation
    uint64_t dealloc = 0;       ///< context deallocation
    uint64_t queueOp = 10;      ///< thread queue insert or remove
    uint64_t blockOverhead = 10; ///< software (un)blocking per (un)load
    uint64_t contextSwitch = 6; ///< S, switch between loaded contexts

    /**
     * Dribbling registers (Soundararajan's dribble-back technique,
     * cited in Section 3.4 of the paper as orthogonal to register
     * relocation): a background engine trickles context registers to
     * and from memory while other threads execute, hiding the
     * per-register component of load/unload. Only the software
     * blocking overhead remains on the critical path.
     */
    bool dribbleRegisters = false;

    /** Cost of loading a context whose thread uses @p c registers. */
    uint64_t
    loadCost(unsigned c) const
    {
        return (dribbleRegisters ? 0 : c) + blockOverhead;
    }

    /** Cost of unloading a context whose thread uses @p c registers. */
    uint64_t
    unloadCost(unsigned c) const
    {
        return (dribbleRegisters ? 0 : c) + blockOverhead;
    }

    /** Figure 4 "Flexible" column with switch cost @p s. */
    static CostModel paperFlexible(uint64_t s);

    /** Figure 4 "Fixed" column with switch cost @p s. */
    static CostModel paperFixed(uint64_t s);

    /**
     * Flexible costs assuming an FF1 (find-first-set) instruction:
     * allocation in ~15 cycles (paper, footnote 2).
     */
    static CostModel ff1Flexible(uint64_t s);

    /**
     * The specialized low-cost allocation policy sketched in
     * Section 3.3 (four-bit bitmap + direct lookup table), used for
     * the Figure 6(a) ablation.
     */
    static CostModel lowCostFlexible(uint64_t s);
};

} // namespace rr::runtime

#endif // RR_RUNTIME_COST_MODEL_HH
