#include "runtime/context_ring.hh"

#include "base/logging.hh"

namespace rr::runtime {

void
ContextRing::insert(uint32_t rrm)
{
    rr_assert(!contains(rrm), "rrm ", rrm, " already in ring");
    if (next_.empty()) {
        next_[rrm] = rrm;
        prev_[rrm] = rrm;
        current_ = rrm;
        return;
    }
    // Insert at the tail of the round-robin order (just before
    // current): every member that is already waiting runs before the
    // newcomer. Inserting after current instead would let freshly
    // woken contexts monopolize the processor and starve ready ones.
    const uint32_t pred = prev_[current_];
    next_[pred] = rrm;
    prev_[rrm] = pred;
    next_[rrm] = current_;
    prev_[current_] = rrm;
}

void
ContextRing::remove(uint32_t rrm)
{
    const auto it = next_.find(rrm);
    rr_assert(it != next_.end(), "rrm ", rrm, " not in ring");

    const uint32_t succ = it->second;
    const uint32_t pred = prev_[rrm];

    if (succ == rrm) {
        // Last member.
        next_.clear();
        prev_.clear();
        current_ = 0;
        return;
    }
    next_[pred] = succ;
    prev_[succ] = pred;
    next_.erase(rrm);
    prev_.erase(rrm);
    if (current_ == rrm)
        current_ = succ;
}

uint32_t
ContextRing::current() const
{
    rr_assert(!empty(), "ring is empty");
    return current_;
}

uint32_t
ContextRing::advance()
{
    rr_assert(!empty(), "ring is empty");
    current_ = next_.at(current_);
    return current_;
}

uint32_t
ContextRing::nextOf(uint32_t rrm) const
{
    const auto it = next_.find(rrm);
    rr_assert(it != next_.end(), "rrm ", rrm, " not in ring");
    return it->second;
}

std::vector<uint32_t>
ContextRing::members() const
{
    std::vector<uint32_t> out;
    if (empty())
        return out;
    uint32_t at = current_;
    do {
        out.push_back(at);
        at = next_.at(at);
    } while (at != current_);
    return out;
}

PriorityRing::PriorityRing(unsigned levels)
    : rings_(levels)
{
    rr_assert(levels >= 1, "need at least one priority level");
}

void
PriorityRing::insert(uint32_t rrm, unsigned level)
{
    rr_assert(level < rings_.size(), "bad priority level ", level);
    rr_assert(levelOf(rrm) < 0, "rrm ", rrm, " already queued");
    rings_[level].insert(rrm);
}

void
PriorityRing::remove(uint32_t rrm)
{
    const int level = levelOf(rrm);
    rr_assert(level >= 0, "rrm ", rrm, " not queued");
    rings_[static_cast<unsigned>(level)].remove(rrm);
}

bool
PriorityRing::empty() const
{
    for (const auto &ring : rings_) {
        if (!ring.empty())
            return false;
    }
    return true;
}

size_t
PriorityRing::size() const
{
    size_t n = 0;
    for (const auto &ring : rings_)
        n += ring.size();
    return n;
}

uint32_t
PriorityRing::current() const
{
    for (const auto &ring : rings_) {
        if (!ring.empty())
            return ring.current();
    }
    rr_panic("all priority levels are empty");
}

uint32_t
PriorityRing::advance()
{
    for (auto &ring : rings_) {
        if (!ring.empty())
            return ring.advance();
    }
    rr_panic("all priority levels are empty");
}

int
PriorityRing::levelOf(uint32_t rrm) const
{
    for (size_t i = 0; i < rings_.size(); ++i) {
        if (rings_[i].contains(rrm))
            return static_cast<int>(i);
    }
    return -1;
}

ContextRing &
PriorityRing::level(unsigned level)
{
    rr_assert(level < rings_.size(), "bad priority level ", level);
    return rings_[level];
}

} // namespace rr::runtime
