/**
 * @file
 * The software context allocator — a generalization of the paper's
 * Appendix A routines.
 *
 * The register file is viewed as an array of 4-register "chunks"; an
 * allocation bitmap holds one bit per chunk (1 = free). A context of
 * size 2^k registers is a naturally aligned run of 2^k / 4 chunks, so
 * the resulting base register number doubles as the register
 * relocation mask (RRM): ORing any offset < 2^k into an aligned base
 * yields base + offset, which is exactly the flexible base/offset
 * split of Figure 1.
 *
 * The search uses the Appendix A bit-parallel prefix scan to build a
 * map of free aligned runs, then find-first-set — equivalent to the
 * listing's binary search but expressed over whole bitmap words.
 */

#ifndef RR_RUNTIME_CONTEXT_ALLOCATOR_HH
#define RR_RUNTIME_CONTEXT_ALLOCATOR_HH

#include <cstdint>
#include <optional>
#include <vector>

namespace rr::runtime {

/** A resident context: an aligned power-of-two block of registers. */
struct Context
{
    uint32_t rrm = 0;      ///< relocation mask == base register number
    unsigned size = 0;     ///< allocated registers (power of two)

    /** First register of the context. */
    unsigned baseReg() const { return rrm; }

    /** One-past-the-last register of the context. */
    unsigned endReg() const { return rrm + size; }

    bool operator==(const Context &other) const = default;
};

/** Aggregate statistics kept by the allocator. */
struct AllocatorStats
{
    uint64_t allocCalls = 0;     ///< total allocation attempts
    uint64_t allocFailures = 0;  ///< attempts that found no space
    uint64_t deallocCalls = 0;   ///< total deallocations
};

/** Bitmap-based allocator for variable-size register contexts. */
class ContextAllocator
{
  public:
    /**
     * @param num_regs       register file size F (power of two >= 16)
     * @param operand_width  w; the maximum context size is 2^w
     * @param min_size       smallest allocatable context (>= chunk
     *                       size; the paper suggests at least 4 so a
     *                       context can hold more than a PC)
     */
    ContextAllocator(unsigned num_regs, unsigned operand_width,
                     unsigned min_size = 4);

    /** Register file size F. */
    unsigned numRegs() const { return numRegs_; }

    /** Smallest allocatable context size. */
    unsigned minSize() const { return minSize_; }

    /** Largest allocatable context size (min(2^w, F)). */
    unsigned maxSize() const { return maxSize_; }

    /**
     * The context size that a thread requiring @p required_regs
     * registers receives: @p required_regs rounded up to a power of
     * two, clamped to [minSize, maxSize]. Returns 0 when the thread
     * cannot fit any context (required > maxSize).
     */
    unsigned contextSizeFor(unsigned required_regs) const;

    /**
     * Allocate a context for a thread that uses @p required_regs
     * registers. First-fit at the lowest base address.
     * @return the context, or nullopt when no aligned free run exists
     */
    std::optional<Context> allocate(unsigned required_regs);

    /** Release a previously allocated context. */
    void release(const Context &context);

    /**
     * Re-occupy @p context during checkpoint restore: marks exactly
     * its chunks allocated without counting toward the statistics.
     * The chunks must currently be free. Because the bitmap is a
     * pure function of the live context set, replaying reserve() for
     * every restored context reproduces the allocator bit-for-bit.
     */
    void reserve(const Context &context);

    /** Overwrite lifetime statistics (checkpoint restore). */
    void restoreStats(const AllocatorStats &stats) { stats_ = stats; }

    /** Registers currently free. */
    unsigned freeRegs() const;

    /** Registers currently allocated. */
    unsigned allocatedRegs() const { return numRegs_ - freeRegs(); }

    /** Fraction of the register file currently allocated. */
    double utilization() const;

    /** @return true when every chunk is free. */
    bool empty() const { return freeRegs() == numRegs_; }

    /** Lifetime statistics. */
    const AllocatorStats &stats() const { return stats_; }

    /**
     * @return true when the chunk containing register @p reg is
     * allocated (tests use this to verify non-overlap).
     */
    bool regAllocated(unsigned reg) const;

    /** Registers per bitmap chunk (the paper uses 4). */
    static constexpr unsigned chunkRegs = 4;

  private:
    unsigned numRegs_;
    unsigned minSize_;
    unsigned maxSize_;
    unsigned numChunks_;
    std::vector<uint64_t> bitmap_; ///< 1 = free chunk
    AllocatorStats stats_;
};

} // namespace rr::runtime

#endif // RR_RUNTIME_CONTEXT_ALLOCATOR_HH
