#include "runtime/interval_allocator.hh"

#include "base/logging.hh"

namespace rr::runtime {

IntervalAllocator::IntervalAllocator(unsigned num_regs)
    : numRegs_(num_regs), freeRegs_(num_regs)
{
    rr_assert(num_regs > 0, "empty register file");
    free_[0] = num_regs;
}

std::optional<Interval>
IntervalAllocator::allocate(unsigned size)
{
    rr_assert(size > 0, "cannot allocate zero registers");
    for (auto it = free_.begin(); it != free_.end(); ++it) {
        if (it->second < size)
            continue;
        Interval interval{it->first, size};
        const unsigned leftover = it->second - size;
        const unsigned new_base = it->first + size;
        free_.erase(it);
        if (leftover > 0)
            free_[new_base] = leftover;
        freeRegs_ -= size;
        return interval;
    }
    return std::nullopt;
}

void
IntervalAllocator::release(const Interval &interval)
{
    rr_assert(interval.size > 0 &&
                  interval.base + interval.size <= numRegs_,
              "bad interval [", interval.base, ", ",
              interval.base + interval.size, ")");

    auto [it, inserted] = free_.emplace(interval.base, interval.size);
    rr_assert(inserted, "double free at base ", interval.base);

    // Coalesce with the successor.
    auto next = std::next(it);
    if (next != free_.end() && it->first + it->second == next->first) {
        it->second += next->second;
        free_.erase(next);
    }
    // Coalesce with the predecessor.
    if (it != free_.begin()) {
        auto prev = std::prev(it);
        rr_assert(prev->first + prev->second <= it->first,
                  "free blocks overlap — release of unowned interval?");
        if (prev->first + prev->second == it->first) {
            prev->second += it->second;
            free_.erase(it);
        }
    }
    freeRegs_ += interval.size;
}

void
IntervalAllocator::reserve(const Interval &interval)
{
    rr_assert(interval.size > 0 &&
                  interval.base + interval.size <= numRegs_,
              "bad interval [", interval.base, ", ",
              interval.base + interval.size, ")");

    // Find the free block containing the interval.
    auto it = free_.upper_bound(interval.base);
    rr_assert(it != free_.begin(),
              "reserve of occupied interval at base ", interval.base);
    --it;
    const unsigned blockBase = it->first;
    const unsigned blockSize = it->second;
    rr_assert(blockBase <= interval.base &&
                  interval.base + interval.size <=
                      blockBase + blockSize,
              "reserve of occupied interval at base ", interval.base);

    free_.erase(it);
    if (interval.base > blockBase)
        free_[blockBase] = interval.base - blockBase;
    const unsigned tailBase = interval.base + interval.size;
    if (tailBase < blockBase + blockSize)
        free_[tailBase] = blockBase + blockSize - tailBase;
    freeRegs_ -= interval.size;
}

unsigned
IntervalAllocator::largestFreeBlock() const
{
    unsigned best = 0;
    for (const auto &[base, size] : free_)
        best = std::max(best, size);
    return best;
}

} // namespace rr::runtime
