/**
 * @file
 * RRISC synchronization runtime: the assembly sources for real
 * concurrent workloads on the machine-MT kernel (rr::runtime).
 *
 * The paper's machine multiplexes one pipeline over resident
 * contexts, and control transfers between threads *only* at an
 * explicit LDRRM (the Figure 3 yield). That makes every
 * load/test/store sequence atomic by construction — no atomic
 * instructions exist or are needed — so a test-and-set spinlock is
 * three plain instructions, and a counting semaphore or a
 * sense-reversing barrier is a handful more. Contention is still
 * real: a lock holder that FAULTs (a long-latency memory operation)
 * or yields inside its critical section forces every competitor into
 * spin-yield loops, and all wait times are endogenous — caused by
 * the other threads' code, not drawn from a distribution.
 *
 * This header generates the runtime and the scenario programs as
 * assembly text so that the kernel harness (kernel/sync_workload.hh),
 * the unit tests, and rrlint all see the same program. Every
 * generated program carries `.thread` and `.lockdef` annotations and
 * lints clean under `rrlint --all --strict`.
 *
 * Register conventions (context-relative, 12-register bodies):
 *   r0  saved PC (Figure 3)      r6  constant 1
 *   r1  saved PSW                r7  constant 0
 *   r2  NextRRM                  r8  runtime scratch
 *   r3  call linkage             r9  per-thread loop counter
 *   r4  argument 0 / work ctr    r10 per-thread parameter
 *   r5  runtime scratch          r11 &completion flag
 *
 * Runtime procedures (callable with `jal r3, NAME`):
 *   lock_acquire   r4 = &lock word; spins through yield when taken
 *   lock_release   r4 = &lock word
 *   sem_p          r4 = &semaphore; blocks through yield at zero
 *   sem_v          r4 = &semaphore
 *   barrier_wait   r4 = &barrier {count, generation, size}
 *   thread_exit    decrements the live counter under the exit lock,
 *                  halts when it was the last thread, parks otherwise
 */

#ifndef RR_RUNTIME_SYNC_RUNTIME_HH
#define RR_RUNTIME_SYNC_RUNTIME_HH

#include <cstdint>
#include <string>

namespace rr::runtime {

/** The four contention regimes of the fig_contention scenario family. */
enum class SyncScenario : uint8_t
{
    /**
     * Every thread bounces a *private* lock: full critical-section
     * machinery, zero contention. The control arm of the family.
     */
    UncontendedLock,

    /**
     * Every thread hammers one *shared* lock and FAULTs inside the
     * critical section: the classic lock convoy. Same instruction
     * stream as UncontendedLock — only the lock address differs.
     */
    LockConvoy,

    /**
     * Producers push through a semaphore-guarded ring buffer to
     * consumers; unbalanced work per side starves one end.
     */
    ProducerConsumer,

    /**
     * Barrier-synchronized phases with per-thread work skew: every
     * phase lasts as long as its slowest thread.
     */
    BarrierSkew,
};

/** @return stable printable name of @p scenario. */
const char *syncScenarioName(SyncScenario scenario);

/**
 * Word addresses of the shared synchronization state. Everything the
 * scenarios touch lives above the code image and below the stacks of
 * nothing (RRISC has no stacks); the defaults leave the machine
 * kernel's layout conventions intact.
 */
struct SyncLayout
{
    uint32_t live = 0x4000;        ///< live-thread countdown latch
    uint32_t exitLock = 0x4001;    ///< protects the live counter
    uint32_t sharedLock = 0x4002;  ///< the convoy's single lock word
    uint32_t mutex = 0x4003;       ///< ring-buffer mutex
    uint32_t semItems = 0x4004;    ///< counting semaphore: full slots
    uint32_t semSpaces = 0x4005;   ///< counting semaphore: free slots
    uint32_t head = 0x4006;        ///< ring consumer index
    uint32_t tail = 0x4007;        ///< ring producer index
    uint32_t barrier = 0x4008;     ///< {count, generation, size}
    uint32_t flagBase = 0x4010;    ///< per-thread completion flags
    uint32_t privateLockBase = 0x4040; ///< per-thread lock words
    uint32_t ringBase = 0x4080;    ///< ring buffer slots
};

/** Tunables of one generated scenario program. */
struct SyncProgramParams
{
    SyncScenario scenario = SyncScenario::LockConvoy;
    SyncLayout layout;

    /** Critical-section work units per round (locked-work bodies). */
    unsigned csUnits = 20;

    /** Non-critical work units per round (locked-work bodies). */
    unsigned ncUnits = 20;

    /** Producer-side work units per item. */
    unsigned produceUnits = 30;

    /** Consumer-side work units per item. */
    unsigned consumeUnits = 10;

    /** Ring buffer capacity in slots. */
    unsigned ringSize = 4;
};

/**
 * The complete, annotated assembly program for @p params — thread
 * bodies plus the synchronization runtime. Per-thread values (entry
 * PC, round count, lock address or work skew, completion-flag
 * address) are poked into context registers by the harness; shared
 * addresses are baked in as `.equ` constants.
 */
std::string syncScenarioSource(const SyncProgramParams &params);

} // namespace rr::runtime

#endif // RR_RUNTIME_SYNC_RUNTIME_HH
