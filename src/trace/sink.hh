/**
 * @file
 * Trace sinks: where emitted events go (rr::trace).
 *
 * A simulator emits into a TraceSink through a Tracer handle
 * (tracer.hh); the sink decides retention. Provided sinks:
 *
 *  - VectorSink: unbounded in-memory record, for tests, audits that
 *    need replay, and the Chrome exporter;
 *  - RingBufferSink: fixed-capacity ring that keeps the most recent
 *    events and counts what it dropped — the always-on, bounded-
 *    overhead "flight recorder" configuration;
 *  - StreamJsonSink: streaming JSON Lines ("rr.trace.v1" records,
 *    docs/TRACE.md) for rrsim --trace=FILE and offline tooling;
 *  - TeeSink: fan one emission stream out to two sinks (e.g. audit
 *    while capturing).
 *
 * Sinks are NOT thread-safe; the simulators are single-threaded and
 * the sweep harness gives every concurrent simulation its own sink.
 */

#ifndef RR_TRACE_SINK_HH
#define RR_TRACE_SINK_HH

#include <cstddef>
#include <ostream>
#include <vector>

#include "trace/event.hh"

namespace rr::trace {

/** Receives the event stream of one simulation. */
class TraceSink
{
  public:
    virtual ~TraceSink() = default;

    /** Record one event. */
    virtual void emit(const TraceEvent &event) = 0;

    /** Flush any buffered output (default: nothing to do). */
    virtual void flush() {}
};

/** Unbounded in-memory sink. */
class VectorSink : public TraceSink
{
  public:
    void emit(const TraceEvent &event) override
    {
        events_.push_back(event);
    }

    const std::vector<TraceEvent> &events() const { return events_; }
    std::vector<TraceEvent> takeEvents() { return std::move(events_); }

  private:
    std::vector<TraceEvent> events_;
};

/**
 * Fixed-capacity ring: keeps the last @p capacity events, counting
 * (never silently hiding) how many older events were overwritten.
 */
class RingBufferSink : public TraceSink
{
  public:
    explicit RingBufferSink(std::size_t capacity);

    void emit(const TraceEvent &event) override;

    /** Retained events, oldest first. */
    std::vector<TraceEvent> snapshot() const;

    std::size_t capacity() const { return capacity_; }

    /** Events overwritten because the ring was full. */
    uint64_t dropped() const { return dropped_; }

    /** Total events ever emitted into the ring. */
    uint64_t emitted() const { return emitted_; }

  private:
    std::size_t capacity_;
    std::size_t next_ = 0;
    uint64_t emitted_ = 0;
    uint64_t dropped_ = 0;
    std::vector<TraceEvent> ring_;
};

/**
 * Streaming JSON Lines sink: one "rr.trace.v1" object per line,
 * written as events arrive (constant memory). The first line is a
 * header record carrying the schema id.
 */
class StreamJsonSink : public TraceSink
{
  public:
    /** @param out stream the records are written to (not owned). */
    explicit StreamJsonSink(std::ostream &out);

    void emit(const TraceEvent &event) override;
    void flush() override;

    /** Events written so far (excluding the header line). */
    uint64_t emitted() const { return emitted_; }

  private:
    std::ostream &out_;
    uint64_t emitted_ = 0;
};

/** Serialize one event as a single-line "rr.trace.v1" JSON object. */
std::string eventToJsonLine(const TraceEvent &event);

/** The header line a JSONL trace starts with. */
std::string traceJsonHeaderLine();

/** Duplicate the stream into two sinks (either may be null). */
class TeeSink : public TraceSink
{
  public:
    TeeSink(TraceSink *first, TraceSink *second)
        : first_(first), second_(second)
    {
    }

    void
    emit(const TraceEvent &event) override
    {
        if (first_ != nullptr)
            first_->emit(event);
        if (second_ != nullptr)
            second_->emit(event);
    }

    void
    flush() override
    {
        if (first_ != nullptr)
            first_->flush();
        if (second_ != nullptr)
            second_->flush();
    }

  private:
    TraceSink *first_;
    TraceSink *second_;
};

} // namespace rr::trace

#endif // RR_TRACE_SINK_HH
