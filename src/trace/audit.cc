#include "trace/audit.hh"

#include <algorithm>
#include <utility>

namespace rr::trace {

namespace {

/** Kinds the per-component reconciliation maps onto stats buckets. */
constexpr std::size_t
idx(EventKind kind)
{
    return static_cast<std::size_t>(kind);
}

std::string
mismatch(const char *what, uint64_t trace_value, uint64_t stat_value)
{
    std::string out = what;
    out += ": trace ";
    out += std::to_string(trace_value);
    out += " != stats ";
    out += std::to_string(stat_value);
    return out;
}

} // namespace

TraceAuditor::TraceAuditor(const runtime::CostModel &costs)
    : costs_(costs)
{
}

uint64_t
TraceAuditor::kindCycles(EventKind kind) const
{
    return sumCycles_[idx(kind)];
}

uint64_t
TraceAuditor::kindCount(EventKind kind) const
{
    return countByKind_[idx(kind)];
}

void
TraceAuditor::problem(std::string text)
{
    if (problems_.size() >= kMaxProblems) {
        ++suppressed_;
        return;
    }
    problems_.push_back(std::move(text));
}

void
TraceAuditor::checkCharge(const TraceEvent &event, uint64_t expect,
                          const char *what)
{
    if (event.cycles == expect)
        return;
    std::string text = what;
    text += " charged ";
    text += std::to_string(event.cycles);
    text += " cycles, cost model says ";
    text += std::to_string(expect);
    text += " (cycle ";
    text += std::to_string(event.cycle);
    if (event.tid != TraceEvent::kNoThread) {
        text += ", tid ";
        text += std::to_string(event.tid);
    }
    text += ")";
    problem(std::move(text));
}

void
TraceAuditor::emit(const TraceEvent &event)
{
    ++eventsSeen_;
    sumCycles_[idx(event.kind)] += event.cycles;
    ++countByKind_[idx(event.kind)];

    // Traces replay in simulation order: each event ends no earlier
    // than the previous one, and never spans back past time zero.
    if (event.cycle < lastCycle_) {
        problem("time went backwards: event '" +
                std::string(eventKindName(event.kind)) + "' ends at " +
                std::to_string(event.cycle) + " after an event ending at " +
                std::to_string(lastCycle_));
    }
    lastCycle_ = event.cycle;
    if (event.cycles > event.cycle) {
        problem("event '" + std::string(eventKindName(event.kind)) +
                "' spans " + std::to_string(event.cycles) +
                " cycles but ends at " + std::to_string(event.cycle));
    }

    TidState *tid = nullptr;
    if (event.tid != TraceEvent::kNoThread)
        tid = &tids_[event.tid];
    const std::string who =
        tid != nullptr ? "tid " + std::to_string(event.tid) : "scheduler";

    switch (event.kind) {
      case EventKind::Alloc:
        if (event.ok) {
            ++allocOk_;
            checkCharge(event, costs_.allocSucceed, "successful alloc");
            if (tid == nullptr) {
                problem("alloc with no thread at cycle " +
                        std::to_string(event.cycle));
            } else if (tid->allocated) {
                problem(who + " allocated twice without a free (cycle " +
                        std::to_string(event.cycle) + ")");
            } else {
                tid->allocated = true;
            }
        } else {
            ++allocFailed_;
            checkCharge(event, costs_.allocFail, "failed alloc");
        }
        break;

      case EventKind::Load:
        checkCharge(event, costs_.loadCost(event.regs), "load");
        if (tid != nullptr) {
            if (!tid->allocated)
                problem(who + " loaded without an allocation (cycle " +
                        std::to_string(event.cycle) + ")");
            if (tid->loaded)
                problem(who + " loaded twice without an unload (cycle " +
                        std::to_string(event.cycle) + ")");
            tid->loaded = true;
        }
        break;

      case EventKind::Unload:
        checkCharge(event, costs_.unloadCost(event.regs), "unload");
        if (tid != nullptr) {
            if (!tid->loaded)
                problem(who + " unloaded while not loaded (cycle " +
                        std::to_string(event.cycle) + ")");
            tid->loaded = false;
        }
        break;

      case EventKind::Free:
        checkCharge(event, costs_.dealloc, "free");
        if (event.aux == TraceEvent::kFreeFinished)
            ++finishFrees_;
        if (tid != nullptr) {
            if (!tid->allocated)
                problem(who + " freed while not allocated (cycle " +
                        std::to_string(event.cycle) + ")");
            // A finishing thread frees its loaded context directly; an
            // evicted context must already have paid its unload.
            if (event.aux == TraceEvent::kFreeFinished && !tid->loaded)
                problem(who + " finished without a loaded context (cycle " +
                        std::to_string(event.cycle) + ")");
            if (event.aux == TraceEvent::kFreeEvicted && tid->loaded)
                problem(who + " evicted without paying an unload (cycle " +
                        std::to_string(event.cycle) + ")");
            tid->allocated = false;
            tid->loaded = false;
        }
        break;

      case EventKind::Switch:
        checkCharge(event, costs_.contextSwitch, "context switch");
        break;

      case EventKind::Queue:
        checkCharge(event, costs_.queueOp, "queue operation");
        break;

      case EventKind::RunSegment:
        if (tid != nullptr && !tid->loaded)
            problem(who + " ran without a loaded context (cycle " +
                    std::to_string(event.cycle) + ")");
        break;

      case EventKind::FaultIssue:
      case EventKind::FaultComplete:
      case EventKind::SchedulerPoll:
      case EventKind::UnloadDecision:
      case EventKind::Instruction:
      case EventKind::Barrier:
        break;
    }
}

std::vector<std::string>
TraceAuditor::reconcile(const AuditTotals &totals) const
{
    std::vector<std::string> out = problems_;
    if (suppressed_ > 0)
        out.push_back("... and " + std::to_string(suppressed_) +
                      " more streaming problems");

    const auto check = [&](const char *what, uint64_t trace_value,
                           uint64_t stat_value) {
        if (trace_value != stat_value)
            out.push_back(mismatch(what, trace_value, stat_value));
    };

    // 1. Per-component cycle conservation.
    check("useful cycles", kindCycles(EventKind::RunSegment),
          totals.usefulCycles);
    check("idle cycles", kindCycles(EventKind::SchedulerPoll),
          totals.idleCycles);
    check("switch cycles", kindCycles(EventKind::Switch),
          totals.switchCycles);
    check("alloc cycles", kindCycles(EventKind::Alloc),
          totals.allocCycles);
    check("dealloc cycles", kindCycles(EventKind::Free),
          totals.deallocCycles);
    check("load cycles", kindCycles(EventKind::Load), totals.loadCycles);
    check("unload cycles", kindCycles(EventKind::Unload),
          totals.unloadCycles);
    check("queue cycles", kindCycles(EventKind::Queue),
          totals.queueCycles);

    uint64_t all = 0;
    for (const uint64_t cycles : sumCycles_)
        all += cycles;
    check("total charged cycles", all, totals.totalCycles);

    // 2. Figure 4 actions appear exactly once each.
    check("faults issued", kindCount(EventKind::FaultIssue),
          totals.faults);
    check("faults completed", kindCount(EventKind::FaultComplete),
          totals.faults);
    check("loads", kindCount(EventKind::Load), totals.loads);
    check("unloads", kindCount(EventKind::Unload), totals.unloads);
    check("successful allocs", allocOk_, totals.allocSuccesses);
    check("failed allocs", allocFailed_, totals.allocFailures);
    check("threads finished", finishFrees_, totals.threadsFinished);
    check("frees", kindCount(EventKind::Free),
          totals.allocSuccesses); // every granted context is freed once

    // 3. No context is left mid-lifecycle at end of run.
    for (const auto &[id, state] : tids_) {
        if (state.allocated)
            out.push_back("tid " + std::to_string(id) +
                          " still holds an allocated context at end of "
                          "trace");
    }

    return out;
}

void
TraceAuditor::saveState(ckpt::Writer &writer) const
{
    writer.beginSection(kCkptSection);
    writer.u64(1, eventsSeen_);
    writer.u64(2, lastCycle_);
    writer.u64vec(3, std::vector<uint64_t>(sumCycles_,
                                           sumCycles_ +
                                               numEventKinds));
    writer.u64vec(4, std::vector<uint64_t>(countByKind_,
                                           countByKind_ +
                                               numEventKinds));
    writer.u64(5, allocOk_);
    writer.u64(6, allocFailed_);
    writer.u64(7, finishFrees_);
    writer.u64(8, suppressed_);

    // Thread lifecycle states, sorted by tid so identical auditor
    // states always serialize to identical bytes (the unordered_map
    // iteration order is not deterministic).
    std::vector<uint32_t> tids, flags;
    tids.reserve(tids_.size());
    for (const auto &[tid, state] : tids_)
        tids.push_back(tid);
    std::sort(tids.begin(), tids.end());
    flags.reserve(tids.size());
    for (const uint32_t tid : tids) {
        const TidState &state = tids_.at(tid);
        flags.push_back((state.allocated ? 1u : 0u) |
                        (state.loaded ? 2u : 0u));
    }
    writer.u32vec(9, tids);
    writer.u32vec(10, flags);

    // Streaming problems as length-prefixed UTF-8 records.
    std::vector<uint8_t> blob;
    for (const std::string &p : problems_) {
        const auto n = static_cast<uint32_t>(p.size());
        for (int i = 0; i < 4; ++i)
            blob.push_back(static_cast<uint8_t>(n >> (8 * i)));
        blob.insert(blob.end(), p.begin(), p.end());
    }
    writer.u64(11, problems_.size());
    writer.bytes(12, blob);
    writer.endSection();
}

void
TraceAuditor::restoreState(const ckpt::Reader &reader)
{
    const std::vector<uint64_t> sums =
        reader.u64vec(kCkptSection, 3);
    const std::vector<uint64_t> counts =
        reader.u64vec(kCkptSection, 4);
    if (sums.size() != numEventKinds ||
        counts.size() != numEventKinds)
        throw ckpt::Error("auditor per-kind arrays have the wrong "
                          "length");
    const std::vector<uint32_t> tids =
        reader.u32vec(kCkptSection, 9);
    const std::vector<uint32_t> flags =
        reader.u32vec(kCkptSection, 10);
    if (tids.size() != flags.size())
        throw ckpt::Error("auditor thread arrays disagree in length");

    eventsSeen_ = reader.u64(kCkptSection, 1);
    lastCycle_ = reader.u64(kCkptSection, 2);
    std::copy(sums.begin(), sums.end(), sumCycles_);
    std::copy(counts.begin(), counts.end(), countByKind_);
    allocOk_ = reader.u64(kCkptSection, 5);
    allocFailed_ = reader.u64(kCkptSection, 6);
    finishFrees_ = reader.u64(kCkptSection, 7);
    suppressed_ = reader.u64(kCkptSection, 8);

    tids_.clear();
    for (std::size_t i = 0; i < tids.size(); ++i) {
        TidState state;
        state.allocated = (flags[i] & 1u) != 0;
        state.loaded = (flags[i] & 2u) != 0;
        tids_[tids[i]] = state;
    }

    const uint64_t problemCount = reader.u64(kCkptSection, 11);
    const std::vector<uint8_t> blob =
        reader.bytes(kCkptSection, 12);
    problems_.clear();
    std::size_t at = 0;
    for (uint64_t i = 0; i < problemCount; ++i) {
        if (at + 4 > blob.size())
            throw ckpt::Error("auditor problem list is truncated");
        uint32_t n = 0;
        for (int b = 0; b < 4; ++b)
            n |= static_cast<uint32_t>(blob[at + static_cast<std::size_t>(b)])
                 << (8 * b);
        at += 4;
        if (at + n > blob.size())
            throw ckpt::Error("auditor problem list is truncated");
        problems_.emplace_back(blob.begin() +
                                   static_cast<std::ptrdiff_t>(at),
                               blob.begin() +
                                   static_cast<std::ptrdiff_t>(at + n));
        at += n;
    }
    if (at != blob.size())
        throw ckpt::Error("auditor problem list has trailing bytes");
}

} // namespace rr::trace
