/**
 * @file
 * Cycle-accounting audit of a trace (rr::trace).
 *
 * The audit contract (docs/TRACE.md): a simulator's trace is the
 * complete record of everything it charged, so
 *
 *  1. per-component cycle sums over the trace must equal the
 *     corresponding end-of-run statistics fields *exactly* —
 *     useful, idle, switch, allocation, deallocation, load, unload,
 *     and queue cycles — and the sum of every charged event must
 *     equal total simulated time;
 *  2. every Figure 4 charge must appear exactly once per allocator /
 *     loader action, with exactly the cost model's amount: an
 *     allocation is charged once before the one load it admits, an
 *     unload is charged once and followed by exactly one
 *     deallocation, and a context never loads twice without an
 *     intervening unload or free;
 *  3. event end-times must be non-decreasing (the trace replays in
 *     simulation order).
 *
 * TraceAuditor is itself a TraceSink, so auditing is streaming — it
 * keeps O(threads) state and never stores the event stream, which is
 * what lets rrbench audit every simulation of a full sweep.
 */

#ifndef RR_TRACE_AUDIT_HH
#define RR_TRACE_AUDIT_HH

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "ckpt/snapshot.hh"
#include "runtime/cost_model.hh"
#include "trace/sink.hh"

namespace rr::trace {

/**
 * The aggregate statistics a trace must reconcile with — a neutral
 * mirror of mt::MtStats (mt::auditTotals() converts), kept here so
 * the trace layer does not depend on the simulators it observes.
 */
struct AuditTotals
{
    uint64_t totalCycles = 0;
    uint64_t usefulCycles = 0;
    uint64_t idleCycles = 0;
    uint64_t switchCycles = 0;
    uint64_t allocCycles = 0;
    uint64_t deallocCycles = 0;
    uint64_t loadCycles = 0;
    uint64_t unloadCycles = 0;
    uint64_t queueCycles = 0;

    uint64_t faults = 0;
    uint64_t loads = 0;
    uint64_t unloads = 0;
    uint64_t allocSuccesses = 0;
    uint64_t allocFailures = 0;
    uint64_t threadsFinished = 0;
};

/**
 * Streaming trace auditor. Attach it as (one of) the simulation's
 * sinks, run the simulation, then call reconcile() with the reported
 * statistics; an empty problem list is the conservation proof.
 */
class TraceAuditor : public TraceSink, public ckpt::Restorable
{
  public:
    /** @param costs the cost model the simulation charged under. */
    explicit TraceAuditor(const runtime::CostModel &costs);

    void emit(const TraceEvent &event) override;

    /**
     * Checkpoint the running sums, per-thread lifecycle states, and
     * any streaming problems (rr.ckpt.v1 section 0x30), so an audit
     * resumed from a snapshot reconciles exactly like one that
     * watched the whole run. The cost model is configuration and is
     * not serialized.
     */
    void saveState(ckpt::Writer &writer) const override;
    void restoreState(const ckpt::Reader &reader) override;

    /** Checkpoint section tag used by TraceAuditor. */
    static constexpr uint32_t kCkptSection = 0x30;

    /**
     * Check the accumulated trace against @p totals.
     * @return all violations (streaming problems + reconciliation
     *         mismatches); empty means the trace conserves.
     */
    std::vector<std::string> reconcile(const AuditTotals &totals) const;

    /** Violations found while streaming (event-local checks). */
    const std::vector<std::string> &problems() const
    {
        return problems_;
    }

    uint64_t eventsSeen() const { return eventsSeen_; }
    uint64_t kindCycles(EventKind kind) const;
    uint64_t kindCount(EventKind kind) const;

  private:
    /** Lifecycle state of one simulated thread's context charges. */
    struct TidState
    {
        bool allocated = false; ///< Alloc charged, not yet freed
        bool loaded = false;    ///< Load charged, not yet un/freed
    };

    void problem(std::string text);
    void checkCharge(const TraceEvent &event, uint64_t expect,
                     const char *what);

    runtime::CostModel costs_;
    uint64_t eventsSeen_ = 0;
    uint64_t lastCycle_ = 0;
    uint64_t sumCycles_[numEventKinds] = {};
    uint64_t countByKind_[numEventKinds] = {};
    uint64_t allocOk_ = 0;
    uint64_t allocFailed_ = 0;
    uint64_t finishFrees_ = 0;
    uint64_t suppressed_ = 0;
    std::unordered_map<uint32_t, TidState> tids_;
    std::vector<std::string> problems_;

    static constexpr std::size_t kMaxProblems = 32;
};

} // namespace rr::trace

#endif // RR_TRACE_AUDIT_HH
