/**
 * @file
 * The emission handle the simulators hold (rr::trace).
 *
 * A Tracer wraps an optional, non-owning TraceSink pointer. With no
 * sink attached every emission site reduces to one predictable
 * branch on a member pointer — the event struct is not even
 * constructed, so an untraced simulation pays (and measures) nothing.
 * Emission sites therefore follow the pattern:
 *
 *   if (tracer_.enabled())
 *       tracer_.emit({...});
 */

#ifndef RR_TRACE_TRACER_HH
#define RR_TRACE_TRACER_HH

#include "trace/sink.hh"

namespace rr::trace {

/** Lightweight, copyable emission handle. */
class Tracer
{
  public:
    Tracer() = default;
    explicit Tracer(TraceSink *sink) : sink_(sink) {}

    /** Attach (or detach with nullptr) the sink. Not owned. */
    void attach(TraceSink *sink) { sink_ = sink; }

    /** Whether emission sites should build and emit events. */
    bool enabled() const { return sink_ != nullptr; }

    /** Forward @p event to the sink; no-op when none is attached. */
    void
    emit(const TraceEvent &event)
    {
        if (sink_ != nullptr)
            sink_->emit(event);
    }

    void
    flush()
    {
        if (sink_ != nullptr)
            sink_->flush();
    }

  private:
    TraceSink *sink_ = nullptr;
};

} // namespace rr::trace

#endif // RR_TRACE_TRACER_HH
