/**
 * @file
 * Chrome trace_event exporter (rr::trace): renders recorded event
 * streams as the JSON Array Format understood by Perfetto
 * (https://ui.perfetto.dev) and chrome://tracing, so a simulation
 * run opens directly in a timeline viewer.
 *
 * Mapping (docs/TRACE.md):
 *  - one pid per stream — the MT harness passes one stream per
 *    architecture, so fixed and flexible runs sit side by side;
 *  - one tid per simulated thread (tid 0 is the scheduler track,
 *    used for events with no attributable thread);
 *  - charged events (run segments, switches, Figure 4 costs, idle
 *    intervals) become complete ("X") slices spanning their charged
 *    cycles; instantaneous events (fault issue/completion, unload
 *    decisions) become instant ("i") marks;
 *  - `ts`/`dur` are simulated cycles, displayed as microseconds —
 *    1 us on screen = 1 cycle.
 *
 * Output is deterministic: streams are emitted in the order given
 * and events in emission order, so identical event streams produce
 * byte-identical files (the property the --jobs invariance test
 * checks for traces).
 */

#ifndef RR_TRACE_CHROME_EXPORT_HH
#define RR_TRACE_CHROME_EXPORT_HH

#include <string>
#include <vector>

#include "trace/event.hh"

namespace rr::trace {

/** One timeline process: a labelled event stream. */
struct ChromeStream
{
    /** Process label shown by the viewer (e.g. "flexible"). */
    std::string process;

    std::vector<TraceEvent> events;

    /**
     * Events dropped before capture (ring overwrite or capture cap);
     * > 0 adds a visible truncation note to the process metadata.
     */
    uint64_t dropped = 0;
};

/** Render @p streams as a Chrome trace_event JSON document. */
std::string exportChromeTrace(const std::vector<ChromeStream> &streams);

} // namespace rr::trace

#endif // RR_TRACE_CHROME_EXPORT_HH
