/**
 * @file
 * Typed trace events for the multithreading simulators (rr::trace).
 *
 * Every cycle a simulator reports in its end-of-run statistics is
 * first *charged* as a discrete event — a run segment, a context
 * switch, a Figure 4 allocation/load/unload cost, an idle spin
 * interval — and the trace is the complete charged-event record of a
 * run. Conservation is the design contract: the per-kind cycle sums
 * of a trace must reconcile exactly with the aggregate statistics
 * (audit.hh proves this per run), so a divergence between two
 * architectures or between the event simulator and the RRISC
 * interpreter can be localized to the event that caused it.
 *
 * Events are plain data and carry no behaviour; this header has no
 * dependency on the simulators, so the machine, runtime, and
 * multithread layers can all emit events without layering cycles.
 */

#ifndef RR_TRACE_EVENT_HH
#define RR_TRACE_EVENT_HH

#include <cstdint>

namespace rr::trace {

/** What a trace event records. */
enum class EventKind : uint8_t
{
    RunSegment,     ///< useful execution between faults
    Switch,         ///< context switch (S cycles)
    FaultIssue,     ///< long-latency fault raised; aux = latency
    FaultComplete,  ///< outstanding fault serviced
    Alloc,          ///< context allocation attempt; ok = success
    Free,           ///< context deallocation; aux: 1 = thread
                    ///< finished, 0 = evicted while blocked
    Load,           ///< context load (C + overhead cycles)
    Unload,         ///< context unload (C + overhead cycles)
    Queue,          ///< software thread-queue insert or remove
    SchedulerPoll,  ///< idle spin interval; aux = blocked residents
    UnloadDecision, ///< two-phase budget exhausted; aux = accrued
    Instruction,    ///< one machine instruction (rrsim --trace=FILE)
    Barrier,        ///< barrier release (machine kernels)
};

/** @return stable printable name of @p kind (used in JSON output). */
const char *eventKindName(EventKind kind);

/** Number of distinct event kinds (for per-kind accumulators). */
constexpr unsigned numEventKinds = 13;

/**
 * One structured trace event.
 *
 * `cycle` stamps the simulation time at which the event *ended*;
 * `cycles` is the duration / charged cost, so the event spans
 * [cycle - cycles, cycle]. Zero-duration events (fault issue and
 * completion, unload decisions) are instants.
 */
struct TraceEvent
{
    EventKind kind = EventKind::RunSegment;

    /** Architecture id (mt::ArchKind value for the MT simulators). */
    uint8_t arch = 0;

    /** True for successful allocation attempts; unused otherwise. */
    bool ok = true;

    /** Thread id; kNoThread when no thread is attributable. */
    uint32_t tid = kNoThread;

    /** Context id (relocation mask base); kNoContext when absent. */
    uint32_t ctx = kNoContext;

    /** Registers the thread actually uses (C) for Load/Unload. */
    uint32_t regs = 0;

    /** End-of-event simulation time. */
    uint64_t cycle = 0;

    /** Charged cycles (duration); 0 for instantaneous events. */
    uint64_t cycles = 0;

    /** Kind-specific payload (latency, spin accrual, counts). */
    uint64_t aux = 0;

    static constexpr uint32_t kNoThread = 0xffffffffu;
    static constexpr uint32_t kNoContext = 0xffffffffu;

    /** Free.aux: the thread ran to completion and freed its context. */
    static constexpr uint64_t kFreeFinished = 1;
    /** Free.aux: the context was reclaimed from a blocked thread. */
    static constexpr uint64_t kFreeEvicted = 0;
};

} // namespace rr::trace

#endif // RR_TRACE_EVENT_HH
