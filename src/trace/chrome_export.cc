#include "trace/chrome_export.hh"

#include <cstdio>
#include <set>

namespace rr::trace {

namespace {

/** Minimal JSON string escape (labels are plain ASCII in practice). */
std::string
quoted(const std::string &text)
{
    std::string out = "\"";
    for (const char c : text) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    out += "\"";
    return out;
}

/** Viewer tid: simulated thread + 1; track 0 is the scheduler. */
uint64_t
viewerTid(const TraceEvent &event)
{
    return event.tid == TraceEvent::kNoThread
               ? 0
               : static_cast<uint64_t>(event.tid) + 1;
}

void
appendMeta(std::string &out, unsigned pid, const char *meta,
           uint64_t tid, bool with_tid, const std::string &name,
           bool &first)
{
    if (!first)
        out += ",\n";
    first = false;
    out += "  {\"name\":\"";
    out += meta;
    out += "\",\"ph\":\"M\",\"pid\":";
    out += std::to_string(pid);
    if (with_tid) {
        out += ",\"tid\":";
        out += std::to_string(tid);
    }
    out += ",\"args\":{\"name\":";
    out += quoted(name);
    out += "}}";
}

void
appendEvent(std::string &out, unsigned pid, const TraceEvent &event,
            bool &first)
{
    if (!first)
        out += ",\n";
    first = false;
    const bool slice = event.cycles > 0;
    out += "  {\"name\":\"";
    out += eventKindName(event.kind);
    out += "\",\"ph\":\"";
    out += slice ? "X" : "i";
    out += "\",\"pid\":";
    out += std::to_string(pid);
    out += ",\"tid\":";
    out += std::to_string(viewerTid(event));
    out += ",\"ts\":";
    out += std::to_string(event.cycle - event.cycles);
    if (slice) {
        out += ",\"dur\":";
        out += std::to_string(event.cycles);
    } else {
        out += ",\"s\":\"t\"";
    }
    out += ",\"args\":{";
    bool first_arg = true;
    const auto arg = [&](const char *key, uint64_t value) {
        if (!first_arg)
            out += ",";
        first_arg = false;
        out += "\"";
        out += key;
        out += "\":";
        out += std::to_string(value);
    };
    if (event.ctx != TraceEvent::kNoContext)
        arg("ctx", event.ctx);
    if (event.regs != 0)
        arg("regs", event.regs);
    if (event.aux != 0)
        arg("aux", event.aux);
    if (event.kind == EventKind::Alloc)
        arg("ok", event.ok ? 1 : 0);
    out += "}}";
}

} // namespace

std::string
exportChromeTrace(const std::vector<ChromeStream> &streams)
{
    std::string out;
    out += "{\"displayTimeUnit\":\"ms\",\"otherData\":{\"schema\":"
           "\"rr.trace.chrome.v1\"},\n\"traceEvents\":[\n";
    bool first = true;
    unsigned pid = 0;
    for (const ChromeStream &stream : streams) {
        ++pid;
        std::string label = stream.process;
        if (stream.dropped > 0) {
            label += " (truncated, ";
            label += std::to_string(stream.dropped);
            label += " events dropped)";
        }
        appendMeta(out, pid, "process_name", 0, false, label, first);

        // One named track per simulated thread, in sorted id order
        // so the document is deterministic.
        std::set<uint64_t> tids;
        for (const TraceEvent &event : stream.events)
            tids.insert(viewerTid(event));
        for (const uint64_t tid : tids) {
            const std::string name =
                tid == 0 ? "scheduler"
                         : "thread " + std::to_string(tid - 1);
            appendMeta(out, pid, "thread_name", tid, true, name,
                       first);
        }

        for (const TraceEvent &event : stream.events)
            appendEvent(out, pid, event, first);
    }
    out += "\n]}\n";
    return out;
}

} // namespace rr::trace
