#include "trace/sink.hh"

#include <string>

#include "base/logging.hh"

namespace rr::trace {

const char *
eventKindName(EventKind kind)
{
    switch (kind) {
      case EventKind::RunSegment:
        return "run";
      case EventKind::Switch:
        return "switch";
      case EventKind::FaultIssue:
        return "fault_issue";
      case EventKind::FaultComplete:
        return "fault_complete";
      case EventKind::Alloc:
        return "alloc";
      case EventKind::Free:
        return "free";
      case EventKind::Load:
        return "load";
      case EventKind::Unload:
        return "unload";
      case EventKind::Queue:
        return "queue";
      case EventKind::SchedulerPoll:
        return "poll";
      case EventKind::UnloadDecision:
        return "unload_decision";
      case EventKind::Instruction:
        return "instr";
      case EventKind::Barrier:
        return "barrier";
    }
    return "unknown";
}

RingBufferSink::RingBufferSink(std::size_t capacity)
    : capacity_(capacity)
{
    rr_assert(capacity_ > 0, "ring sink needs capacity >= 1");
    ring_.reserve(capacity_);
}

void
RingBufferSink::emit(const TraceEvent &event)
{
    if (ring_.size() < capacity_) {
        ring_.push_back(event);
    } else {
        ring_[next_] = event;
        ++dropped_;
    }
    next_ = (next_ + 1) % capacity_;
    ++emitted_;
}

std::vector<TraceEvent>
RingBufferSink::snapshot() const
{
    std::vector<TraceEvent> out;
    out.reserve(ring_.size());
    if (ring_.size() < capacity_) {
        out = ring_;
        return out;
    }
    // Full ring: next_ points at the oldest retained event.
    for (std::size_t i = 0; i < ring_.size(); ++i)
        out.push_back(ring_[(next_ + i) % capacity_]);
    return out;
}

std::string
eventToJsonLine(const TraceEvent &event)
{
    // Hand-rolled: every field is a name, small integer, or bool, so
    // no escaping is ever needed and the hot path stays allocation-
    // light. Field order is fixed — byte-identical traces for
    // identical event streams is part of the determinism contract.
    std::string line;
    line.reserve(160);
    line += "{\"ev\":\"";
    line += eventKindName(event.kind);
    line += "\",\"cycle\":";
    line += std::to_string(event.cycle);
    line += ",\"cycles\":";
    line += std::to_string(event.cycles);
    line += ",\"arch\":";
    line += std::to_string(event.arch);
    if (event.tid != TraceEvent::kNoThread) {
        line += ",\"tid\":";
        line += std::to_string(event.tid);
    }
    if (event.ctx != TraceEvent::kNoContext) {
        line += ",\"ctx\":";
        line += std::to_string(event.ctx);
    }
    if (event.regs != 0) {
        line += ",\"regs\":";
        line += std::to_string(event.regs);
    }
    if (event.aux != 0) {
        line += ",\"aux\":";
        line += std::to_string(event.aux);
    }
    if (event.kind == EventKind::Alloc) {
        line += ",\"ok\":";
        line += event.ok ? "true" : "false";
    }
    line += "}";
    return line;
}

std::string
traceJsonHeaderLine()
{
    return "{\"schema\":\"rr.trace.v1\"}";
}

StreamJsonSink::StreamJsonSink(std::ostream &out) : out_(out)
{
    out_ << traceJsonHeaderLine() << '\n';
}

void
StreamJsonSink::emit(const TraceEvent &event)
{
    out_ << eventToJsonLine(event) << '\n';
    ++emitted_;
}

void
StreamJsonSink::flush()
{
    out_.flush();
}

} // namespace rr::trace
