/**
 * @file
 * Harness for the all-assembly rotation runtime
 * (runtime::rotationSchedulerSource): sets up the memory image
 * (save areas, ready queue, allocation bitmap, live counter),
 * initializes the scheduler context, runs the machine, and checks /
 * reports the outcome.
 *
 * Unlike MachineMtKernel (where the C++ harness plays the runtime),
 * here EVERYTHING is simulated code: context allocation (Appendix
 * A), deallocation, unload and reload (Section 2.5), queueing, and
 * dispatch. The C++ side only builds initial state and watches.
 */

#ifndef RR_KERNEL_ROTATION_KERNEL_HH
#define RR_KERNEL_ROTATION_KERNEL_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "machine/cpu.hh"
#include "trace/tracer.hh"

namespace rr::kernel {

/** Configuration of a rotation-runtime run. */
struct RotationConfig
{
    unsigned numThreads = 6;        ///< oversubscribed thread count
    unsigned segmentsPerThread = 8; ///< run segments before finishing
    unsigned workUnits = 50;        ///< loop passes per segment
    uint64_t maxSteps = 20'000'000; ///< safety cap

    /**
     * Optional structured-event sink (not owned): fault issues and
     * unload/reload rotations are emitted with cycle stamps.
     */
    trace::TraceSink *traceSink = nullptr;
};

/** Results of a rotation-runtime run. */
struct RotationResult
{
    uint64_t totalCycles = 0;
    uint64_t workUnits = 0;      ///< work-loop passes executed
    uint64_t usefulCycles = 0;   ///< 2 * workUnits
    uint64_t faults = 0;         ///< FAULT instructions (class 0)
    uint64_t rotations = 0;      ///< unload/reload round trips
    uint64_t finalAllocMap = 0;  ///< bitmap at halt
    bool halted = false;
    bool allocPanic = false;     ///< the in-image allocator failed

    double efficiency() const
    {
        return totalCycles == 0
                   ? 0.0
                   : static_cast<double>(usefulCycles) /
                         static_cast<double>(totalCycles);
    }
};

/** Build, run, and summarize one rotation-runtime execution. */
class RotationKernel
{
  public:
    explicit RotationKernel(RotationConfig config);

    /** Run to HALT (or the step cap). */
    RotationResult run();

    machine::Cpu &cpu() { return *cpu_; }

    /** Save-area base address of thread @p tid. */
    uint64_t saveAreaOf(unsigned tid) const;

  private:
    RotationConfig config_;
    trace::Tracer tracer_;
    std::unique_ptr<machine::Cpu> cpu_;
    uint32_t workAddr_ = 0;
    uint32_t rotateAddr_ = 0;
    uint32_t dequeueAddr_ = 0;
    RotationResult result_;
};

/** Convenience wrapper. */
RotationResult runRotationKernel(RotationConfig config);

} // namespace rr::kernel

#endif // RR_KERNEL_ROTATION_KERNEL_HH
