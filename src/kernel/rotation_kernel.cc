#include "kernel/rotation_kernel.hh"

#include "assembler/assembler.hh"
#include "base/bitops.hh"
#include "base/logging.hh"
#include "runtime/asm_routines.hh"

namespace rr::kernel {

namespace {

// Must match the .equ block in rotationSchedulerSource().
constexpr uint64_t mailboxAddr = 0x3000;
constexpr uint64_t mailbox2Addr = 0x3001;
constexpr uint64_t liveAddr = 0x3002;
constexpr uint64_t allocMapAddr = 0x3003;
constexpr uint64_t queueAddr = 0x3010;
constexpr uint64_t saveAreaBase = 0x3100;
constexpr unsigned saveAreaWords = 8;

} // namespace

RotationKernel::RotationKernel(RotationConfig config)
    : config_(config)
{
    rr_assert(config_.numThreads >= 1 && config_.numThreads <= 100,
              "1..100 threads supported");
    rr_assert(config_.segmentsPerThread >= 1, "no segments");
    tracer_.attach(config_.traceSink);

    machine::CpuConfig cpu_config;
    cpu_config.numRegs = 128;
    cpu_config.operandWidth = 6;
    cpu_config.ldrrmDelaySlots = 1;
    cpu_config.memWords = 1u << 15;
    cpu_ = std::make_unique<machine::Cpu>(cpu_config);

    const assembler::Program prog = assembler::assemble(
        runtime::rotationSchedulerSource(config_.workUnits));
    for (const auto &error : prog.errors)
        rr_panic("rotation runtime: ", error.str());
    cpu_->mem().loadImage(prog.base, prog.words);
    workAddr_ = prog.addressOf("work");
    rotateAddr_ = prog.addressOf("sched_rotate");
    dequeueAddr_ = prog.addressOf("sched_dequeue");

    // The scheduler context owns registers 0..31 (chunks 0..7); the
    // remaining 24 chunks are free for thread contexts.
    cpu_->mem().write(allocMapAddr, 0xffffff00u);
    cpu_->mem().write(liveAddr, config_.numThreads);

    // Save areas + ready queue (ring of save-area addresses).
    const unsigned qcap = static_cast<unsigned>(
        roundUpPowerOfTwo(config_.numThreads + 1));
    rr_assert(queueAddr + qcap <= saveAreaBase, "queue too large");
    const uint32_t thread_start = prog.addressOf("thread_start");
    for (unsigned tid = 0; tid < config_.numThreads; ++tid) {
        const uint64_t area = saveAreaOf(tid);
        cpu_->mem().write(area + 0, thread_start); // r0: entry PC
        cpu_->mem().write(area + 1, 0);            // r1: PSW image
        cpu_->mem().write(area + 2, 0);            // r2: own RRM
        cpu_->mem().write(area + 3, 0);            // r3: sched RRM
        cpu_->mem().write(area + 4, config_.segmentsPerThread); // r6
        cpu_->mem().write(area + 5, 0);            // r7: zero
        cpu_->mem().write(area + 6, 0);            // thread.rrm
        cpu_->mem().write(area + 7, 0);            // thread.allocMask
        cpu_->mem().write(queueAddr + tid,
                          static_cast<uint32_t>(area));
    }

    // Scheduler register file image (context base 0 => absolute).
    cpu_->regs().write(6, 0);
    cpu_->regs().write(8, 0x11111111u);
    cpu_->regs().write(9, 0x0000ffffu);
    cpu_->regs().write(10, static_cast<uint32_t>(allocMapAddr));
    cpu_->regs().write(13, 0x0000000fu);
    cpu_->regs().write(16, static_cast<uint32_t>(queueAddr));
    cpu_->regs().write(17, 0);                    // head
    cpu_->regs().write(18, config_.numThreads);   // tail
    cpu_->regs().write(19, qcap - 1);             // index mask
    cpu_->regs().write(25, 0x55555555u);

    cpu_->setRrmImmediate(0);
    cpu_->setPc(dequeueAddr_);
}

uint64_t
RotationKernel::saveAreaOf(unsigned tid) const
{
    return saveAreaBase + static_cast<uint64_t>(tid) * saveAreaWords;
}

RotationResult
RotationKernel::run()
{
    cpu_->setFaultHook([this](machine::Cpu &, uint32_t fault_class) {
        if (fault_class == 63) {
            result_.allocPanic = true;
        } else {
            ++result_.faults;
            if (tracer_.enabled()) {
                trace::TraceEvent e;
                e.kind = trace::EventKind::FaultIssue;
                e.cycle = cpu_->cycles();
                e.ctx = cpu_->rrm();
                tracer_.emit(e);
            }
        }
    });
    cpu_->setTraceHook([this](const machine::TraceEntry &entry) {
        if (entry.pc == workAddr_) {
            ++result_.workUnits;
        } else if (entry.pc == rotateAddr_) {
            ++result_.rotations;
            if (tracer_.enabled()) {
                // One rotation = unload the visited context and
                // reload the next queued thread into its registers.
                trace::TraceEvent e;
                e.kind = trace::EventKind::Unload;
                e.cycle = entry.cycle;
                e.ctx = cpu_->rrm();
                tracer_.emit(e);
            }
        }
    });

    cpu_->run(config_.maxSteps);

    result_.halted = cpu_->halted() &&
                     cpu_->trap() == machine::TrapKind::None;
    result_.totalCycles = cpu_->cycles();
    result_.usefulCycles = 2 * result_.workUnits;
    result_.finalAllocMap = cpu_->mem().read(allocMapAddr);
    return result_;
}

RotationResult
runRotationKernel(RotationConfig config)
{
    RotationKernel kernel(config);
    return kernel.run();
}

} // namespace rr::kernel
