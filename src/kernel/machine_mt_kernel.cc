#include "kernel/machine_mt_kernel.hh"

#include <algorithm>
#include <sstream>

#include "assembler/assembler.hh"
#include "base/bitops.hh"
#include "base/logging.hh"
#include "runtime/asm_routines.hh"
#include "runtime/context_loader.hh"

namespace rr::kernel {

namespace {

/** Memory layout (word addresses). */
constexpr uint64_t liveCounterAddr = 0x4000;
constexpr uint64_t flagBase = 0x4010;
constexpr uint64_t tableBase = 0x4100;

/** Machine-kernel event stamped at @p cycle for thread @p tid. */
trace::TraceEvent
kernelEvent(trace::EventKind kind, uint64_t cycle, unsigned tid,
            uint32_t rrm)
{
    trace::TraceEvent event;
    event.kind = kind;
    event.cycle = cycle;
    event.tid = tid;
    event.ctx = rrm;
    return event;
}

unsigned
segmentCount(const KernelConfig &config, unsigned tid)
{
    return config.segmentsByThread.empty()
               ? config.segmentsPerThread
               : config.segmentsByThread[tid];
}

unsigned
maxSegmentCount(const KernelConfig &config)
{
    if (config.segmentsByThread.empty())
        return config.segmentsPerThread;
    return *std::max_element(config.segmentsByThread.begin(),
                             config.segmentsByThread.end());
}

} // namespace

MachineMtKernel::MachineMtKernel(KernelConfig config)
    : config_(std::move(config)), rng_(config_.seed)
{
    rr_assert(config_.segmentUnits != nullptr,
              "segment distribution missing");
    rr_assert(config_.service == FaultService::Barrier ||
                  config_.latency != nullptr,
              "latency distribution missing");
    rr_assert(config_.numThreads >= 1, "no threads");
    rr_assert(config_.regsUsed >= 12,
              "the kernel body uses context-relative r0..r11");
    rr_assert(config_.segmentsByThread.empty() ||
                  config_.segmentsByThread.size() == config_.numThreads,
              "segmentsByThread must name every thread");
    tracer_.attach(config_.traceSink);

    machine::CpuConfig cpu_config;
    cpu_config.numRegs = config_.numRegs;
    cpu_config.operandWidth = config_.operandWidth;
    cpu_config.ldrrmDelaySlots = 1;
    const uint64_t table_words =
        static_cast<uint64_t>(config_.numThreads) *
        (maxSegmentCount(config_) + 1);
    cpu_config.memWords = std::max<size_t>(
        1u << 16, static_cast<size_t>(tableBase + table_words + 64));
    cpu_ = std::make_unique<machine::Cpu>(cpu_config);

    allocator_ = std::make_unique<runtime::ContextAllocator>(
        config_.numRegs, config_.operandWidth);

    buildProgram();
    createThreads();
}

void
MachineMtKernel::buildProgram()
{
    std::ostringstream os;
    os << "entry:\n"
       << "    jmp r0\n"
       << runtime::figure3YieldSource() << R"(
; Shared thread body: run a segment of work units, fault, yield,
; poll for completion on resumption, fetch the next segment.
thread_start:
    ld   r4, 0(r10)     ; first segment length
    addi r10, r10, 1
    bne  r4, r7, work
    b    done           ; empty table
work:
    sub  r4, r4, r6     ; one work unit = sub + bne (2 cycles)
    bne  r4, r7, work
    fault 0             ; segment over: raise the long-latency fault
    jal  r0, yield
poll:
    ld   r8, 0(r9)      ; resumed: has the fault completed?
    bne  r8, r7, resume
poll_fail:
    jal  r0, yield      ; still outstanding: yield again
    b    poll
resume:
    ld   r4, 0(r10)     ; next segment
    addi r10, r10, 1
    bne  r4, r7, work
done:
    ld   r8, 0(r11)     ; thread finished: live_count -= 1
    sub  r8, r8, r6
    st   r8, 0(r11)
    bne  r8, r7, parked
    halt
parked:
    jal  r0, yield
    b    parked
)";

    const assembler::Program prog = assembler::assemble(os.str());
    for (const auto &error : prog.errors)
        rr_panic("kernel program: ", error.str());
    cpu_->mem().loadImage(prog.base, prog.words);
    entryAddr_ = prog.addressOf("thread_start");
    workAddr_ = prog.addressOf("work");
    pollFailAddr_ = prog.addressOf("poll_fail");
}

void
MachineMtKernel::createThreads()
{
    const unsigned context_regs =
        config_.forcedContextSize != 0 ? config_.forcedContextSize
                                       : config_.regsUsed;
    const uint64_t table_stride = maxSegmentCount(config_) + 1;

    for (unsigned tid = 0; tid < config_.numThreads; ++tid) {
        const auto context = allocator_->allocate(context_regs);
        rr_assert(context.has_value(),
                  "thread ", tid, " does not fit the register file; "
                  "reduce numThreads or the context size");

        ThreadInfo info;
        info.rrm = context->rrm;
        info.flagAddr = flagBase + tid;
        info.tableAddr = tableBase + tid * table_stride;

        // Fill the segment table (terminated by a 0 sentinel).
        const unsigned segments = segmentCount(config_, tid);
        for (unsigned s = 0; s < segments; ++s) {
            const uint64_t units =
                std::max<uint64_t>(1, config_.segmentUnits->sample(rng_));
            cpu_->mem().write(info.tableAddr + s,
                              static_cast<uint32_t>(units));
            info.totalUnits += units;
        }
        cpu_->mem().write(info.tableAddr + segments, 0);

        // Architectural register images.
        runtime::pokeContextReg(*cpu_, info.rrm, 0, entryAddr_);
        runtime::pokeContextReg(*cpu_, info.rrm, 1, 0);
        runtime::pokeContextReg(*cpu_, info.rrm, 6, 1);
        runtime::pokeContextReg(*cpu_, info.rrm, 7, 0);
        runtime::pokeContextReg(*cpu_, info.rrm, 9,
                                static_cast<uint32_t>(info.flagAddr));
        runtime::pokeContextReg(*cpu_, info.rrm, 10,
                                static_cast<uint32_t>(info.tableAddr));
        runtime::pokeContextReg(*cpu_, info.rrm, 11,
                                static_cast<uint32_t>(liveCounterAddr));

        rrmToThread_[info.rrm] = tid;
        threads_.push_back(info);
    }

    // Wire the NextRRM ring (Figure 3 / Section 2.2).
    for (size_t i = 0; i < threads_.size(); ++i) {
        const ThreadInfo &cur = threads_[i];
        const ThreadInfo &next = threads_[(i + 1) % threads_.size()];
        runtime::pokeContextReg(*cpu_, cur.rrm, 2, next.rrm);
    }

    cpu_->mem().write(liveCounterAddr,
                      static_cast<uint32_t>(threads_.size()));
    cpu_->setRrmImmediate(threads_.front().rrm);
    cpu_->setPc(entryAddr_);
    result_.residentContexts =
        static_cast<unsigned>(threads_.size());
}

void
MachineMtKernel::onFault(uint32_t)
{
    const auto it = rrmToThread_.find(cpu_->rrm());
    rr_assert(it != rrmToThread_.end(), "fault from unknown context");
    const unsigned tid = it->second;

    cpu_->mem().write(threads_[tid].flagAddr, 0);
    ++result_.faults;

    if (config_.service == FaultService::Barrier) {
        if (arrived_.empty())
            arrived_.assign(threads_.size(), false);
        if (!arrived_[tid]) {
            arrived_[tid] = true;
            ++arrivalCount_;
        }
        if (tracer_.enabled()) {
            tracer_.emit(kernelEvent(trace::EventKind::FaultIssue,
                                     cpu_->cycles(), tid,
                                     threads_[tid].rrm));
        }
        return; // released in onStep when everyone has arrived
    }

    const uint64_t latency =
        std::max<uint64_t>(1, config_.latency->sample(rng_));
    pending_.push({cpu_->cycles() + latency, tid});
    if (tracer_.enabled()) {
        auto e = kernelEvent(trace::EventKind::FaultIssue,
                             cpu_->cycles(), tid, threads_[tid].rrm);
        e.aux = latency;
        tracer_.emit(e);
    }
}

void
MachineMtKernel::onStep(uint64_t cycle, uint32_t pc)
{
    // The harness plays the memory system: completion flags mature
    // as machine time advances.
    while (!pending_.empty() && pending_.top().completion <= cycle) {
        const PendingFault fault = pending_.top();
        pending_.pop();
        cpu_->mem().write(threads_[fault.tid].flagAddr, 1);
        if (tracer_.enabled()) {
            tracer_.emit(kernelEvent(trace::EventKind::FaultComplete,
                                     cycle, fault.tid,
                                     threads_[fault.tid].rrm));
        }
    }

    // Barrier release: every still-running thread has arrived. The
    // live counter is the machine's own memory word, so threads that
    // finished no longer count toward the barrier.
    if (config_.service == FaultService::Barrier &&
        arrivalCount_ > 0 &&
        arrivalCount_ >=
            cpu_->mem().read(liveCounterAddr)) {
        unsigned released = 0;
        for (unsigned tid = 0; tid < threads_.size(); ++tid) {
            if (arrived_[tid]) {
                cpu_->mem().write(threads_[tid].flagAddr, 1);
                arrived_[tid] = false;
                ++released;
                if (tracer_.enabled()) {
                    tracer_.emit(
                        kernelEvent(trace::EventKind::FaultComplete,
                                    cycle, tid, threads_[tid].rrm));
                }
            }
        }
        arrivalCount_ = 0;
        ++result_.barriers;
        if (tracer_.enabled()) {
            trace::TraceEvent e;
            e.kind = trace::EventKind::Barrier;
            e.cycle = cycle;
            e.aux = released;
            tracer_.emit(e);
        }
    }

    if (pc == workAddr_) {
        ++result_.workUnits;
        recorder_.record(cycle, result_.workUnits);
    } else if (pc == pollFailAddr_) {
        ++result_.failedPolls;
        if (tracer_.enabled()) {
            const auto it = rrmToThread_.find(cpu_->rrm());
            if (it != rrmToThread_.end()) {
                auto e = kernelEvent(trace::EventKind::SchedulerPoll,
                                     cycle, it->second,
                                     threads_[it->second].rrm);
                e.aux = 1;
                tracer_.emit(e);
            }
        }
    }
}

KernelResult
MachineMtKernel::run()
{
    cpu_->setFaultHook(
        [this](machine::Cpu &, uint32_t fault_class) {
            onFault(fault_class);
        });
    cpu_->setTraceHook([this](const machine::TraceEntry &entry) {
        onStep(entry.cycle, entry.pc);
    });

    cpu_->run(config_.maxSteps);

    result_.halted = cpu_->halted() &&
                     cpu_->trap() == machine::TrapKind::None;
    result_.totalCycles = cpu_->cycles();
    result_.usefulCycles = 2 * result_.workUnits;
    recorder_.record(result_.totalCycles, result_.workUnits);
    result_.efficiencyTotal =
        result_.totalCycles == 0
            ? 0.0
            : static_cast<double>(result_.usefulCycles) /
                  static_cast<double>(result_.totalCycles);
    result_.efficiencyCentral = 2.0 * recorder_.centralRate();
    return result_;
}

KernelResult
runMachineKernel(KernelConfig config)
{
    MachineMtKernel kernel(std::move(config));
    return kernel.run();
}

} // namespace rr::kernel
