/**
 * @file
 * Real concurrent programs on the machine-MT kernel: the harness
 * that runs the rr::runtime synchronization scenarios (spinlocks,
 * semaphores, ring buffers, barriers) on the cycle-level machine.
 *
 * Unlike MachineMtKernel, nothing here is drawn from a distribution.
 * Threads execute the generated RRISC programs of
 * runtime/sync_runtime.hh; every wait is endogenous — a spin on a
 * lock some other thread holds, a semaphore another thread has not
 * yet V'd, a barrier whose slowest thread is still working. The C++
 * harness plays only the memory system: a FAULT raised by the
 * program completes a fixed number of cycles later (deterministic;
 * no RNG anywhere), so identical configurations produce identical
 * cycle counts under all dispatch modes.
 *
 * The register conventions and the scenario programs themselves are
 * documented in runtime/sync_runtime.hh and docs/KERNEL.md.
 */

#ifndef RR_KERNEL_SYNC_WORKLOAD_HH
#define RR_KERNEL_SYNC_WORKLOAD_HH

#include <cstdint>
#include <memory>
#include <optional>
#include <queue>
#include <unordered_map>
#include <vector>

#include "machine/cpu.hh"
#include "runtime/context_allocator.hh"
#include "runtime/sync_runtime.hh"
#include "trace/tracer.hh"

namespace rr::kernel {

/** Configuration of one synchronization-workload run. */
struct SyncWorkloadConfig
{
    runtime::SyncScenario scenario = runtime::SyncScenario::LockConvoy;

    unsigned numRegs = 128;      ///< physical register file size
    unsigned operandWidth = 6;   ///< w
    unsigned numThreads = 4;     ///< resident thread count

    /** Registers each thread requires (>= 12; see sync_runtime.hh). */
    unsigned regsUsed = 12;

    /** Force fixed-size contexts (0 = size from regsUsed). */
    unsigned forcedContextSize = 0;

    /**
     * Locked-work scenarios: rounds per thread. Barrier scenario:
     * phases. Ignored by ProducerConsumer (see itemsPerProducer).
     */
    unsigned rounds = 4;

    /** Critical / non-critical section work units per round. */
    unsigned csUnits = 20;
    unsigned ncUnits = 20;

    /** Producer / consumer work units per item. */
    unsigned produceUnits = 30;
    unsigned consumeUnits = 10;

    /** Producer thread count (0 = numThreads / 2). */
    unsigned producers = 0;

    /** Items each producer pushes through the ring. */
    unsigned itemsPerProducer = 4;

    /** Ring buffer capacity in slots. */
    unsigned ringSize = 4;

    /** Barrier scenario: work units of the fastest thread per phase. */
    unsigned barrierBaseUnits = 10;

    /**
     * Barrier scenario: extra units added per skew step — thread t
     * works barrierBaseUnits + barrierSkewUnits * (t % 4) per phase.
     */
    unsigned barrierSkewUnits = 15;

    /** Fixed FAULT service latency in cycles (deterministic). */
    uint64_t faultLatency = 60;

    /** Step cap (safety against runaway programs). */
    uint64_t maxSteps = 50'000'000;

    /** Dispatch override; unset = CpuConfig/RR_CPU_DISPATCH default. */
    std::optional<machine::DispatchMode> dispatch;

    /** Optional structured-event sink (not owned). */
    trace::TraceSink *traceSink = nullptr;
};

/** Results of one run. All counters are architectural, not sampled. */
struct SyncWorkloadResult
{
    uint64_t totalCycles = 0;   ///< machine cycles elapsed
    uint64_t workUnits = 0;     ///< work-loop passes executed
    uint64_t usefulCycles = 0;  ///< 2 * workUnits (sub + bne)
    uint64_t faults = 0;        ///< FAULT instructions executed
    uint64_t failedPolls = 0;   ///< resume polls that found the
                                ///< fault still outstanding
    uint64_t lockAcquires = 0;  ///< successful test-and-set takes
    uint64_t lockSpins = 0;     ///< acquire attempts that found the
                                ///< lock held and yielded
    uint64_t semWaits = 0;      ///< sem_p attempts blocked at zero
    uint64_t barrierWaits = 0;  ///< barrier spin passes
    uint64_t barrierReleases = 0; ///< times the last arriver flipped
                                  ///< the generation
    uint64_t itemsProduced = 0; ///< ring slots written
    uint64_t itemsConsumed = 0; ///< ring slots read
    unsigned residentContexts = 0; ///< contexts that fit the file

    /** usefulCycles / totalCycles over the whole run. */
    double efficiencyTotal = 0.0;

    bool halted = false;        ///< machine reached HALT cleanly
};

/**
 * Assembles the scenario program, creates the contexts, runs the
 * machine, and extracts counters by watching the program counter.
 */
class SyncWorkloadKernel
{
  public:
    explicit SyncWorkloadKernel(SyncWorkloadConfig config);

    /** Execute the workload to completion. */
    SyncWorkloadResult run();

    /** The machine (valid after construction; inspectable after run). */
    machine::Cpu &cpu() { return *cpu_; }

    /** The generated assembly source the machine is running. */
    const std::string &source() const { return source_; }

  private:
    struct PendingFault
    {
        uint64_t completion;
        unsigned tid;

        bool operator>(const PendingFault &other) const
        {
            return completion > other.completion;
        }
    };

    /** What a program-counter hit at a known label means. */
    enum class Marker : uint8_t
    {
        Work,
        PollFail,
        LockTake,
        LockSpin,
        SemWait,
        BarrierSpin,
        BarrierRelease,
        ItemProduced,
        ItemConsumed,
    };

    struct ThreadInfo
    {
        uint32_t rrm = 0;
        uint64_t flagAddr = 0;
    };

    unsigned producerCount() const;
    void buildProgram();
    void createThreads();
    void initMemory();
    void onFault(uint32_t fault_class);
    void onStep(uint64_t cycle, uint32_t pc);

    SyncWorkloadConfig config_;
    runtime::SyncLayout layout_;
    trace::Tracer tracer_;
    std::unique_ptr<machine::Cpu> cpu_;
    std::unique_ptr<runtime::ContextAllocator> allocator_;
    std::vector<ThreadInfo> threads_;
    std::unordered_map<uint32_t, unsigned> rrmToThread_;
    std::unordered_map<uint32_t, Marker> markers_;
    std::string source_;
    uint32_t bodyAddr_ = 0;       ///< thread body (producers in PC)
    uint32_t consumerAddr_ = 0;   ///< consumer body (PC scenario)

    std::priority_queue<PendingFault, std::vector<PendingFault>,
                        std::greater<PendingFault>>
        pending_;

    SyncWorkloadResult result_;
};

/** Convenience wrapper: construct, run, return. */
SyncWorkloadResult runSyncWorkload(SyncWorkloadConfig config);

} // namespace rr::kernel

#endif // RR_KERNEL_SYNC_WORKLOAD_HH
