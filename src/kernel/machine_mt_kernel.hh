/**
 * @file
 * The paper's multithreading system actually *running* on the
 * cycle-level machine — an execution-driven counterpart to the
 * event-driven mt::MtProcessor, used to cross-validate it.
 *
 * Every thread executes real RRISC code sharing one context-relative
 * body: a work loop, a FAULT instruction when the current run
 * segment ends, the Figure 3 yield, and an APRIL-style poll on
 * resumption (a blocked context that regains control tests a
 * completion flag and yields again if its fault is still
 * outstanding). Context switching, scheduling, and polling therefore
 * cost exactly the cycles the real code takes; only fault *timing*
 * (latency scheduling and completion-flag delivery) is played by the
 * C++ harness, standing in for the memory system.
 *
 * Register conventions in the thread body (context-relative):
 *   r0  saved PC (Figure 3)        r6  constant 1
 *   r1  saved PSW                  r7  constant 0
 *   r2  NextRRM                    r8  scratch
 *   r4  remaining segment units    r9  &completion flag
 *   r5  (unused)                   r10 segment-table pointer
 *                                  r11 &live-thread counter
 */

#ifndef RR_KERNEL_MACHINE_MT_KERNEL_HH
#define RR_KERNEL_MACHINE_MT_KERNEL_HH

#include <cstdint>
#include <memory>
#include <queue>
#include <vector>

#include "base/distributions.hh"
#include "base/rng.hh"
#include "base/stats.hh"
#include "machine/cpu.hh"
#include "runtime/context_allocator.hh"
#include "trace/tracer.hh"

namespace rr::kernel {

/** How a raised fault gets serviced. */
enum class FaultService : uint8_t
{
    /** Independent latency drawn from KernelConfig::latency. */
    Latency,

    /**
     * Barrier synchronization: a fault completes only when every
     * still-running thread has raised its fault — run segments are
     * parallel phases separated by barriers, and fast threads wait
     * for slow ones. Wait times are endogenous (caused by workload
     * skew), not drawn from a distribution.
     */
    Barrier,
};

/** Configuration of one machine-level multithreading run. */
struct KernelConfig
{
    unsigned numRegs = 128;      ///< physical register file size
    unsigned operandWidth = 6;   ///< w
    unsigned numThreads = 4;     ///< resident thread count

    /**
     * Registers each thread requires (C); contexts are allocated at
     * the power-of-two size covering max(C, 12) since the body uses
     * context-relative r0..r11.
     */
    unsigned regsUsed = 12;

    /**
     * Force every context to this size instead (e.g. 32 to emulate a
     * conventional fixed-context machine); 0 = size from regsUsed.
     */
    unsigned forcedContextSize = 0;

    /** Work units per run segment (one unit = one 2-cycle loop pass). */
    std::shared_ptr<Distribution> segmentUnits;

    /** Fault service discipline. */
    FaultService service = FaultService::Latency;

    /** Fault service latency (cycles); unused in Barrier mode. */
    std::shared_ptr<Distribution> latency;

    /** Run segments each thread executes before finishing. */
    unsigned segmentsPerThread = 32;

    /**
     * Per-thread segment-count override (empty = segmentsPerThread
     * for everyone; otherwise size must equal numThreads). Threads
     * with fewer segments finish early, so in Barrier mode the gang
     * shrinks mid-run — a finishing thread must not strand the
     * threads still blocked at the barrier.
     */
    std::vector<unsigned> segmentsByThread;

    uint64_t seed = 1;

    /** Step cap (safety against runaway programs). */
    uint64_t maxSteps = 50'000'000;

    /**
     * Optional structured-event sink (not owned): fault issue and
     * completion, failed resume polls, and barrier releases are
     * emitted with machine-cycle stamps.
     */
    trace::TraceSink *traceSink = nullptr;
};

/** Results of one run. */
struct KernelResult
{
    uint64_t totalCycles = 0;   ///< machine cycles elapsed
    uint64_t workUnits = 0;     ///< work-loop passes executed
    uint64_t usefulCycles = 0;  ///< 2 * workUnits (sub + bne)
    uint64_t faults = 0;        ///< FAULT instructions executed
    uint64_t failedPolls = 0;   ///< resumptions that found the fault
                                ///< still outstanding
    uint64_t barriers = 0;      ///< barrier releases (Barrier mode)
    unsigned residentContexts = 0; ///< contexts that fit the file

    /** usefulCycles / totalCycles over the whole run. */
    double efficiencyTotal = 0.0;

    /** Useful rate over the central 20-80% window. */
    double efficiencyCentral = 0.0;

    bool halted = false;        ///< machine reached HALT cleanly
};

/**
 * Builds the program image, creates the contexts, runs the machine,
 * and extracts statistics.
 */
class MachineMtKernel
{
  public:
    explicit MachineMtKernel(KernelConfig config);

    /** Execute the workload to completion. */
    KernelResult run();

    /** The machine (valid after construction; inspectable after run). */
    machine::Cpu &cpu() { return *cpu_; }

    /** Program listing address of the shared thread body. */
    uint32_t threadBodyAddress() const { return workAddr_; }

  private:
    struct PendingFault
    {
        uint64_t completion;
        unsigned tid;

        bool operator>(const PendingFault &other) const
        {
            return completion > other.completion;
        }
    };

    /** Per-thread bookkeeping. */
    struct ThreadInfo
    {
        uint32_t rrm = 0;
        uint64_t flagAddr = 0;
        uint64_t tableAddr = 0;
        uint64_t totalUnits = 0;
    };

    void buildProgram();
    void createThreads();
    void onFault(uint32_t fault_class);
    void onStep(uint64_t cycle, uint32_t pc);

    KernelConfig config_;
    Rng rng_;
    trace::Tracer tracer_;
    std::unique_ptr<machine::Cpu> cpu_;
    std::unique_ptr<runtime::ContextAllocator> allocator_;
    std::vector<ThreadInfo> threads_;
    std::unordered_map<uint32_t, unsigned> rrmToThread_;

    uint32_t entryAddr_ = 0;
    uint32_t workAddr_ = 0;
    uint32_t pollFailAddr_ = 0;

    std::priority_queue<PendingFault, std::vector<PendingFault>,
                        std::greater<PendingFault>>
        pending_;

    // Barrier-mode bookkeeping.
    std::vector<bool> arrived_;
    unsigned arrivalCount_ = 0;

    IntervalRecorder recorder_;
    KernelResult result_;
};

/** Convenience wrapper: construct, run, return. */
KernelResult runMachineKernel(KernelConfig config);

} // namespace rr::kernel

#endif // RR_KERNEL_MACHINE_MT_KERNEL_HH
