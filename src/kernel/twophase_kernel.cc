#include "kernel/twophase_kernel.hh"

#include <algorithm>

#include "assembler/assembler.hh"
#include "base/logging.hh"
#include "runtime/asm_routines.hh"

namespace rr::kernel {

namespace {

// Must match the .equ block in twoPhaseSchedulerSource().
constexpr uint64_t qheadAddr = 0x3000;
constexpr uint64_t qtailAddr = 0x3001;
constexpr uint64_t liveAddr = 0x3002;
constexpr uint64_t queueAddr = 0x3010;
constexpr uint32_t queueMask = 127;
constexpr uint64_t saveAreaBase = 0x3100;
constexpr unsigned saveAreaWords = 8;

constexpr unsigned flagWord = 5;     // completion flag
constexpr unsigned unloadedWord = 7; // blocked-and-unloaded marker

} // namespace

TwoPhaseKernel::TwoPhaseKernel(TwoPhaseConfig config)
    : config_(std::move(config)), rng_(config_.seed)
{
    rr_assert(config_.latency != nullptr, "latency distribution "
                                          "missing");
    rr_assert(config_.numThreads >= 1 && config_.numThreads <= 100,
              "1..100 threads supported");
    rr_assert(config_.numSlots >= 1 && config_.numSlots <= 16,
              "1..16 slots supported");
    rr_assert(config_.numSlots <= config_.numThreads,
              "more slots than threads");
    tracer_.attach(config_.traceSink);

    machine::CpuConfig cpu_config;
    cpu_config.numRegs = 128;
    cpu_config.operandWidth = 6;
    cpu_config.ldrrmDelaySlots = 1;
    cpu_config.memWords = 1u << 15;
    cpu_ = std::make_unique<machine::Cpu>(cpu_config);

    const assembler::Program prog =
        assembler::assemble(runtime::twoPhaseSchedulerSource(
            config_.workUnits, config_.pollBudget));
    for (const auto &error : prog.errors)
        rr_panic("two-phase runtime: ", error.str());
    cpu_->mem().loadImage(prog.base, prog.words);
    workAddr_ = prog.addressOf("work");
    swapOutAddr_ = prog.addressOf("swap_out");
    swapInAddr_ = prog.addressOf("swap_in");

    const uint32_t work_seg = prog.addressOf("work_seg");

    // Save areas for every thread.
    for (unsigned tid = 0; tid < config_.numThreads; ++tid) {
        const uint64_t area = saveAreaOf(tid);
        cpu_->mem().write(area + 0, work_seg);
        cpu_->mem().write(area + 1, 0);
        cpu_->mem().write(area + 4, config_.segmentsPerThread);
        cpu_->mem().write(area + flagWord, 0);
        cpu_->mem().write(area + unloadedWord, 0);
    }

    // Threads beyond the slots wait in the memory ready queue.
    const unsigned queued = config_.numThreads - config_.numSlots;
    for (unsigned j = 0; j < queued; ++j) {
        cpu_->mem().write(queueAddr + j,
                          static_cast<uint32_t>(
                              saveAreaOf(config_.numSlots + j)));
    }
    cpu_->mem().write(qheadAddr, 0);
    cpu_->mem().write(qtailAddr, queued);
    cpu_->mem().write(liveAddr, config_.numThreads);

    // Slot contexts: 8 registers at bases 0, 8, 16, ... wired into a
    // Figure 3 ring; slot i initially runs thread i.
    for (unsigned slot = 0; slot < config_.numSlots; ++slot) {
        const uint32_t rrm = 8 * slot;
        const uint32_t next_rrm =
            8 * ((slot + 1) % config_.numSlots);
        cpu_->regs().write(rrm | 0, work_seg);
        cpu_->regs().write(rrm | 1, 0);
        cpu_->regs().write(rrm | 2, next_rrm);
        cpu_->regs().write(rrm | 3, 0);
        cpu_->regs().write(
            rrm | 4, static_cast<uint32_t>(saveAreaOf(slot)));
        cpu_->regs().write(rrm | 5, 0);
        cpu_->regs().write(rrm | 6, config_.segmentsPerThread);
        cpu_->regs().write(rrm | 7, 0);
    }
    cpu_->setRrmImmediate(0);
    cpu_->setPc(work_seg);
}

uint64_t
TwoPhaseKernel::saveAreaOf(unsigned tid) const
{
    return saveAreaBase + static_cast<uint64_t>(tid) * saveAreaWords;
}

void
TwoPhaseKernel::onFault()
{
    // The faulting thread is identified through the slot's r4.
    const uint32_t area = cpu_->readContextReg(4);
    rr_assert(area >= saveAreaBase, "bad save-area pointer");
    const unsigned tid = static_cast<unsigned>(
        (area - saveAreaBase) / saveAreaWords);
    rr_assert(tid < config_.numThreads, "bad thread id");

    const uint64_t latency =
        std::max<uint64_t>(1, config_.latency->sample(rng_));
    cpu_->mem().write(area + flagWord, 0);
    pending_.push({cpu_->cycles() + latency, tid});
    ++result_.faults;
    if (tracer_.enabled()) {
        trace::TraceEvent e;
        e.kind = trace::EventKind::FaultIssue;
        e.cycle = cpu_->cycles();
        e.tid = tid;
        e.ctx = cpu_->rrm();
        e.aux = latency;
        tracer_.emit(e);
    }
}

void
TwoPhaseKernel::onStep(uint64_t cycle, uint32_t pc)
{
    // The memory system: completions set the flag; an unloaded
    // thread is put back on the ready queue (single producer for
    // QTAIL — the running code never writes it).
    while (!pending_.empty() && pending_.top().completion <= cycle) {
        const unsigned tid = pending_.top().tid;
        pending_.pop();
        const uint64_t area = saveAreaOf(tid);
        cpu_->mem().write(area + flagWord, 1);
        if (tracer_.enabled()) {
            trace::TraceEvent e;
            e.kind = trace::EventKind::FaultComplete;
            e.cycle = cycle;
            e.tid = tid;
            tracer_.emit(e);
        }
        if (cpu_->mem().read(area + unloadedWord) == 1) {
            const uint32_t tail = cpu_->mem().read(qtailAddr);
            cpu_->mem().write(queueAddr + (tail & queueMask),
                              static_cast<uint32_t>(area));
            cpu_->mem().write(qtailAddr, tail + 1);
            cpu_->mem().write(area + unloadedWord, 0);
        }
    }

    if (pc == workAddr_) {
        ++result_.workUnits;
    } else if (pc == swapOutAddr_) {
        ++result_.swapOuts;
        if (tracer_.enabled()) {
            // The slot's r4 still points at the outgoing thread's
            // save area when the swap-out path is entered.
            trace::TraceEvent e;
            e.kind = trace::EventKind::Unload;
            e.cycle = cycle;
            e.ctx = cpu_->rrm();
            const uint32_t area = cpu_->readContextReg(4);
            if (area >= saveAreaBase)
                e.tid = static_cast<unsigned>(
                    (area - saveAreaBase) / saveAreaWords);
            tracer_.emit(e);
        }
    } else if (pc == swapInAddr_) {
        ++result_.dequeues;
        if (tracer_.enabled()) {
            trace::TraceEvent e;
            e.kind = trace::EventKind::Load;
            e.cycle = cycle;
            e.ctx = cpu_->rrm();
            tracer_.emit(e);
        }
    }
}

TwoPhaseResult
TwoPhaseKernel::run()
{
    cpu_->setFaultHook(
        [this](machine::Cpu &, uint32_t) { onFault(); });
    cpu_->setTraceHook([this](const machine::TraceEntry &entry) {
        onStep(entry.cycle, entry.pc);
        if (observer_)
            observer_(entry);
    });

    cpu_->run(config_.maxSteps);

    result_.halted = cpu_->halted() &&
                     cpu_->trap() == machine::TrapKind::None;
    result_.totalCycles = cpu_->cycles();
    result_.usefulCycles = 2 * result_.workUnits;
    return result_;
}

TwoPhaseResult
runTwoPhaseKernel(TwoPhaseConfig config)
{
    TwoPhaseKernel kernel(std::move(config));
    return kernel.run();
}

} // namespace rr::kernel
