#include "kernel/sync_workload.hh"

#include <algorithm>

#include "assembler/assembler.hh"
#include "base/logging.hh"
#include "runtime/context_loader.hh"

namespace rr::kernel {

namespace {

trace::TraceEvent
syncEvent(trace::EventKind kind, uint64_t cycle, unsigned tid,
          uint32_t rrm)
{
    trace::TraceEvent event;
    event.kind = kind;
    event.cycle = cycle;
    event.tid = tid;
    event.ctx = rrm;
    return event;
}

} // namespace

SyncWorkloadKernel::SyncWorkloadKernel(SyncWorkloadConfig config)
    : config_(std::move(config))
{
    rr_assert(config_.numThreads >= 1, "no threads");
    rr_assert(config_.regsUsed >= 12,
              "the sync runtime uses context-relative r0..r11");
    rr_assert(config_.rounds >= 1, "rounds must be positive");
    if (config_.scenario == runtime::SyncScenario::ProducerConsumer) {
        const unsigned producers = producerCount();
        rr_assert(producers >= 1 && producers < config_.numThreads,
                  "producer/consumer needs at least one of each");
        const uint64_t items =
            static_cast<uint64_t>(producers) * config_.itemsPerProducer;
        const unsigned consumers = config_.numThreads - producers;
        rr_assert(items % consumers == 0,
                  "total items must divide evenly across consumers");
        rr_assert(config_.itemsPerProducer >= 1, "no items to produce");
    }
    if (config_.scenario == runtime::SyncScenario::BarrierSkew)
        rr_assert(config_.barrierBaseUnits >= 1,
                  "every thread needs at least one unit per phase");
    tracer_.attach(config_.traceSink);

    machine::CpuConfig cpu_config;
    cpu_config.numRegs = config_.numRegs;
    cpu_config.operandWidth = config_.operandWidth;
    cpu_config.ldrrmDelaySlots = 1;
    cpu_config.memWords = std::max<size_t>(
        1u << 16, static_cast<size_t>(layout_.ringBase +
                                      config_.ringSize + 64));
    if (config_.dispatch)
        cpu_config.dispatch = *config_.dispatch;
    cpu_ = std::make_unique<machine::Cpu>(cpu_config);

    allocator_ = std::make_unique<runtime::ContextAllocator>(
        config_.numRegs, config_.operandWidth);

    buildProgram();
    initMemory();
    createThreads();
}

unsigned
SyncWorkloadKernel::producerCount() const
{
    if (config_.producers != 0)
        return config_.producers;
    return std::max(1u, config_.numThreads / 2);
}

void
SyncWorkloadKernel::buildProgram()
{
    runtime::SyncProgramParams params;
    params.scenario = config_.scenario;
    params.layout = layout_;
    params.csUnits = config_.csUnits;
    params.ncUnits = config_.ncUnits;
    params.produceUnits = config_.produceUnits;
    params.consumeUnits = config_.consumeUnits;
    params.ringSize = config_.ringSize;
    source_ = runtime::syncScenarioSource(params);

    const assembler::Program prog = assembler::assemble(source_);
    for (const auto &error : prog.errors)
        rr_panic("sync workload program: ", error.str());
    cpu_->mem().loadImage(prog.base, prog.words);

    switch (config_.scenario) {
      case runtime::SyncScenario::UncontendedLock:
      case runtime::SyncScenario::LockConvoy:
        bodyAddr_ = prog.addressOf("thread_start");
        break;
      case runtime::SyncScenario::ProducerConsumer:
        bodyAddr_ = prog.addressOf("producer_start");
        consumerAddr_ = prog.addressOf("consumer_start");
        break;
      case runtime::SyncScenario::BarrierSkew:
        bodyAddr_ = prog.addressOf("barrier_start");
        break;
    }

    const std::pair<const char *, Marker> marks[] = {
        {"cs_work", Marker::Work},     {"nc_work", Marker::Work},
        {"p_work", Marker::Work},      {"c_work", Marker::Work},
        {"b_work", Marker::Work},      {"poll_fail", Marker::PollFail},
        {"pp_fail", Marker::PollFail}, {"la_take", Marker::LockTake},
        {"la_spin", Marker::LockSpin}, {"sem_wait", Marker::SemWait},
        {"bw_spin", Marker::BarrierSpin},
        {"bw_last", Marker::BarrierRelease},
        {"p_item", Marker::ItemProduced},
        {"c_item", Marker::ItemConsumed},
    };
    for (const auto &[label, marker] : marks) {
        const auto it = prog.symbols.find(label);
        if (it != prog.symbols.end())
            markers_.emplace(it->second, marker);
    }
}

void
SyncWorkloadKernel::initMemory()
{
    auto &mem = cpu_->mem();
    mem.write(layout_.live, config_.numThreads);
    mem.write(layout_.exitLock, 0);
    mem.write(layout_.sharedLock, 0);
    mem.write(layout_.mutex, 0);
    mem.write(layout_.semItems, 0);
    mem.write(layout_.semSpaces, config_.ringSize);
    mem.write(layout_.head, 0);
    mem.write(layout_.tail, 0);
    mem.write(layout_.barrier, 0);                       // count
    mem.write(layout_.barrier + 1, 0);                   // generation
    mem.write(layout_.barrier + 2, config_.numThreads);  // size
    for (unsigned tid = 0; tid < config_.numThreads; ++tid) {
        mem.write(layout_.flagBase + tid, 0);
        mem.write(layout_.privateLockBase + tid, 0);
    }
}

void
SyncWorkloadKernel::createThreads()
{
    const unsigned context_regs =
        config_.forcedContextSize != 0 ? config_.forcedContextSize
                                       : config_.regsUsed;
    const unsigned producers = producerCount();
    const uint64_t items_per_consumer =
        config_.scenario == runtime::SyncScenario::ProducerConsumer
            ? static_cast<uint64_t>(producers) *
                  config_.itemsPerProducer /
                  (config_.numThreads - producers)
            : 0;

    for (unsigned tid = 0; tid < config_.numThreads; ++tid) {
        const auto context = allocator_->allocate(context_regs);
        rr_assert(context.has_value(),
                  "thread ", tid, " does not fit the register file; "
                  "reduce numThreads or the context size");

        ThreadInfo info;
        info.rrm = context->rrm;
        info.flagAddr = layout_.flagBase + tid;

        uint32_t entry = bodyAddr_;
        uint32_t r9 = config_.rounds;
        uint32_t r10 = 0;
        switch (config_.scenario) {
          case runtime::SyncScenario::UncontendedLock:
            r10 = layout_.privateLockBase + tid;
            break;
          case runtime::SyncScenario::LockConvoy:
            r10 = layout_.sharedLock;
            break;
          case runtime::SyncScenario::ProducerConsumer:
            if (tid < producers) {
                r9 = config_.itemsPerProducer;
            } else {
                entry = consumerAddr_;
                r9 = static_cast<uint32_t>(items_per_consumer);
            }
            break;
          case runtime::SyncScenario::BarrierSkew:
            r10 = config_.barrierBaseUnits +
                  config_.barrierSkewUnits * (tid % 4);
            break;
        }

        runtime::pokeContextReg(*cpu_, info.rrm, 0, entry);
        runtime::pokeContextReg(*cpu_, info.rrm, 1, 0);
        runtime::pokeContextReg(*cpu_, info.rrm, 6, 1);
        runtime::pokeContextReg(*cpu_, info.rrm, 7, 0);
        runtime::pokeContextReg(*cpu_, info.rrm, 9, r9);
        runtime::pokeContextReg(*cpu_, info.rrm, 10, r10);
        runtime::pokeContextReg(*cpu_, info.rrm, 11,
                                static_cast<uint32_t>(info.flagAddr));

        rrmToThread_[info.rrm] = tid;
        threads_.push_back(info);
    }

    // Wire the NextRRM ring (Figure 3 / Section 2.2).
    for (size_t i = 0; i < threads_.size(); ++i) {
        const ThreadInfo &cur = threads_[i];
        const ThreadInfo &next = threads_[(i + 1) % threads_.size()];
        runtime::pokeContextReg(*cpu_, cur.rrm, 2, next.rrm);
    }

    cpu_->setRrmImmediate(threads_.front().rrm);
    cpu_->setPc(bodyAddr_);
    result_.residentContexts =
        static_cast<unsigned>(threads_.size());
}

void
SyncWorkloadKernel::onFault(uint32_t)
{
    const auto it = rrmToThread_.find(cpu_->rrm());
    rr_assert(it != rrmToThread_.end(), "fault from unknown context");
    const unsigned tid = it->second;

    cpu_->mem().write(threads_[tid].flagAddr, 0);
    ++result_.faults;

    pending_.push({cpu_->cycles() + config_.faultLatency, tid});
    if (tracer_.enabled()) {
        auto e = syncEvent(trace::EventKind::FaultIssue, cpu_->cycles(),
                           tid, threads_[tid].rrm);
        e.aux = config_.faultLatency;
        tracer_.emit(e);
    }
}

void
SyncWorkloadKernel::onStep(uint64_t cycle, uint32_t pc)
{
    // The harness plays the memory system: completion flags mature
    // as machine time advances.
    while (!pending_.empty() && pending_.top().completion <= cycle) {
        const PendingFault fault = pending_.top();
        pending_.pop();
        cpu_->mem().write(threads_[fault.tid].flagAddr, 1);
        if (tracer_.enabled()) {
            tracer_.emit(syncEvent(trace::EventKind::FaultComplete,
                                   cycle, fault.tid,
                                   threads_[fault.tid].rrm));
        }
    }

    const auto it = markers_.find(pc);
    if (it == markers_.end())
        return;
    switch (it->second) {
      case Marker::Work:
        ++result_.workUnits;
        break;
      case Marker::PollFail:
        ++result_.failedPolls;
        if (tracer_.enabled()) {
            const auto rrm_it = rrmToThread_.find(cpu_->rrm());
            if (rrm_it != rrmToThread_.end()) {
                auto e = syncEvent(trace::EventKind::SchedulerPoll,
                                   cycle, rrm_it->second,
                                   threads_[rrm_it->second].rrm);
                e.aux = 1;
                tracer_.emit(e);
            }
        }
        break;
      case Marker::LockTake:
        ++result_.lockAcquires;
        break;
      case Marker::LockSpin:
        ++result_.lockSpins;
        break;
      case Marker::SemWait:
        ++result_.semWaits;
        break;
      case Marker::BarrierSpin:
        ++result_.barrierWaits;
        break;
      case Marker::BarrierRelease:
        ++result_.barrierReleases;
        if (tracer_.enabled()) {
            trace::TraceEvent e;
            e.kind = trace::EventKind::Barrier;
            e.cycle = cycle;
            e.aux = config_.numThreads;
            tracer_.emit(e);
        }
        break;
      case Marker::ItemProduced:
        ++result_.itemsProduced;
        break;
      case Marker::ItemConsumed:
        ++result_.itemsConsumed;
        break;
    }
}

SyncWorkloadResult
SyncWorkloadKernel::run()
{
    cpu_->setFaultHook(
        [this](machine::Cpu &, uint32_t fault_class) {
            onFault(fault_class);
        });
    cpu_->setTraceHook([this](const machine::TraceEntry &entry) {
        onStep(entry.cycle, entry.pc);
    });

    cpu_->run(config_.maxSteps);

    result_.halted = cpu_->halted() &&
                     cpu_->trap() == machine::TrapKind::None;
    result_.totalCycles = cpu_->cycles();
    result_.usefulCycles = 2 * result_.workUnits;
    result_.efficiencyTotal =
        result_.totalCycles == 0
            ? 0.0
            : static_cast<double>(result_.usefulCycles) /
                  static_cast<double>(result_.totalCycles);
    return result_;
}

SyncWorkloadResult
runSyncWorkload(SyncWorkloadConfig config)
{
    SyncWorkloadKernel kernel(std::move(config));
    return kernel.run();
}

} // namespace rr::kernel
