/**
 * @file
 * Harness for the all-assembly two-phase slot scheduler
 * (runtime::twoPhaseSchedulerSource): an oversubscribed thread
 * supply multiplexed over a ring of fixed 8-register context slots.
 * Resident switching is the Figure 3 fast path; a blocked thread
 * polls when the ring visits it and surrenders its slot after the
 * configured budget of failed polls — the paper's two-phase policy,
 * with the C++ side acting only as the memory system (fault latency
 * timing, completion flags, and re-enqueueing unloaded threads whose
 * faults complete).
 */

#ifndef RR_KERNEL_TWOPHASE_KERNEL_HH
#define RR_KERNEL_TWOPHASE_KERNEL_HH

#include <cstdint>
#include <memory>
#include <queue>
#include <vector>

#include "base/distributions.hh"
#include "base/rng.hh"
#include "machine/cpu.hh"
#include "trace/tracer.hh"

namespace rr::kernel {

/** Configuration of a two-phase slot-scheduler run. */
struct TwoPhaseConfig
{
    unsigned numThreads = 12;      ///< total supply (<= 100)
    unsigned numSlots = 4;         ///< resident context slots (<= 16)
    unsigned segmentsPerThread = 8;
    unsigned workUnits = 50;       ///< loop passes per segment
    unsigned pollBudget = 3;       ///< failed polls before swap-out

    /** Fault service latency. */
    std::shared_ptr<Distribution> latency;

    uint64_t seed = 1;
    uint64_t maxSteps = 50'000'000;

    /**
     * Optional structured-event sink (not owned): fault issue and
     * completion plus swap-out (Unload) / swap-in (Load) markers.
     */
    trace::TraceSink *traceSink = nullptr;
};

/** Results of a two-phase slot-scheduler run. */
struct TwoPhaseResult
{
    uint64_t totalCycles = 0;
    uint64_t workUnits = 0;
    uint64_t usefulCycles = 0; ///< 2 * workUnits
    uint64_t faults = 0;
    uint64_t swapOuts = 0;     ///< unload commits (incl. cancelled)
    uint64_t dequeues = 0;     ///< threads (re)loaded into slots
    bool halted = false;

    double
    efficiency() const
    {
        return totalCycles == 0
                   ? 0.0
                   : static_cast<double>(usefulCycles) /
                         static_cast<double>(totalCycles);
    }
};

/** Build, run, and summarize one two-phase execution. */
class TwoPhaseKernel
{
  public:
    explicit TwoPhaseKernel(TwoPhaseConfig config);

    /** Run to HALT (or the step cap). */
    TwoPhaseResult run();

    machine::Cpu &cpu() { return *cpu_; }

    /**
     * Optional per-instruction observer, chained after the kernel's
     * own bookkeeping (the kernel owns the CPU's trace hook during
     * run()).
     */
    void
    setTraceObserver(machine::Cpu::TraceHook observer)
    {
        observer_ = std::move(observer);
    }

    /** Save-area base address of thread @p tid. */
    uint64_t saveAreaOf(unsigned tid) const;

  private:
    struct PendingFault
    {
        uint64_t completion;
        unsigned tid;

        bool operator>(const PendingFault &other) const
        {
            return completion > other.completion;
        }
    };

    void onFault();
    void onStep(uint64_t cycle, uint32_t pc);

    TwoPhaseConfig config_;
    Rng rng_;
    trace::Tracer tracer_;
    std::unique_ptr<machine::Cpu> cpu_;
    uint32_t workAddr_ = 0;
    uint32_t swapOutAddr_ = 0;
    uint32_t swapInAddr_ = 0;
    std::priority_queue<PendingFault, std::vector<PendingFault>,
                        std::greater<PendingFault>>
        pending_;
    machine::Cpu::TraceHook observer_;
    TwoPhaseResult result_;
};

/** Convenience wrapper. */
TwoPhaseResult runTwoPhaseKernel(TwoPhaseConfig config);

} // namespace rr::kernel

#endif // RR_KERNEL_TWOPHASE_KERNEL_HH
