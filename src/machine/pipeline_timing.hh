/**
 * @file
 * Optional pipeline timing for the RRISC machine.
 *
 * The base machine is an ideal 1-CPI RISC. Real coarse-multithreaded
 * pipelines pay for control transfers — the paper notes that "a
 * context switch typically bubbles the processor pipeline" and cites
 * APRIL's measured 11-cycle switch against the 4-6 cycle ideal of
 * Figure 3. This model adds classic 5-stage in-order hazards on top
 * of the functional machine:
 *
 *  - taken-branch / jump redirection: the fetch stages behind a
 *    taken control transfer are flushed (default 2 bubbles);
 *  - load-use: an instruction reading the destination of the
 *    immediately preceding load stalls one cycle;
 *  - LDRRM decode dependency: architectures without relocation
 *    delay slots would need to stall decode until the new mask is
 *    visible (default 0 — the delay-slot design exists precisely to
 *    avoid this).
 *
 * All penalties default to zero, so existing configurations are
 * exact 1 CPI unless timing is requested.
 */

#ifndef RR_MACHINE_PIPELINE_TIMING_HH
#define RR_MACHINE_PIPELINE_TIMING_HH

#include <cstdint>

namespace rr::machine {

/** Per-hazard penalty configuration (cycles). */
struct PipelineTimingConfig
{
    unsigned takenBranchPenalty = 0; ///< bubbles after redirection
    unsigned loadUsePenalty = 0;     ///< stall on load-use hazard
    unsigned ldrrmPenalty = 0;       ///< extra decode stall per LDRRM

    /** @return true when any penalty is configured. */
    bool
    enabled() const
    {
        return takenBranchPenalty != 0 || loadUsePenalty != 0 ||
               ldrrmPenalty != 0;
    }

    /** Classic 5-stage settings: 2-cycle redirect, 1-cycle load-use. */
    static PipelineTimingConfig classicFiveStage();
};

/**
 * Stall-cycle accounting. Charges are per retired instruction and
 * independent of how the Cpu dispatched it: the threaded/fused block
 * paths charge each fused constituent exactly as the per-step path
 * does, so stats compare equal across DispatchMode (the dispatch-mode
 * identity tests rely on operator==).
 */
struct PipelineTimingStats
{
    uint64_t branchStalls = 0;  ///< cycles lost to redirections
    uint64_t loadUseStalls = 0; ///< cycles lost to load-use hazards
    uint64_t ldrrmStalls = 0;   ///< cycles lost to LDRRM decode

    uint64_t
    total() const
    {
        return branchStalls + loadUseStalls + ldrrmStalls;
    }

    bool operator==(const PipelineTimingStats &other) const = default;
};

} // namespace rr::machine

#endif // RR_MACHINE_PIPELINE_TIMING_HH
