#include "machine/relocation_unit.hh"

#include "base/bitops.hh"
#include "base/logging.hh"

namespace rr::machine {

RelocationUnit::RelocationUnit(unsigned num_regs, unsigned operand_width,
                               RelocationMode mode, unsigned num_banks)
    : numRegs_(num_regs),
      operandWidth_(operand_width),
      mode_(mode),
      maskBits_(log2Ceil(num_regs)),
      contextSize_(1u << operand_width),
      masks_(num_banks, 0)
{
    rr_assert(isPowerOfTwo(num_regs),
              "register file size must be a power of two: ", num_regs);
    rr_assert(operand_width >= 1 && operand_width <= 6,
              "operand width must be in [1, 6]: ", operand_width);
    rr_assert(num_banks >= 1 && isPowerOfTwo(num_banks),
              "bank count must be a power of two >= 1: ", num_banks);
    rr_assert((1u << operand_width) <= num_regs,
              "operand width addresses more registers than exist");
    rr_assert(log2Ceil(num_banks) < operand_width,
              "too many banks for the operand width");
}

void
RelocationUnit::setMask(uint32_t mask, unsigned bank)
{
    rr_assert(bank < masks_.size(), "bad RRM bank ", bank);
    // The hardware RRM register holds only ceil(lg n) bits.
    masks_[bank] = mask & static_cast<uint32_t>(lowMask(maskBits_));
}

uint32_t
RelocationUnit::mask(unsigned bank) const
{
    rr_assert(bank < masks_.size(), "bad RRM bank ", bank);
    return masks_[bank];
}

void
RelocationUnit::setContextSize(unsigned size)
{
    rr_assert(isPowerOfTwo(size), "context size must be a power of two: ",
              size);
    rr_assert(size <= (1u << operandWidth_),
              "context size ", size, " exceeds 2^w");
    contextSize_ = size;
}

RelocationResult
RelocationUnit::relocate(unsigned operand) const
{
    // Select the bank from the operand's top bits when the bank count
    // exceeds one (Section 5.3 extension).
    const unsigned bank_bits = log2Ceil(numBanks());
    const unsigned offset_bits = operandWidth_ - bank_bits;
    const unsigned bank = bank_bits == 0
                              ? 0
                              : (operand >> offset_bits) &
                                    static_cast<unsigned>(
                                        lowMask(bank_bits));
    const unsigned offset =
        operand & static_cast<unsigned>(lowMask(offset_bits));
    const uint32_t rrm = masks_[bank];

    RelocationResult result;
    switch (mode_) {
      case RelocationMode::Or:
        // The paper's mechanism: a plain bitwise OR. The split between
        // base and offset bits is implicit in the mask's alignment.
        result.physical = (rrm | offset) &
                          static_cast<unsigned>(lowMask(maskBits_));
        break;

      case RelocationMode::Mux: {
        // Footnote 3: select low bits from the operand, high bits from
        // the RRM; an operand bit above the context size is a bounds
        // violation instead of silently escaping the context.
        const unsigned size_bits = log2Ceil(contextSize_);
        const auto low = static_cast<unsigned>(lowMask(size_bits));
        if ((offset & ~low) != 0) {
            result.ok = false;
            result.physical = (rrm & ~low) | (offset & low);
            break;
        }
        result.physical = (rrm & ~low) | (offset & low);
        break;
      }

      case RelocationMode::Add:
        // Am29000-style base-plus-offset; wraps modulo the file size.
        result.physical = (rrm + offset) &
                          static_cast<unsigned>(lowMask(maskBits_));
        break;
    }
    return result;
}

} // namespace rr::machine
