#include "machine/relocation_unit.hh"

#include <algorithm>

#include "base/bitops.hh"
#include "base/logging.hh"
#include "ckpt/io.hh"

namespace rr::machine {

RelocationUnit::RelocationUnit(unsigned num_regs, unsigned operand_width,
                               RelocationMode mode, unsigned num_banks)
    : numRegs_(num_regs),
      operandWidth_(operand_width),
      mode_(mode),
      maskBits_(log2Ceil(num_regs)),
      contextSize_(1u << operand_width),
      masks_(num_banks, 0)
{
    rr_assert(isPowerOfTwo(num_regs),
              "register file size must be a power of two: ", num_regs);
    rr_assert(operand_width >= 1 && operand_width <= 6,
              "operand width must be in [1, 6]: ", operand_width);
    rr_assert(num_banks >= 1 && isPowerOfTwo(num_banks),
              "bank count must be a power of two >= 1: ", num_banks);
    rr_assert((1u << operand_width) <= num_regs,
              "operand width addresses more registers than exist");
    rr_assert(log2Ceil(num_banks) < operand_width,
              "too many banks for the operand width");
}

const RelocationResult *
RelocationUnit::installMask(uint32_t mask, unsigned bank)
{
    setMask(mask, bank);
    return table();
}

uint32_t
RelocationUnit::mask(unsigned bank) const
{
    rr_assert(bank < masks_.size(), "bad RRM bank ", bank);
    return masks_[bank];
}

void
RelocationUnit::setContextSize(unsigned size)
{
    rr_assert(isPowerOfTwo(size), "context size must be a power of two: ",
              size);
    rr_assert(size <= (1u << operandWidth_),
              "context size ", size, " exceeds 2^w");
    if (contextSize_ == size)
        return;
    contextSize_ = size;
    ++epoch_;
}

void
RelocationUnit::restoreMasks(const std::vector<uint32_t> &masks,
                             unsigned context_size)
{
    // Checkpoint data is untrusted input: reject inconsistencies
    // with ckpt::Error (tools exit 2), never an assertion abort.
    if (masks.size() != masks_.size())
        throw ckpt::Error("restored mask bank count " +
                          std::to_string(masks.size()) +
                          " does not match the unit's " +
                          std::to_string(masks_.size()));
    if (!isPowerOfTwo(context_size) ||
        context_size > (1u << operandWidth_))
        throw ckpt::Error("restored context size " +
                          std::to_string(context_size) +
                          " is invalid");
    for (const uint32_t m : masks)
        if ((m & ~static_cast<uint32_t>(lowMask(maskBits_))) != 0)
            throw ckpt::Error("restored mask " + std::to_string(m) +
                              " is wider than the RRM register");
    masks_ = masks;
    contextSize_ = context_size;
    ++epoch_;

    // A restored unit must not trust any pre-restore memoization:
    // tablePtr_ was validated against an epoch sequence that no
    // longer corresponds to this mask state, and the direct-mapped
    // memo may hold tables keyed under a different context size.
    // Dropping both forces the next table() call to re-validate
    // against the 16-slot cache by content (masks + context size),
    // which is always correct, and rebuild only on a genuine miss.
    tableEpoch_ = 0;
    tablePtr_ = nullptr;
    if (!maskMemo_.empty())
        std::fill(maskMemo_.begin(), maskMemo_.end(), nullptr);
    memoContextSize_ = 0;
}

RelocationResult
RelocationUnit::relocate(unsigned operand) const
{
    return compute(operand);
}

const RelocationResult *
RelocationUnit::tableSlow() const
{
    // A context switch usually returns to a mask state seen before
    // (threads ping-pong between a handful of contexts), so memoize
    // built tables per mask state and make the common switch a lookup
    // instead of a rebuild: the epoch check and the single-bank
    // direct-mapped memo hit live inline in table(); this slow path
    // covers multi-bank units, context-size changes, and genuinely
    // new masks.
    for (const CachedTable &slot : tableCache_) {
        if (slot.contextSize == contextSize_ && slot.masks == masks_) {
            rememberInMemo(slot.table.data());
            tablePtr_ = slot.table.data();
            tableEpoch_ = epoch_;
            return tablePtr_;
        }
    }

    // Build once per never-before-seen mask state. The table has one
    // entry per operand value (<= 64), so even a rebuild costs about
    // as much as relocating one basic block the slow way. Slots are
    // recycled round-robin past kMaxCachedTables; reserve() up front
    // keeps every cached table's data pointer stable.
    CachedTable *slot;
    if (tableCache_.size() < kMaxCachedTables) {
        tableCache_.reserve(kMaxCachedTables);
        tableCache_.emplace_back();
        slot = &tableCache_.back();
    } else {
        slot = &tableCache_[nextEvict_];
        nextEvict_ = (nextEvict_ + 1) % kMaxCachedTables;
        // The recycled slot's table may be referenced by the memo;
        // never leave a dangling fast-lookup entry behind.
        if (slot->masks.size() == 1 && !maskMemo_.empty() &&
            maskMemo_[slot->masks[0]] == slot->table.data()) {
            maskMemo_[slot->masks[0]] = nullptr;
        }
    }
    slot->masks = masks_;
    slot->contextSize = contextSize_;
    slot->table.resize(tableSize());
    for (unsigned operand = 0; operand < tableSize(); ++operand) {
        slot->table[operand] = compute(operand);
        // Every mode masks the physical number down to maskBits_, so
        // table entries can be consumed without per-access range
        // checks; pin that invariant here, once per build.
        rr_assert(slot->table[operand].physical < numRegs_,
                  "relocated register out of range at build time");
    }
    rememberInMemo(slot->table.data());
    tablePtr_ = slot->table.data();
    tableEpoch_ = epoch_;
    return tablePtr_;
}

void
RelocationUnit::rememberInMemo(const RelocationResult *ptr) const
{
    if (masks_.size() != 1)
        return;
    if (maskMemo_.empty())
        maskMemo_.assign(std::size_t{1} << maskBits_, nullptr);
    if (contextSize_ != memoContextSize_) {
        // Tables are keyed by (mask, context size); a size change
        // invalidates every direct-mapped entry at once.
        std::fill(maskMemo_.begin(), maskMemo_.end(), nullptr);
        memoContextSize_ = contextSize_;
    }
    maskMemo_[masks_[0]] = ptr;
}

RelocationResult
RelocationUnit::compute(unsigned operand) const
{
    // Select the bank from the operand's top bits when the bank count
    // exceeds one (Section 5.3 extension).
    const unsigned bank_bits = log2Ceil(numBanks());
    const unsigned offset_bits = operandWidth_ - bank_bits;
    const unsigned bank = bank_bits == 0
                              ? 0
                              : (operand >> offset_bits) &
                                    static_cast<unsigned>(
                                        lowMask(bank_bits));
    const unsigned offset =
        operand & static_cast<unsigned>(lowMask(offset_bits));
    const uint32_t rrm = masks_[bank];

    RelocationResult result;
    switch (mode_) {
      case RelocationMode::Or:
        // The paper's mechanism: a plain bitwise OR. The split between
        // base and offset bits is implicit in the mask's alignment.
        result.physical = (rrm | offset) &
                          static_cast<unsigned>(lowMask(maskBits_));
        break;

      case RelocationMode::Mux: {
        // Footnote 3: select low bits from the operand, high bits from
        // the RRM; an operand bit above the context size is a bounds
        // violation instead of silently escaping the context.
        const unsigned size_bits = log2Ceil(contextSize_);
        const auto low = static_cast<unsigned>(lowMask(size_bits));
        if ((offset & ~low) != 0) {
            result.ok = false;
            result.physical = (rrm & ~low) | (offset & low);
            break;
        }
        result.physical = (rrm & ~low) | (offset & low);
        break;
      }

      case RelocationMode::Add:
        // Am29000-style base-plus-offset; wraps modulo the file size.
        result.physical = (rrm + offset) &
                          static_cast<unsigned>(lowMask(maskBits_));
        break;
    }
    return result;
}

} // namespace rr::machine
