/**
 * @file
 * The register relocation unit — the paper's core hardware mechanism
 * (Section 2.1, Figure 2).
 *
 * During instruction decode, each register operand field is combined
 * with the register relocation mask (RRM) to form an absolute register
 * number. Three combining operations are modelled:
 *
 *  - Or:  the paper's mechanism — a bitwise OR. The flexible split
 *         between base bits (from the RRM) and offset bits (from the
 *         operand) falls out of the OR for power-of-two, size-aligned
 *         contexts (Figure 1).
 *  - Mux: the referee suggestion from footnote 3 — each bit is
 *         selected from either the RRM or the operand according to
 *         the context size, which additionally *prevents* a thread
 *         from addressing registers outside its context (operand bits
 *         above the context size raise a bounds violation).
 *  - Add: the AMD Am29000-style base-plus-offset addressing discussed
 *         in Section 4 — removes the power-of-two constraint at the
 *         cost of an adder on the critical decode path.
 *
 * The unit also models a small bank of RRMs for the Section 5.3
 * "multiple active contexts" extension: when the bank has more than
 * one entry, the high-order bit(s) of each register operand select
 * which mask relocates the remaining offset bits.
 */

#ifndef RR_MACHINE_RELOCATION_UNIT_HH
#define RR_MACHINE_RELOCATION_UNIT_HH

#include <cstddef>
#include <cstdint>
#include <vector>

#include "base/bitops.hh"
#include "base/logging.hh"

namespace rr::machine {

/** How operand fields combine with the relocation mask. */
enum class RelocationMode : uint8_t
{
    Or,   ///< bitwise OR (the paper's mechanism)
    Mux,  ///< per-bit select with bounds checking (footnote 3)
    Add,  ///< base + offset (Am29000 comparison, Section 4)
};

/** Result of relocating one operand. */
struct RelocationResult
{
    unsigned physical = 0;  ///< absolute register number
    bool ok = true;         ///< false on a bounds violation (Mux mode)
};

/** Models the decode-stage relocation hardware. */
class RelocationUnit
{
  public:
    /**
     * @param num_regs       physical register file size (n)
     * @param operand_width  instruction operand field width (w); the
     *                       architectural maximum context size is 2^w
     * @param mode           combining operation
     * @param num_banks      number of RRM registers (1 for the base
     *                       mechanism; >1 for the Section 5.3
     *                       extension)
     */
    RelocationUnit(unsigned num_regs, unsigned operand_width,
                   RelocationMode mode = RelocationMode::Or,
                   unsigned num_banks = 1);

    /** Physical register file size. */
    unsigned numRegs() const { return numRegs_; }

    /** Operand field width w. */
    unsigned operandWidth() const { return operandWidth_; }

    /** Combining mode. */
    RelocationMode mode() const { return mode_; }

    /** Number of RRM bank entries. */
    unsigned numBanks() const
    {
        return static_cast<unsigned>(masks_.size());
    }

    /**
     * Install a mask into bank @p bank. Only the low ceil(lg n) bits
     * are retained, mirroring the width of the hardware RRM register.
     * Inline: this is the LDRRM retirement path, hit every few
     * instructions by context-switch-heavy workloads.
     */
    void
    setMask(uint32_t mask, unsigned bank = 0)
    {
        rr_assert(bank < masks_.size(), "bad RRM bank ", bank);
        // The hardware RRM register holds only ceil(lg n) bits.
        const auto clipped =
            mask & static_cast<uint32_t>(lowMask(maskBits_));
        // Reinstalling the mask a bank already holds cannot change
        // any operand mapping, so keep the epoch (and with it every
        // memoized table pointer) valid. Kernels re-entering the same
        // context and harness resets hit this constantly.
        if (masks_[bank] == clipped)
            return;
        masks_[bank] = clipped;
        ++epoch_;
    }

    /**
     * Install a mask and return the memoized operand table for the
     * resulting state in one call. Used by the Cpu's block dispatcher,
     * whose in-block LDRRMX path must refresh its cached table
     * immediately rather than at the next step boundary. Equivalent
     * to setMask() followed by table().
     */
    const RelocationResult *installMask(uint32_t mask,
                                        unsigned bank = 0);

    /** Current mask in bank @p bank. */
    uint32_t mask(unsigned bank = 0) const;

    /**
     * Configure the context size used by Mux-mode bounds checking
     * (and by Add mode to compute the base). Must be a power of two.
     * Or mode ignores this value — that is precisely the paper's
     * point: OR-relocation needs no size information in hardware.
     */
    void setContextSize(unsigned size);

    /** Context size last configured via setContextSize. */
    unsigned contextSize() const { return contextSize_; }

    /** All bank masks, for checkpointing. */
    const std::vector<uint32_t> &masks() const { return masks_; }

    /**
     * Install a complete mask state from a checkpoint: every bank
     * mask plus the context size, in one step. Advances the epoch
     * and drops the (tablePtr_, maskMemo_) fast-path validity so the
     * next table() lookup re-validates against the 16-slot cache by
     * *content* — a restored unit never trusts epochs minted before
     * the restore, which may coincide with epochs of entirely
     * different mask states (the memo-epoch restore bug).
     */
    void restoreMasks(const std::vector<uint32_t> &masks,
                      unsigned context_size);

    /**
     * Relocate one register operand field.
     *
     * With multiple banks, the top bits of @p operand (above the
     * per-bank offset width) select the bank and the remaining bits
     * form the offset.
     */
    RelocationResult relocate(unsigned operand) const;

    /** Width in bits of the RRM register: ceil(lg n). */
    unsigned maskBits() const { return maskBits_; }

    /**
     * Monotonic counter bumped whenever the operand->physical mapping
     * can change (setMask, setContextSize, restoreMasks). Fast paths
     * compare it to decide whether a cached mapping is still valid.
     * Installing a value the unit already holds is a no-op and keeps
     * the epoch, so memoized table pointers survive redundant context
     * switches; restoreMasks always advances it.
     */
    uint64_t epoch() const { return epoch_; }

    /** Number of entries in table(): one per operand value, 2^w. */
    unsigned tableSize() const { return 1u << operandWidth_; }

    /**
     * The cached operand->physical mapping for the current masks: one
     * precomputed RelocationResult per operand value in [0, 2^w),
     * every entry range-checked against the file size at build time.
     *
     * Tables are looked up (and built at most once) per mask state,
     * so relocation work happens only on LDRRM/LDRRMX/bank switches
     * to a never-before-seen mask — never per operand, and not even
     * per switch once a context's mask has been seen. This keeps
     * relocation off the per-instruction critical path exactly as the
     * paper argues the hardware does (Section 2.2: relocation happens
     * once, at decode, in a fixed stage). The returned pointer stays
     * valid until the next mask/context-size change.
     *
     * The epoch re-validation and the single-bank direct-mapped memo
     * hit — the two paths a context switch to a known mask takes —
     * are inline; cache scans and rebuilds stay out of line.
     */
    const RelocationResult *
    table() const
    {
        if (tableEpoch_ == epoch_)
            return tablePtr_;
        if (masks_.size() == 1 && contextSize_ == memoContextSize_ &&
            !maskMemo_.empty()) {
            if (const RelocationResult *hit = maskMemo_[masks_[0]]) {
                tablePtr_ = hit;
                tableEpoch_ = epoch_;
                return hit;
            }
        }
        return tableSlow();
    }

  private:
    /** One memoized table: the mask state it was built under. */
    struct CachedTable
    {
        std::vector<uint32_t> masks;
        unsigned contextSize = 0;
        std::vector<RelocationResult> table;
    };

    /** Memoized mask states; round-robin recycled beyond this. */
    static constexpr unsigned kMaxCachedTables = 16;

    /** table() miss path: scan the table cache, build on a miss. */
    const RelocationResult *tableSlow() const;

    /** Combine @p operand with the current masks (uncached). */
    RelocationResult compute(unsigned operand) const;

    /** Install @p ptr in the single-bank direct-mapped memo. */
    void rememberInMemo(const RelocationResult *ptr) const;

    unsigned numRegs_;
    unsigned operandWidth_;
    RelocationMode mode_;
    unsigned maskBits_;
    unsigned contextSize_;
    std::vector<uint32_t> masks_;

    uint64_t epoch_ = 1;
    mutable uint64_t tableEpoch_ = 0; ///< epoch tablePtr_ is valid at
    mutable const RelocationResult *tablePtr_ = nullptr;
    mutable std::vector<CachedTable> tableCache_;
    mutable unsigned nextEvict_ = 0;

    /**
     * Single-bank fast lookup: mask value -> cached table, valid only
     * while the context size matches memoContextSize_. A ping-pong of
     * LDRRMs between known masks resolves in a couple of loads.
     */
    mutable std::vector<const RelocationResult *> maskMemo_;
    mutable unsigned memoContextSize_ = 0;
};

} // namespace rr::machine

#endif // RR_MACHINE_RELOCATION_UNIT_HH
