/**
 * @file
 * The physical register file. The paper targets large files (64, 128,
 * or 256 general registers) shared by all resident thread contexts.
 */

#ifndef RR_MACHINE_REGISTER_FILE_HH
#define RR_MACHINE_REGISTER_FILE_HH

#include <cstdint>
#include <vector>

namespace rr::machine {

/** A flat file of 32-bit general registers. */
class RegisterFile
{
  public:
    /** Construct with @p num_regs registers, all zero. */
    explicit RegisterFile(unsigned num_regs);

    /** Number of physical registers. */
    unsigned size() const { return static_cast<unsigned>(regs_.size()); }

    /** Read physical register @p index; panics when out of range. */
    uint32_t read(unsigned index) const;

    /** Write physical register @p index; panics when out of range. */
    void write(unsigned index, uint32_t value);

    /** Reset all registers to zero. */
    void clear();

    /** Copy of the full register state (tests / debugging). */
    std::vector<uint32_t> snapshot() const { return regs_; }

    /**
     * Raw register storage for pre-validated fast paths (the Cpu
     * predecode core). Indices must come from a relocation table whose
     * entries were range-checked at build time; the pointer stays
     * valid for the file's lifetime (the size is fixed at
     * construction).
     */
    const uint32_t *data() const { return regs_.data(); }
    uint32_t *data() { return regs_.data(); }

  private:
    std::vector<uint32_t> regs_;
};

} // namespace rr::machine

#endif // RR_MACHINE_REGISTER_FILE_HH
