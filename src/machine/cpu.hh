/**
 * @file
 * The cycle-level RRISC CPU.
 *
 * This models the processor the paper assumes: a single-issue RISC
 * with fixed-field decoding, one instruction per cycle, a special RRM
 * register loaded by LDRRM (with a configurable number of delay
 * slots, Section 2.1), and a processor status word moved by
 * MFPSW/MTPSW (Figure 3). Register relocation happens at decode via
 * the RelocationUnit.
 *
 * The FAULT instruction invokes a user hook so that higher layers can
 * model long-latency events (remote cache misses, synchronization
 * faults) and drive software context switches exactly as the paper's
 * Figure 3 code does.
 */

#ifndef RR_MACHINE_CPU_HH
#define RR_MACHINE_CPU_HH

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "ckpt/snapshot.hh"
#include "isa/instruction.hh"
#include "machine/memory.hh"
#include "machine/pipeline_timing.hh"
#include "machine/register_file.hh"
#include "machine/relocation_unit.hh"

namespace rr::machine {

/** Why the CPU stopped executing. */
enum class TrapKind : uint8_t
{
    None,             ///< running or halted normally
    InvalidOpcode,    ///< undecodable instruction word
    OperandTooWide,   ///< register operand >= 2^w
    RegOutOfRange,    ///< relocated register >= n
    MemOutOfRange,    ///< data or instruction address out of range
    ContextBounds,    ///< Mux-mode context bounds violation
};

/** @return a printable name for @p kind. */
const char *trapName(TrapKind kind);

/**
 * Default for CpuConfig::predecode: true unless the environment
 * variable RR_CPU_PREDECODE is set to "0". Read once per process, so
 * tests can run the same binary in both modes.
 */
bool defaultPredecode();

/**
 * How Cpu::run dispatches predecoded instructions. All three modes
 * are architecturally identical — traces, stats, and checkpoints are
 * byte-for-byte the same; only wall-clock speed changes (docs/PERF.md
 * has the matrix and the invalidation rules).
 */
enum class DispatchMode : uint8_t
{
    /** Per-instruction switch over the predecoded side table (PR 4). */
    Switch,
    /**
     * Token-threaded dispatch over cached superblocks: straight-line
     * runs execute decoded descriptors back-to-back with one validity
     * check per block instead of per-instruction tag compares.
     */
    Threaded,
    /**
     * Threaded, plus the dominant macro-op pairs (cmp+branch,
     * load+use) fused into single descriptors at block-build time.
     */
    Fused,
};

/**
 * Default for CpuConfig::dispatch: DispatchMode::Fused unless the
 * environment variable RR_CPU_DISPATCH is "switch" or "threaded".
 * Read once per process, like RR_CPU_PREDECODE.
 */
DispatchMode defaultDispatch();

/** @return a printable name for @p mode ("switch", "threaded", ...). */
const char *dispatchModeName(DispatchMode mode);

/** Static machine configuration. */
struct CpuConfig
{
    /** Physical register file size n (power of two). */
    unsigned numRegs = 128;

    /**
     * Register operand width w: a context may address at most 2^w
     * registers (paper Section 2.1). Must not exceed the 6-bit
     * encoding field.
     */
    unsigned operandWidth = 5;

    /** Delay slots after LDRRM before the new mask takes effect. */
    unsigned ldrrmDelaySlots = 1;

    /** Memory size in words. */
    size_t memWords = 1u << 16;

    /** Decode-stage combining operation. */
    RelocationMode relocationMode = RelocationMode::Or;

    /** RRM bank entries (>1 enables the Section 5.3 extension). */
    unsigned rrmBanks = 1;

    /** Pipeline hazard penalties (all zero = ideal 1 CPI). */
    PipelineTimingConfig timing;

    /**
     * Use the predecoded instruction cache: each memory word is
     * decoded once into a side table validated by raw-word tag and
     * invalidated on stores, so step() skips isa::decode and the
     * per-operand relocation arithmetic on the hot path. Architectural
     * behaviour (registers, memory, traps, cycles, instret, timing
     * stats, traces) is identical with the cache on or off; only
     * wall-clock speed changes. Defaults from RR_CPU_PREDECODE.
     */
    bool predecode = defaultPredecode();

    /**
     * run() dispatch strategy over the predecoded stream. Behaviour-
     * neutral like the predecode switch itself: Threaded/Fused engage
     * only when the predecode cache is active, and single-stepping via
     * step() always uses the per-instruction path. Defaults from
     * RR_CPU_DISPATCH.
     */
    DispatchMode dispatch = defaultDispatch();
};

/** One line of execution trace. */
struct TraceEntry
{
    uint64_t cycle;       ///< cycle at which the instruction executed
    uint32_t pc;          ///< word address of the instruction
    isa::Instruction inst; ///< decoded (pre-relocation) instruction
    uint32_t rrm;          ///< active RRM (bank 0) during decode
    std::string text;      ///< disassembly
};

/** The RRISC processor. */
class Cpu : public ckpt::Restorable
{
  public:
    /** Called when a FAULT instruction executes. */
    using FaultHook = std::function<void(Cpu &, uint32_t fault_class)>;

    /** Called once per executed instruction when tracing is enabled. */
    using TraceHook = std::function<void(const TraceEntry &)>;

    explicit Cpu(const CpuConfig &config);

    // ---- state access ---------------------------------------------------

    const CpuConfig &config() const { return config_; }
    RegisterFile &regs() { return regs_; }
    const RegisterFile &regs() const { return regs_; }
    Memory &mem() { return mem_; }
    const Memory &mem() const { return mem_; }
    RelocationUnit &relocation() { return relocation_; }
    const RelocationUnit &relocation() const { return relocation_; }

    uint32_t pc() const { return pc_; }
    void setPc(uint32_t pc) { pc_ = pc; }

    uint32_t psw() const { return psw_; }
    void setPsw(uint32_t psw) { psw_ = psw; }

    /** Active RRM (bank 0); pending delay-slot loads not included. */
    uint32_t rrm() const { return relocation_.mask(0); }

    /**
     * Set the RRM immediately, bypassing delay slots (used by the
     * runtime when synthesizing initial state, not by simulated code).
     */
    void setRrmImmediate(uint32_t mask, unsigned bank = 0);

    /**
     * Read / write a context-relative register under the *current*
     * RRM — how the runtime layer peeks into the active context.
     * Panics on relocation failure.
     */
    uint32_t readContextReg(unsigned context_reg) const;
    void writeContextReg(unsigned context_reg, uint32_t value);

    // ---- execution ------------------------------------------------------

    /**
     * Execute one instruction.
     * @return false when the CPU is halted or trapped.
     */
    bool step();

    /**
     * Run until HALT, a trap, or @p max_steps instructions.
     * @return number of instructions executed.
     */
    uint64_t run(uint64_t max_steps);

    bool halted() const { return halted_; }
    TrapKind trap() const { return trap_; }

    /** Clear halt/trap so execution can continue (runtime use). */
    void resume();

    uint64_t cycles() const { return cycles_; }
    uint64_t instructionsRetired() const { return instret_; }

    /** Stall-cycle breakdown (all zero with default timing). */
    const PipelineTimingStats &timingStats() const
    {
        return timingStats_;
    }

    /**
     * Charge @p n extra cycles without executing instructions (models
     * pipeline bubbles and memory stalls imposed by a higher layer).
     */
    void stall(uint64_t n) { cycles_ += n; }

    // ---- hooks ----------------------------------------------------------

    void setFaultHook(FaultHook hook) { faultHook_ = std::move(hook); }
    void setTraceHook(TraceHook hook) { traceHook_ = std::move(hook); }

    /** Class value of the most recent FAULT instruction. */
    uint32_t lastFaultClass() const { return lastFaultClass_; }

    /** Total FAULT instructions executed. */
    uint64_t faultCount() const { return faultCount_; }

    /**
     * True when the predecoded instruction cache is in use (config
     * requested it and the memory is small enough to shadow).
     */
    bool predecodeActive() const { return predecode_; }

    /**
     * True when run() uses threaded superblock dispatch (predecode is
     * active and the configured mode is Threaded or Fused).
     */
    bool dispatchActive() const { return dispatchActive_; }

    /**
     * Memories larger than this are not shadowed (the side table costs
     * 16 bytes/word); such CPUs fall back to the decode-per-step path.
     */
    static constexpr size_t kPredecodeMaxWords = size_t{1} << 22;

    /** Superblocks decoded since construction (diagnostics only). */
    uint64_t superblocksBuilt() const { return sbBuilt_; }

    /**
     * Whole-cache superblock invalidations since construction: SMC
     * hitting covered words, host writes whose re-verification found
     * changed code, checkpoint restores, and capacity resets
     * (diagnostics only — never serialized).
     */
    uint64_t superblockFlushes() const { return sbFlushes_; }

    /**
     * Superblocks kept after a host write touched cached code: the
     * lazy re-verification compared the covered words against the
     * block's build-time snapshot and found them unchanged
     * (diagnostics only — never serialized).
     */
    uint64_t superblocksReverified() const { return sbReverified_; }

    // ---- checkpointing ---------------------------------------------------

    /**
     * Configuration fingerprint for rr.ckpt.v1 meta checking. Covers
     * everything that affects execution (geometry, relocation mode,
     * delay slots, timing penalties) but not the predecode switch,
     * which is behaviour-neutral by construction.
     */
    std::string fingerprint() const;

    /**
     * Save the complete architectural and timing state: registers,
     * memory, relocation masks, PC/PSW/trap, pending LDRRM delay
     * slots, cycle and stall counters, and the cross-step hazard
     * window. The predecode cache is derived state (entries
     * self-validate against memory words) and is never serialized.
     */
    void saveState(ckpt::Writer &writer) const override;

    /**
     * Restore state saved by saveState() into a CPU built with a
     * matching configuration. Throws ckpt::Error on any geometry
     * mismatch. The relocation table cache is re-validated, never
     * trusted (see RelocationUnit::restoreMasks).
     */
    void restoreState(const ckpt::Reader &reader) override;

    /** Rebuild a CpuConfig from a checkpoint's config section. */
    static CpuConfig configFromCheckpoint(const ckpt::Reader &reader);

  private:
    struct TrapSignal
    {
        TrapKind kind;
    };

    /**
     * One predecoded instruction. @c word is the raw memory word the
     * entry was decoded from: a mismatch against current memory (a
     * store through any path, including host writes via mem()) makes
     * the entry self-invalidating, so the cache can never execute a
     * stale decode.
     */
    struct ICacheEntry
    {
        uint32_t word = 0;
        bool valid = false;
        isa::Instruction inst{};
    };

    /**
     * Most register reads any instruction performs. Audit over
     * isa::FormatInfo: R3 and B read rs1+rs2, ST (Format::I with a
     * source rd) reads rs1+rd, every other format reads at most one
     * register. readOperand asserts this bound instead of silently
     * dropping reads from the load-use hazard window.
     */
    static constexpr unsigned kMaxOperandReads = 2;

    /** Relocate a context-relative operand or raise a trap. */
    unsigned relocateOrTrap(unsigned operand) const;

    uint32_t readOperand(unsigned operand) const;
    void writeOperand(unsigned operand, uint32_t value);

    /** Table-driven operand access for the predecode fast path. */
    [[noreturn]] static void throwTrap(TrapKind kind);
    void recordOperandRead(unsigned physical) const;
    uint32_t readOperandFast(unsigned operand) const;
    void writeOperandFast(unsigned operand, uint32_t value);

    /**
     * Re-cache the relocation table after a mask/context change.
     * Inline: this sits on the LDRRM retirement path, which context-
     * switch-heavy workloads hit every few instructions.
     */
    void
    refreshRelocTable()
    {
        // The table replaces the per-access RegOutOfRange check; the
        // unit asserts the range invariant once when it builds each
        // table, so refreshing after a mask switch is just two loads.
        relocTable_ = relocation_.table();
        relocEpoch_ = relocation_.epoch();
    }

    bool stepSlow();
    bool stepFast();

    template <bool Fast>
    void executeImpl(const isa::Instruction &inst);

    // ---- threaded superblock dispatch (cpu_dispatch.cc) -----------------

    /**
     * One token-threaded descriptor. @c token selects the handler
     * (opcode tokens mirror isa::Opcode values; fused tokens follow).
     * @c a and @c b hold the decoded constituent instructions
     * verbatim, so trace reconstruction and timing charges in careful
     * mode are exact; @c b is used by fused tokens only.
     */
    struct MicroOp
    {
        uint16_t token = 0;
        uint32_t pc = 0;
        isa::Instruction a{};
        isa::Instruction b{};
    };

    /**
     * A decoded run of instructions starting at @c entry and covering
     * @c words memory words. Derived state: built from the predecode
     * cache, invalidated whenever a covered word changes (simulated
     * stores, host writes, restores), and never serialized.
     *
     * @c raw snapshots the covered memory words at build time and
     * @c seenEpoch records the code epoch the block was last verified
     * against: after host writes touch cached code, blocks are
     * re-verified lazily (one word compare per covered word, at next
     * entry) instead of rebuilt — reloading an identical image keeps
     * every block.
     */
    struct SuperBlock
    {
        uint32_t entry = 0;
        uint32_t words = 0;
        uint64_t seenEpoch = 0;
        std::vector<MicroOp> ops;
        std::vector<uint32_t> raw;
    };

    /** Cache capacity; the whole cache is reset when it fills. */
    static constexpr size_t kMaxSuperblocks = 4096;

    /** Longest run of memory words decoded into one superblock. */
    static constexpr uint32_t kMaxBlockWords = 64;

    /**
     * Decode a superblock starting at @p entry (which must be in
     * range) and register it in the block index.
     * @return nullptr when the entry word is undecodable.
     */
    const SuperBlock *buildBlock(uint32_t entry);

    /** Drop every superblock and clear the index/cover maps. */
    void flushBlocks();

    /**
     * Invalidate superblocks touched by host writes that arrived
     * through Memory's public API since the last sync (checked via
     * the memory version counter and bounded write journal).
     */
    void syncHostWrites();

    /** run() loop over cached superblocks (dispatchActive_ only). */
    uint64_t runBlocks(uint64_t max_steps);

    /**
     * Execute one superblock for at most @p budget instructions.
     * Careful mode maintains per-instruction trace/timing state;
     * fast mode materializes pc/counters only at exits.
     * @return instructions retired.
     */
    template <bool Careful>
    uint64_t execBlock(const SuperBlock &blk, uint64_t budget);

    /** Shared end-of-step hazard accounting (timing enabled only). */
    void applyTiming(const isa::Instruction &inst, uint32_t pc_before);

    /**
     * Apply/advance the pending LDRRM delay-slot state machine.
     * Inline for the same reason as refreshRelocTable().
     */
    void
    advancePendingRrm()
    {
        if (!rrmPending_)
            return;
        --rrmPendingRemaining_;
        if (rrmPendingRemaining_ == 0) {
            relocation_.setMask(rrmPendingValue_, rrmPendingBank_);
            rrmPending_ = false;
        }
    }

    CpuConfig config_;
    RegisterFile regs_;
    Memory mem_;
    RelocationUnit relocation_;

    // Predecode fast path: instruction side table plus cached raw
    // pointers (Memory and RegisterFile never reallocate) and the
    // epoch-validated relocation table.
    bool predecode_ = false;
    std::vector<ICacheEntry> icache_;
    uint32_t *memData_ = nullptr;
    uint32_t *regsData_ = nullptr;
    uint64_t memWords_ = 0;
    bool timingEnabled_ = false;
    const RelocationResult *relocTable_ = nullptr;
    unsigned relocTableSize_ = 0;
    uint64_t relocEpoch_ = 0;

    // Superblock cache (threaded dispatch). blockIndex_ maps an entry
    // pc to its block (-1 = none); blockCover_ counts, per word, how
    // many blocks decoded that word, so stores can detect in O(1)
    // whether they clobbered cached code. blocksStale_ defers the
    // actual flush to the next outer-loop iteration.
    bool dispatchActive_ = false;
    std::vector<SuperBlock> blocks_;
    std::vector<int32_t> blockIndex_;
    std::vector<uint16_t> blockCover_;
    bool blocksStale_ = false;
    uint64_t memVersionSeen_ = 0;
    uint64_t codeEpoch_ = 0;
    uint64_t sbBuilt_ = 0;
    uint64_t sbFlushes_ = 0;
    uint64_t sbReverified_ = 0;

    uint32_t pc_ = 0;
    uint32_t psw_ = 0;
    bool halted_ = false;
    TrapKind trap_ = TrapKind::None;

    uint64_t cycles_ = 0;
    uint64_t instret_ = 0;

    // Pending LDRRM (delay slots). remaining_ counts instructions that
    // still execute under the old mask.
    bool rrmPending_ = false;
    unsigned rrmPendingBank_ = 0;
    uint32_t rrmPendingValue_ = 0;
    unsigned rrmPendingRemaining_ = 0;

    FaultHook faultHook_;
    TraceHook traceHook_;
    uint32_t lastFaultClass_ = 0;
    uint64_t faultCount_ = 0;

    // Pipeline hazard tracking (only maintained when timing is
    // enabled). stepWrote_/stepWrotePhys_ capture the physical
    // destination at write time, so a mask change later in the same
    // step (or between steps) cannot mis-attribute the next load-use
    // stall.
    PipelineTimingStats timingStats_;
    mutable unsigned stepReads_[kMaxOperandReads] = {0, 0};
    mutable unsigned stepReadCount_ = 0;
    bool stepWrote_ = false;
    unsigned stepWrotePhys_ = 0;
    bool prevWasLoad_ = false;
    bool prevWroteReg_ = false;
    unsigned prevDestPhys_ = 0;
};

} // namespace rr::machine

#endif // RR_MACHINE_CPU_HH
