#include "machine/cpu.hh"

#include "base/bitops.hh"
#include "base/logging.hh"

namespace rr::machine {

using isa::Instruction;
using isa::Opcode;

const char *
trapName(TrapKind kind)
{
    switch (kind) {
      case TrapKind::None:
        return "none";
      case TrapKind::InvalidOpcode:
        return "invalid-opcode";
      case TrapKind::OperandTooWide:
        return "operand-too-wide";
      case TrapKind::RegOutOfRange:
        return "reg-out-of-range";
      case TrapKind::MemOutOfRange:
        return "mem-out-of-range";
      case TrapKind::ContextBounds:
        return "context-bounds-violation";
    }
    return "unknown";
}

Cpu::Cpu(const CpuConfig &config)
    : config_(config),
      regs_(config.numRegs),
      mem_(config.memWords),
      relocation_(config.numRegs, config.operandWidth,
                  config.relocationMode, config.rrmBanks)
{
}

void
Cpu::setRrmImmediate(uint32_t mask, unsigned bank)
{
    relocation_.setMask(mask, bank);
}

unsigned
Cpu::relocateOrTrap(unsigned operand) const
{
    if (operand >= (1u << config_.operandWidth))
        throw TrapSignal{TrapKind::OperandTooWide};
    const RelocationResult result = relocation_.relocate(operand);
    if (!result.ok)
        throw TrapSignal{TrapKind::ContextBounds};
    if (result.physical >= regs_.size())
        throw TrapSignal{TrapKind::RegOutOfRange};
    return result.physical;
}

uint32_t
Cpu::readOperand(unsigned operand) const
{
    const unsigned physical = relocateOrTrap(operand);
    if (config_.timing.enabled() && stepReadCount_ < 4)
        stepReads_[stepReadCount_++] = physical;
    return regs_.read(physical);
}

void
Cpu::writeOperand(unsigned operand, uint32_t value)
{
    regs_.write(relocateOrTrap(operand), value);
}

uint32_t
Cpu::readContextReg(unsigned context_reg) const
{
    const RelocationResult result = relocation_.relocate(context_reg);
    rr_assert(result.ok, "context register ", context_reg,
              " violates bounds");
    return regs_.read(result.physical);
}

void
Cpu::writeContextReg(unsigned context_reg, uint32_t value)
{
    const RelocationResult result = relocation_.relocate(context_reg);
    rr_assert(result.ok, "context register ", context_reg,
              " violates bounds");
    regs_.write(result.physical, value);
}

void
Cpu::advancePendingRrm()
{
    if (!rrmPending_)
        return;
    --rrmPendingRemaining_;
    if (rrmPendingRemaining_ == 0) {
        relocation_.setMask(rrmPendingValue_, rrmPendingBank_);
        rrmPending_ = false;
    }
}

bool
Cpu::step()
{
    if (halted_ || trap_ != TrapKind::None)
        return false;

    // Delay-slot state machine: the mask installed by LDRRM becomes
    // visible only after ldrrmDelaySlots further instructions.
    advancePendingRrm();

    if (!mem_.inRange(pc_)) {
        trap_ = TrapKind::MemOutOfRange;
        return false;
    }
    const uint32_t word = mem_.read(pc_);
    Instruction inst;
    if (!isa::decode(word, inst)) {
        trap_ = TrapKind::InvalidOpcode;
        return false;
    }

    if (traceHook_) {
        traceHook_(TraceEntry{cycles_, pc_, inst, relocation_.mask(0),
                              isa::disassemble(inst)});
    }

    const uint32_t pc_before = pc_;
    stepReadCount_ = 0;

    try {
        execute(inst);
    } catch (const TrapSignal &signal) {
        trap_ = signal.kind;
        return false;
    }

    ++cycles_;
    ++instret_;

    if (config_.timing.enabled()) {
        // Load-use: this instruction read the destination of the
        // immediately preceding load.
        if (prevWasLoad_ && prevWroteReg_) {
            for (unsigned i = 0; i < stepReadCount_; ++i) {
                if (stepReads_[i] == prevDestPhys_) {
                    cycles_ += config_.timing.loadUsePenalty;
                    timingStats_.loadUseStalls +=
                        config_.timing.loadUsePenalty;
                    break;
                }
            }
        }
        // Redirection: any non-sequential next PC flushes the front
        // of the pipeline (taken branches, jumps, fault vectors).
        if (pc_ != pc_before + 1 && !halted_) {
            cycles_ += config_.timing.takenBranchPenalty;
            timingStats_.branchStalls +=
                config_.timing.takenBranchPenalty;
        }
        if (inst.op == isa::Opcode::LDRRM ||
            inst.op == isa::Opcode::LDRRMX) {
            cycles_ += config_.timing.ldrrmPenalty;
            timingStats_.ldrrmStalls += config_.timing.ldrrmPenalty;
        }
        // Track this instruction's write for the next step's hazard
        // check.
        prevWasLoad_ = inst.op == isa::Opcode::LD;
        const isa::FormatInfo info = isa::formatInfo(inst.format());
        prevWroteReg_ =
            info.hasRd && inst.op != isa::Opcode::ST;
        if (prevWroteReg_) {
            const RelocationResult dest =
                relocation_.relocate(inst.rd);
            prevDestPhys_ = dest.physical;
        }
    }

    return trap_ == TrapKind::None && !halted_;
}

uint64_t
Cpu::run(uint64_t max_steps)
{
    uint64_t executed = 0;
    while (executed < max_steps) {
        const uint64_t before = instret_;
        const bool more = step();
        executed += instret_ - before;
        if (!more)
            break;
    }
    return executed;
}

void
Cpu::resume()
{
    halted_ = false;
    trap_ = TrapKind::None;
}

void
Cpu::execute(const Instruction &inst)
{
    uint32_t next = pc_ + 1;

    auto mem_read = [&](uint64_t addr) {
        if (!mem_.inRange(addr))
            throw TrapSignal{TrapKind::MemOutOfRange};
        return mem_.read(addr);
    };
    auto mem_write = [&](uint64_t addr, uint32_t value) {
        if (!mem_.inRange(addr))
            throw TrapSignal{TrapKind::MemOutOfRange};
        mem_.write(addr, value);
    };

    switch (inst.op) {
      case Opcode::NOP:
        break;
      case Opcode::HALT:
        halted_ = true;
        break;

      case Opcode::ADD:
        writeOperand(inst.rd,
                     readOperand(inst.rs1) + readOperand(inst.rs2));
        break;
      case Opcode::SUB:
        writeOperand(inst.rd,
                     readOperand(inst.rs1) - readOperand(inst.rs2));
        break;
      case Opcode::AND:
        writeOperand(inst.rd,
                     readOperand(inst.rs1) & readOperand(inst.rs2));
        break;
      case Opcode::OR:
        writeOperand(inst.rd,
                     readOperand(inst.rs1) | readOperand(inst.rs2));
        break;
      case Opcode::XOR:
        writeOperand(inst.rd,
                     readOperand(inst.rs1) ^ readOperand(inst.rs2));
        break;
      case Opcode::SLL:
        writeOperand(inst.rd, readOperand(inst.rs1)
                                  << (readOperand(inst.rs2) & 31));
        break;
      case Opcode::SRL:
        writeOperand(inst.rd, readOperand(inst.rs1) >>
                                  (readOperand(inst.rs2) & 31));
        break;
      case Opcode::SRA:
        writeOperand(inst.rd,
                     static_cast<uint32_t>(
                         static_cast<int32_t>(readOperand(inst.rs1)) >>
                         (readOperand(inst.rs2) & 31)));
        break;
      case Opcode::SLT:
        writeOperand(inst.rd,
                     static_cast<int32_t>(readOperand(inst.rs1)) <
                             static_cast<int32_t>(readOperand(inst.rs2))
                         ? 1
                         : 0);
        break;
      case Opcode::SLTU:
        writeOperand(inst.rd,
                     readOperand(inst.rs1) < readOperand(inst.rs2) ? 1
                                                                   : 0);
        break;

      case Opcode::ADDI:
        writeOperand(inst.rd,
                     readOperand(inst.rs1) +
                         static_cast<uint32_t>(inst.imm));
        break;
      case Opcode::ANDI:
        writeOperand(inst.rd, readOperand(inst.rs1) &
                                  static_cast<uint32_t>(inst.imm));
        break;
      case Opcode::ORI:
        writeOperand(inst.rd, readOperand(inst.rs1) |
                                  static_cast<uint32_t>(inst.imm));
        break;
      case Opcode::XORI:
        writeOperand(inst.rd, readOperand(inst.rs1) ^
                                  static_cast<uint32_t>(inst.imm));
        break;
      case Opcode::SLTI:
        writeOperand(inst.rd,
                     static_cast<int32_t>(readOperand(inst.rs1)) <
                             inst.imm
                         ? 1
                         : 0);
        break;
      case Opcode::SLLI:
        writeOperand(inst.rd, readOperand(inst.rs1)
                                  << (static_cast<uint32_t>(inst.imm) &
                                      31));
        break;
      case Opcode::SRLI:
        writeOperand(inst.rd,
                     readOperand(inst.rs1) >>
                         (static_cast<uint32_t>(inst.imm) & 31));
        break;
      case Opcode::SRAI:
        writeOperand(inst.rd,
                     static_cast<uint32_t>(
                         static_cast<int32_t>(readOperand(inst.rs1)) >>
                         (static_cast<uint32_t>(inst.imm) & 31)));
        break;

      case Opcode::LUI:
        writeOperand(inst.rd, static_cast<uint32_t>(inst.imm) << 12);
        break;

      case Opcode::LD: {
        const uint64_t addr =
            readOperand(inst.rs1) + static_cast<uint32_t>(inst.imm);
        writeOperand(inst.rd, mem_read(addr));
        break;
      }
      case Opcode::ST: {
        const uint64_t addr =
            readOperand(inst.rs1) + static_cast<uint32_t>(inst.imm);
        mem_write(addr, readOperand(inst.rd));
        break;
      }

      case Opcode::BEQ:
        if (readOperand(inst.rs1) == readOperand(inst.rs2))
            next = pc_ + static_cast<uint32_t>(inst.imm);
        break;
      case Opcode::BNE:
        if (readOperand(inst.rs1) != readOperand(inst.rs2))
            next = pc_ + static_cast<uint32_t>(inst.imm);
        break;
      case Opcode::BLT:
        if (static_cast<int32_t>(readOperand(inst.rs1)) <
            static_cast<int32_t>(readOperand(inst.rs2))) {
            next = pc_ + static_cast<uint32_t>(inst.imm);
        }
        break;
      case Opcode::BGE:
        if (static_cast<int32_t>(readOperand(inst.rs1)) >=
            static_cast<int32_t>(readOperand(inst.rs2))) {
            next = pc_ + static_cast<uint32_t>(inst.imm);
        }
        break;

      case Opcode::JAL:
        writeOperand(inst.rd, pc_ + 1);
        next = pc_ + static_cast<uint32_t>(inst.imm);
        break;
      case Opcode::JALR: {
        const uint32_t target =
            readOperand(inst.rs1) + static_cast<uint32_t>(inst.imm);
        writeOperand(inst.rd, pc_ + 1);
        next = target;
        break;
      }
      case Opcode::JMP:
        next = readOperand(inst.rs1);
        break;

      case Opcode::LDRRM:
        rrmPendingValue_ = readOperand(inst.rs1);
        rrmPendingBank_ = 0;
        rrmPendingRemaining_ = config_.ldrrmDelaySlots + 1;
        rrmPending_ = true;
        break;
      case Opcode::RDRRM:
        writeOperand(inst.rd, relocation_.mask(0));
        break;
      case Opcode::LDRRMX: {
        const auto bank = static_cast<unsigned>(inst.imm);
        if (bank >= relocation_.numBanks())
            throw TrapSignal{TrapKind::InvalidOpcode};
        // Extension masks are loaded without delay slots for
        // simplicity; bank 0 keeps the architected delay behaviour.
        const uint32_t value = readOperand(inst.rs1);
        if (bank == 0) {
            rrmPendingValue_ = value;
            rrmPendingBank_ = 0;
            rrmPendingRemaining_ = config_.ldrrmDelaySlots + 1;
            rrmPending_ = true;
        } else {
            relocation_.setMask(value, bank);
        }
        break;
      }

      case Opcode::MFPSW:
        writeOperand(inst.rd, psw_);
        break;
      case Opcode::MTPSW:
        psw_ = readOperand(inst.rs1);
        break;

      case Opcode::FF1: {
        const int bit = findFirstSet(readOperand(inst.rs1));
        writeOperand(inst.rd, static_cast<uint32_t>(bit));
        break;
      }

      case Opcode::FAULT:
        lastFaultClass_ = static_cast<uint32_t>(inst.imm);
        ++faultCount_;
        pc_ = next;
        if (faultHook_)
            faultHook_(*this, lastFaultClass_);
        return; // the hook may have redirected the PC

      case Opcode::NumOpcodes:
        throw TrapSignal{TrapKind::InvalidOpcode};
    }

    pc_ = next;
}

} // namespace rr::machine
