#include "machine/cpu.hh"

#include <cstdio>
#include <cstdlib>
#include <string_view>

#include "base/bitops.hh"
#include "base/logging.hh"

namespace rr::machine {

using isa::Instruction;
using isa::Opcode;

const char *
trapName(TrapKind kind)
{
    switch (kind) {
      case TrapKind::None:
        return "none";
      case TrapKind::InvalidOpcode:
        return "invalid-opcode";
      case TrapKind::OperandTooWide:
        return "operand-too-wide";
      case TrapKind::RegOutOfRange:
        return "reg-out-of-range";
      case TrapKind::MemOutOfRange:
        return "mem-out-of-range";
      case TrapKind::ContextBounds:
        return "context-bounds-violation";
    }
    return "unknown";
}

bool
defaultPredecode()
{
    static const bool value = [] {
        const char *env = std::getenv("RR_CPU_PREDECODE");
        return env == nullptr || std::string_view(env) != "0";
    }();
    return value;
}

DispatchMode
defaultDispatch()
{
    static const DispatchMode value = [] {
        const char *env = std::getenv("RR_CPU_DISPATCH");
        if (env != nullptr) {
            const std::string_view v(env);
            if (v == "switch")
                return DispatchMode::Switch;
            if (v == "threaded")
                return DispatchMode::Threaded;
        }
        return DispatchMode::Fused;
    }();
    return value;
}

const char *
dispatchModeName(DispatchMode mode)
{
    switch (mode) {
      case DispatchMode::Switch:
        return "switch";
      case DispatchMode::Threaded:
        return "threaded";
      case DispatchMode::Fused:
        return "fused";
    }
    return "unknown";
}

Cpu::Cpu(const CpuConfig &config)
    : config_(config),
      regs_(config.numRegs),
      mem_(config.memWords),
      relocation_(config.numRegs, config.operandWidth,
                  config.relocationMode, config.rrmBanks),
      predecode_(config.predecode &&
                 config.memWords <= kPredecodeMaxWords),
      memData_(mem_.data()),
      regsData_(regs_.data()),
      memWords_(config.memWords),
      timingEnabled_(config.timing.enabled()),
      relocTableSize_(relocation_.tableSize()),
      dispatchActive_(predecode_ &&
                      config.dispatch != DispatchMode::Switch)
{
    if (predecode_) {
        icache_.resize(config.memWords);
        refreshRelocTable();
    }
    if (dispatchActive_) {
        blockIndex_.assign(config.memWords, -1);
        blockCover_.assign(config.memWords, 0);
        blocks_.reserve(64);
        memVersionSeen_ = mem_.version();
    }
}

void
Cpu::setRrmImmediate(uint32_t mask, unsigned bank)
{
    relocation_.setMask(mask, bank);
}

unsigned
Cpu::relocateOrTrap(unsigned operand) const
{
    if (operand >= (1u << config_.operandWidth))
        throw TrapSignal{TrapKind::OperandTooWide};
    const RelocationResult result = relocation_.relocate(operand);
    if (!result.ok)
        throw TrapSignal{TrapKind::ContextBounds};
    if (result.physical >= regs_.size())
        throw TrapSignal{TrapKind::RegOutOfRange};
    return result.physical;
}

uint32_t
Cpu::readOperand(unsigned operand) const
{
    const unsigned physical = relocateOrTrap(operand);
    if (config_.timing.enabled()) {
        rr_assert(stepReadCount_ < kMaxOperandReads,
                  "instruction performs more than ", kMaxOperandReads,
                  " register reads; widen Cpu::stepReads_");
        stepReads_[stepReadCount_++] = physical;
    }
    return regs_.read(physical);
}

void
Cpu::writeOperand(unsigned operand, uint32_t value)
{
    const unsigned physical = relocateOrTrap(operand);
    regs_.write(physical, value);
    if (config_.timing.enabled()) {
        stepWrote_ = true;
        stepWrotePhys_ = physical;
    }
}

// Out-of-line trap construction keeps readOperandFast/writeOperandFast
// small enough to inline into the executeImpl dispatch — the EH setup
// code otherwise pushes them past the inlining threshold and every ALU
// operand costs a real call.
[[noreturn, gnu::noinline]] void
Cpu::throwTrap(TrapKind kind)
{
    throw TrapSignal{kind};
}

[[gnu::noinline]] void
Cpu::recordOperandRead(unsigned physical) const
{
    rr_assert(stepReadCount_ < kMaxOperandReads,
              "instruction performs more than ", kMaxOperandReads,
              " register reads; widen Cpu::stepReads_");
    stepReads_[stepReadCount_++] = physical;
}

inline uint32_t
Cpu::readOperandFast(unsigned operand) const
{
    if (operand >= relocTableSize_) [[unlikely]]
        throwTrap(TrapKind::OperandTooWide);
    const RelocationResult &result = relocTable_[operand];
    if (!result.ok) [[unlikely]]
        throwTrap(TrapKind::ContextBounds);
    if (timingEnabled_)
        recordOperandRead(result.physical);
    return regsData_[result.physical];
}

inline void
Cpu::writeOperandFast(unsigned operand, uint32_t value)
{
    if (operand >= relocTableSize_) [[unlikely]]
        throwTrap(TrapKind::OperandTooWide);
    const RelocationResult &result = relocTable_[operand];
    if (!result.ok) [[unlikely]]
        throwTrap(TrapKind::ContextBounds);
    regsData_[result.physical] = value;
    if (timingEnabled_) {
        stepWrote_ = true;
        stepWrotePhys_ = result.physical;
    }
}

uint32_t
Cpu::readContextReg(unsigned context_reg) const
{
    const RelocationResult result = relocation_.relocate(context_reg);
    rr_assert(result.ok, "context register ", context_reg,
              " violates bounds");
    return regs_.read(result.physical);
}

void
Cpu::writeContextReg(unsigned context_reg, uint32_t value)
{
    const RelocationResult result = relocation_.relocate(context_reg);
    rr_assert(result.ok, "context register ", context_reg,
              " violates bounds");
    regs_.write(result.physical, value);
}

bool
Cpu::step()
{
    return predecode_ ? stepFast() : stepSlow();
}

bool
Cpu::stepSlow()
{
    if (halted_ || trap_ != TrapKind::None)
        return false;

    // Delay-slot state machine: the mask installed by LDRRM becomes
    // visible only after ldrrmDelaySlots further instructions.
    advancePendingRrm();

    if (!mem_.inRange(pc_)) {
        trap_ = TrapKind::MemOutOfRange;
        return false;
    }
    const uint32_t word = mem_.read(pc_);
    Instruction inst;
    if (!isa::decode(word, inst)) {
        trap_ = TrapKind::InvalidOpcode;
        return false;
    }

    if (traceHook_) {
        traceHook_(TraceEntry{cycles_, pc_, inst, relocation_.mask(0),
                              isa::disassemble(inst)});
    }

    const uint32_t pc_before = pc_;
    stepReadCount_ = 0;
    stepWrote_ = false;

    try {
        executeImpl<false>(inst);
    } catch (const TrapSignal &signal) {
        trap_ = signal.kind;
        return false;
    }

    ++cycles_;
    ++instret_;

    if (config_.timing.enabled())
        applyTiming(inst, pc_before);

    return trap_ == TrapKind::None && !halted_;
}

bool
Cpu::stepFast()
{
    if (halted_ || trap_ != TrapKind::None)
        return false;

    advancePendingRrm();

    if (pc_ >= memWords_) {
        trap_ = TrapKind::MemOutOfRange;
        return false;
    }

    // The tag compare against the live memory word makes the entry
    // self-invalidating: stores through any path (simulated ST, host
    // writes via mem()) change the word, miss the tag, and force a
    // re-decode. Undecodable words are never cached; execution stops
    // on them anyway.
    const uint32_t word = memData_[pc_];
    ICacheEntry &entry = icache_[pc_];
    if (!entry.valid || entry.word != word) {
        Instruction inst;
        if (!isa::decode(word, inst)) {
            trap_ = TrapKind::InvalidOpcode;
            return false;
        }
        entry.word = word;
        entry.inst = inst;
        entry.valid = true;
    }
    const Instruction inst = entry.inst;

    // Relocation fast path: the operand->physical table is rebuilt
    // only when a mask or the context size changed (LDRRM retirement,
    // bank switches, host pokes) — never per operand.
    if (relocEpoch_ != relocation_.epoch())
        refreshRelocTable();

    if (traceHook_) {
        traceHook_(TraceEntry{cycles_, pc_, inst, relocation_.mask(0),
                              isa::disassemble(inst)});
    }

    const uint32_t pc_before = pc_;
    if (timingEnabled_) {
        stepReadCount_ = 0;
        stepWrote_ = false;
    }

    try {
        executeImpl<true>(inst);
    } catch (const TrapSignal &signal) {
        trap_ = signal.kind;
        return false;
    }

    ++cycles_;
    ++instret_;

    if (timingEnabled_)
        applyTiming(inst, pc_before);

    return trap_ == TrapKind::None && !halted_;
}

void
Cpu::applyTiming(const Instruction &inst, uint32_t pc_before)
{
    // Load-use: this instruction read the destination of the
    // immediately preceding load.
    if (prevWasLoad_ && prevWroteReg_) {
        for (unsigned i = 0; i < stepReadCount_; ++i) {
            if (stepReads_[i] == prevDestPhys_) {
                cycles_ += config_.timing.loadUsePenalty;
                timingStats_.loadUseStalls +=
                    config_.timing.loadUsePenalty;
                break;
            }
        }
    }
    // Redirection: any non-sequential next PC flushes the front of
    // the pipeline (taken branches, jumps, fault vectors).
    if (pc_ != pc_before + 1 && !halted_) {
        cycles_ += config_.timing.takenBranchPenalty;
        timingStats_.branchStalls += config_.timing.takenBranchPenalty;
    }
    if (inst.op == Opcode::LDRRM || inst.op == Opcode::LDRRMX) {
        cycles_ += config_.timing.ldrrmPenalty;
        timingStats_.ldrrmStalls += config_.timing.ldrrmPenalty;
    }
    // Track this instruction's write for the next step's hazard
    // check. The physical destination was captured by writeOperand at
    // write time, under the mask that was actually active — not
    // recomputed afterwards, when an LDRRM with zero delay slots (or
    // a fault hook) may already have switched the mask.
    prevWasLoad_ = inst.op == Opcode::LD;
    prevWroteReg_ = stepWrote_;
    if (stepWrote_)
        prevDestPhys_ = stepWrotePhys_;
}

uint64_t
Cpu::run(uint64_t max_steps)
{
    if (dispatchActive_)
        return runBlocks(max_steps);
    uint64_t executed = 0;
    while (executed < max_steps) {
        const uint64_t before = instret_;
        const bool more = step();
        executed += instret_ - before;
        if (!more)
            break;
    }
    return executed;
}

void
Cpu::resume()
{
    halted_ = false;
    trap_ = TrapKind::None;
}

template <bool Fast>
void
Cpu::executeImpl(const Instruction &inst)
{
    uint32_t next = pc_ + 1;

    auto read_op = [&](unsigned operand) {
        if constexpr (Fast)
            return readOperandFast(operand);
        else
            return readOperand(operand);
    };
    auto write_op = [&](unsigned operand, uint32_t value) {
        if constexpr (Fast)
            writeOperandFast(operand, value);
        else
            writeOperand(operand, value);
    };
    auto mem_read = [&](uint64_t addr) -> uint32_t {
        if constexpr (Fast) {
            if (addr >= memWords_)
                throw TrapSignal{TrapKind::MemOutOfRange};
            return memData_[addr];
        } else {
            if (!mem_.inRange(addr))
                throw TrapSignal{TrapKind::MemOutOfRange};
            return mem_.read(addr);
        }
    };
    auto mem_write = [&](uint64_t addr, uint32_t value) {
        if constexpr (Fast) {
            if (addr >= memWords_)
                throw TrapSignal{TrapKind::MemOutOfRange};
            memData_[addr] = value;
            // Store invalidation: drop any predecode of the stored
            // word (self-modifying code), and mark the superblock
            // cache stale when the store hit a word some block
            // decoded.
            icache_[addr].valid = false;
            if (dispatchActive_ && blockCover_[addr] != 0)
                blocksStale_ = true;
        } else {
            if (!mem_.inRange(addr))
                throw TrapSignal{TrapKind::MemOutOfRange};
            mem_.write(addr, value);
        }
    };

    switch (inst.op) {
      case Opcode::NOP:
        break;
      case Opcode::HALT:
        halted_ = true;
        break;

      case Opcode::ADD:
        write_op(inst.rd, read_op(inst.rs1) + read_op(inst.rs2));
        break;
      case Opcode::SUB:
        write_op(inst.rd, read_op(inst.rs1) - read_op(inst.rs2));
        break;
      case Opcode::AND:
        write_op(inst.rd, read_op(inst.rs1) & read_op(inst.rs2));
        break;
      case Opcode::OR:
        write_op(inst.rd, read_op(inst.rs1) | read_op(inst.rs2));
        break;
      case Opcode::XOR:
        write_op(inst.rd, read_op(inst.rs1) ^ read_op(inst.rs2));
        break;
      case Opcode::SLL:
        write_op(inst.rd, read_op(inst.rs1)
                              << (read_op(inst.rs2) & 31));
        break;
      case Opcode::SRL:
        write_op(inst.rd, read_op(inst.rs1) >>
                              (read_op(inst.rs2) & 31));
        break;
      case Opcode::SRA:
        write_op(inst.rd,
                 static_cast<uint32_t>(
                     static_cast<int32_t>(read_op(inst.rs1)) >>
                     (read_op(inst.rs2) & 31)));
        break;
      case Opcode::SLT:
        write_op(inst.rd,
                 static_cast<int32_t>(read_op(inst.rs1)) <
                         static_cast<int32_t>(read_op(inst.rs2))
                     ? 1
                     : 0);
        break;
      case Opcode::SLTU:
        write_op(inst.rd,
                 read_op(inst.rs1) < read_op(inst.rs2) ? 1 : 0);
        break;

      case Opcode::ADDI:
        write_op(inst.rd,
                 read_op(inst.rs1) + static_cast<uint32_t>(inst.imm));
        break;
      case Opcode::ANDI:
        write_op(inst.rd,
                 read_op(inst.rs1) & static_cast<uint32_t>(inst.imm));
        break;
      case Opcode::ORI:
        write_op(inst.rd,
                 read_op(inst.rs1) | static_cast<uint32_t>(inst.imm));
        break;
      case Opcode::XORI:
        write_op(inst.rd,
                 read_op(inst.rs1) ^ static_cast<uint32_t>(inst.imm));
        break;
      case Opcode::SLTI:
        write_op(inst.rd,
                 static_cast<int32_t>(read_op(inst.rs1)) < inst.imm
                     ? 1
                     : 0);
        break;
      case Opcode::SLLI:
        write_op(inst.rd, read_op(inst.rs1)
                              << (static_cast<uint32_t>(inst.imm) &
                                  31));
        break;
      case Opcode::SRLI:
        write_op(inst.rd, read_op(inst.rs1) >>
                              (static_cast<uint32_t>(inst.imm) & 31));
        break;
      case Opcode::SRAI:
        write_op(inst.rd,
                 static_cast<uint32_t>(
                     static_cast<int32_t>(read_op(inst.rs1)) >>
                     (static_cast<uint32_t>(inst.imm) & 31)));
        break;

      case Opcode::LUI:
        write_op(inst.rd, static_cast<uint32_t>(inst.imm) << 12);
        break;

      case Opcode::LD: {
        const uint64_t addr =
            read_op(inst.rs1) + static_cast<uint32_t>(inst.imm);
        write_op(inst.rd, mem_read(addr));
        break;
      }
      case Opcode::ST: {
        const uint64_t addr =
            read_op(inst.rs1) + static_cast<uint32_t>(inst.imm);
        mem_write(addr, read_op(inst.rd));
        break;
      }

      case Opcode::BEQ:
        if (read_op(inst.rs1) == read_op(inst.rs2))
            next = pc_ + static_cast<uint32_t>(inst.imm);
        break;
      case Opcode::BNE:
        if (read_op(inst.rs1) != read_op(inst.rs2))
            next = pc_ + static_cast<uint32_t>(inst.imm);
        break;
      case Opcode::BLT:
        if (static_cast<int32_t>(read_op(inst.rs1)) <
            static_cast<int32_t>(read_op(inst.rs2))) {
            next = pc_ + static_cast<uint32_t>(inst.imm);
        }
        break;
      case Opcode::BGE:
        if (static_cast<int32_t>(read_op(inst.rs1)) >=
            static_cast<int32_t>(read_op(inst.rs2))) {
            next = pc_ + static_cast<uint32_t>(inst.imm);
        }
        break;

      case Opcode::JAL:
        write_op(inst.rd, pc_ + 1);
        next = pc_ + static_cast<uint32_t>(inst.imm);
        break;
      case Opcode::JALR: {
        const uint32_t target =
            read_op(inst.rs1) + static_cast<uint32_t>(inst.imm);
        write_op(inst.rd, pc_ + 1);
        next = target;
        break;
      }
      case Opcode::JMP:
        next = read_op(inst.rs1);
        break;

      case Opcode::LDRRM:
        rrmPendingValue_ = read_op(inst.rs1);
        rrmPendingBank_ = 0;
        rrmPendingRemaining_ = config_.ldrrmDelaySlots + 1;
        rrmPending_ = true;
        break;
      case Opcode::RDRRM:
        write_op(inst.rd, relocation_.mask(0));
        break;
      case Opcode::LDRRMX: {
        const auto bank = static_cast<unsigned>(inst.imm);
        if (bank >= relocation_.numBanks())
            throw TrapSignal{TrapKind::InvalidOpcode};
        // Extension masks are loaded without delay slots for
        // simplicity; bank 0 keeps the architected delay behaviour.
        const uint32_t value = read_op(inst.rs1);
        if (bank == 0) {
            rrmPendingValue_ = value;
            rrmPendingBank_ = 0;
            rrmPendingRemaining_ = config_.ldrrmDelaySlots + 1;
            rrmPending_ = true;
        } else {
            relocation_.setMask(value, bank);
        }
        break;
      }

      case Opcode::MFPSW:
        write_op(inst.rd, psw_);
        break;
      case Opcode::MTPSW:
        psw_ = read_op(inst.rs1);
        break;

      case Opcode::FF1: {
        const int bit = findFirstSet(read_op(inst.rs1));
        write_op(inst.rd, static_cast<uint32_t>(bit));
        break;
      }

      case Opcode::FAULT:
        lastFaultClass_ = static_cast<uint32_t>(inst.imm);
        ++faultCount_;
        pc_ = next;
        if (faultHook_)
            faultHook_(*this, lastFaultClass_);
        return; // the hook may have redirected the PC

      case Opcode::NumOpcodes:
        throw TrapSignal{TrapKind::InvalidOpcode};
    }

    pc_ = next;
}

template void Cpu::executeImpl<false>(const Instruction &inst);
template void Cpu::executeImpl<true>(const Instruction &inst);

// ---------------------------------------------------------------------
// Checkpointing (rr.ckpt.v1)

namespace {

// Section and field tags for the "machine" checkpoint kind. The meta
// section tag 0x01 is reserved by rr::ckpt.
constexpr uint32_t kSectionCpuConfig = 0x10;
constexpr uint32_t kSectionCpuState = 0x11;

enum CpuConfigField : uint32_t
{
    kCfgNumRegs = 1,
    kCfgOperandWidth = 2,
    kCfgLdrrmDelaySlots = 3,
    kCfgMemWords = 4,
    kCfgRelocationMode = 5,
    kCfgRrmBanks = 6,
    kCfgTakenBranchPenalty = 7,
    kCfgLoadUsePenalty = 8,
    kCfgLdrrmPenalty = 9,
};

enum CpuStateField : uint32_t
{
    kCpuPc = 1,
    kCpuPsw = 2,
    kCpuHalted = 3,
    kCpuTrap = 4,
    kCpuCycles = 5,
    kCpuInstret = 6,
    kCpuRegs = 7,
    kCpuMem = 8,
    kCpuMasks = 9,
    kCpuContextSize = 10,
    kCpuRrmPending = 11,
    kCpuRrmPendingBank = 12,
    kCpuRrmPendingValue = 13,
    kCpuRrmPendingRemaining = 14,
    kCpuLastFaultClass = 15,
    kCpuFaultCount = 16,
    kCpuBranchStalls = 17,
    kCpuLoadUseStalls = 18,
    kCpuLdrrmStalls = 19,
    kCpuPrevWasLoad = 20,
    kCpuPrevWroteReg = 21,
    kCpuPrevDestPhys = 22,
};

} // namespace

std::string
Cpu::fingerprint() const
{
    char buf[160];
    std::snprintf(
        buf, sizeof buf,
        "machine F=%u w=%u delay=%u mem=%llu mode=%u banks=%u "
        "tb=%u lu=%u ld=%u",
        config_.numRegs, config_.operandWidth,
        config_.ldrrmDelaySlots,
        static_cast<unsigned long long>(config_.memWords),
        static_cast<unsigned>(config_.relocationMode),
        config_.rrmBanks, config_.timing.takenBranchPenalty,
        config_.timing.loadUsePenalty, config_.timing.ldrrmPenalty);
    return buf;
}

void
Cpu::saveState(ckpt::Writer &writer) const
{
    writer.beginSection(kSectionCpuConfig);
    writer.u64(kCfgNumRegs, config_.numRegs);
    writer.u64(kCfgOperandWidth, config_.operandWidth);
    writer.u64(kCfgLdrrmDelaySlots, config_.ldrrmDelaySlots);
    writer.u64(kCfgMemWords, config_.memWords);
    writer.u64(kCfgRelocationMode,
               static_cast<uint64_t>(config_.relocationMode));
    writer.u64(kCfgRrmBanks, config_.rrmBanks);
    writer.u64(kCfgTakenBranchPenalty,
               config_.timing.takenBranchPenalty);
    writer.u64(kCfgLoadUsePenalty, config_.timing.loadUsePenalty);
    writer.u64(kCfgLdrrmPenalty, config_.timing.ldrrmPenalty);
    writer.endSection();

    writer.beginSection(kSectionCpuState);
    writer.u64(kCpuPc, pc_);
    writer.u64(kCpuPsw, psw_);
    writer.u64(kCpuHalted, halted_ ? 1 : 0);
    writer.u64(kCpuTrap, static_cast<uint64_t>(trap_));
    writer.u64(kCpuCycles, cycles_);
    writer.u64(kCpuInstret, instret_);
    writer.u32vec(kCpuRegs, regs_.snapshot());
    writer.u32vec(kCpuMem,
                  std::vector<uint32_t>(mem_.data(),
                                        mem_.data() + mem_.size()));
    writer.u32vec(kCpuMasks, relocation_.masks());
    writer.u64(kCpuContextSize, relocation_.contextSize());
    writer.u64(kCpuRrmPending, rrmPending_ ? 1 : 0);
    writer.u64(kCpuRrmPendingBank, rrmPendingBank_);
    writer.u64(kCpuRrmPendingValue, rrmPendingValue_);
    writer.u64(kCpuRrmPendingRemaining, rrmPendingRemaining_);
    writer.u64(kCpuLastFaultClass, lastFaultClass_);
    writer.u64(kCpuFaultCount, faultCount_);
    writer.u64(kCpuBranchStalls, timingStats_.branchStalls);
    writer.u64(kCpuLoadUseStalls, timingStats_.loadUseStalls);
    writer.u64(kCpuLdrrmStalls, timingStats_.ldrrmStalls);
    writer.u64(kCpuPrevWasLoad, prevWasLoad_ ? 1 : 0);
    writer.u64(kCpuPrevWroteReg, prevWroteReg_ ? 1 : 0);
    writer.u64(kCpuPrevDestPhys, prevDestPhys_);
    writer.endSection();
}

void
Cpu::restoreState(const ckpt::Reader &reader)
{
    const std::vector<uint32_t> regs =
        reader.u32vec(kSectionCpuState, kCpuRegs);
    const std::vector<uint32_t> mem =
        reader.u32vec(kSectionCpuState, kCpuMem);
    const std::vector<uint32_t> masks =
        reader.u32vec(kSectionCpuState, kCpuMasks);
    if (regs.size() != regs_.size())
        throw ckpt::Error(
            "register file size mismatch: checkpoint has " +
            std::to_string(regs.size()) + ", machine has " +
            std::to_string(regs_.size()));
    if (mem.size() != mem_.size())
        throw ckpt::Error("memory size mismatch: checkpoint has " +
                          std::to_string(mem.size()) +
                          " words, machine has " +
                          std::to_string(mem_.size()));
    if (masks.size() != relocation_.numBanks())
        throw ckpt::Error("RRM bank count mismatch: checkpoint has " +
                          std::to_string(masks.size()) +
                          ", machine has " +
                          std::to_string(relocation_.numBanks()));
    const uint64_t contextSize =
        reader.u64(kSectionCpuState, kCpuContextSize);
    if (contextSize == 0 || (contextSize & (contextSize - 1)) != 0 ||
        contextSize > (1u << config_.operandWidth))
        throw ckpt::Error("invalid relocation context size " +
                          std::to_string(contextSize));
    const uint64_t trap = reader.u64(kSectionCpuState, kCpuTrap);
    if (trap > static_cast<uint64_t>(TrapKind::ContextBounds))
        throw ckpt::Error("invalid trap kind " + std::to_string(trap));

    for (unsigned i = 0; i < regs_.size(); ++i)
        regs_.write(i, regs[i]);
    // Writing through mem_ (not memData_) keeps the predecode
    // self-invalidation contract explicit: restored words that differ
    // from the current contents make any stale icache entry fail its
    // raw-word tag compare on next fetch. Entries whose word happens
    // to match remain valid, which is safe because decode is a pure
    // function of the word.
    for (size_t i = 0; i < mem_.size(); ++i)
        mem_.write(i, mem[i]);
    relocation_.restoreMasks(masks,
                             static_cast<unsigned>(contextSize));

    pc_ = static_cast<uint32_t>(reader.u64(kSectionCpuState, kCpuPc));
    psw_ =
        static_cast<uint32_t>(reader.u64(kSectionCpuState, kCpuPsw));
    halted_ = reader.u64(kSectionCpuState, kCpuHalted) != 0;
    trap_ = static_cast<TrapKind>(trap);
    cycles_ = reader.u64(kSectionCpuState, kCpuCycles);
    instret_ = reader.u64(kSectionCpuState, kCpuInstret);
    rrmPending_ = reader.u64(kSectionCpuState, kCpuRrmPending) != 0;
    rrmPendingBank_ = static_cast<unsigned>(
        reader.u64(kSectionCpuState, kCpuRrmPendingBank));
    rrmPendingValue_ = static_cast<uint32_t>(
        reader.u64(kSectionCpuState, kCpuRrmPendingValue));
    rrmPendingRemaining_ = static_cast<unsigned>(
        reader.u64(kSectionCpuState, kCpuRrmPendingRemaining));
    lastFaultClass_ = static_cast<uint32_t>(
        reader.u64(kSectionCpuState, kCpuLastFaultClass));
    faultCount_ = reader.u64(kSectionCpuState, kCpuFaultCount);
    timingStats_.branchStalls =
        reader.u64(kSectionCpuState, kCpuBranchStalls);
    timingStats_.loadUseStalls =
        reader.u64(kSectionCpuState, kCpuLoadUseStalls);
    timingStats_.ldrrmStalls =
        reader.u64(kSectionCpuState, kCpuLdrrmStalls);
    prevWasLoad_ = reader.u64(kSectionCpuState, kCpuPrevWasLoad) != 0;
    prevWroteReg_ =
        reader.u64(kSectionCpuState, kCpuPrevWroteReg) != 0;
    prevDestPhys_ = static_cast<unsigned>(
        reader.u64(kSectionCpuState, kCpuPrevDestPhys));

    // Never trust pre-restore memoization: re-fetch the relocation
    // table from the (just re-validated) unit, and rebuild superblocks
    // from scratch — they are derived state, never serialized.
    if (predecode_)
        refreshRelocTable();
    if (dispatchActive_) {
        flushBlocks();
        mem_.clearWriteLog();
        memVersionSeen_ = mem_.version();
    }
}

CpuConfig
Cpu::configFromCheckpoint(const ckpt::Reader &reader)
{
    const uint64_t mode =
        reader.u64(kSectionCpuConfig, kCfgRelocationMode);
    if (mode > static_cast<uint64_t>(RelocationMode::Add))
        throw ckpt::Error("invalid relocation mode " +
                          std::to_string(mode));
    CpuConfig config;
    config.numRegs = static_cast<unsigned>(
        reader.u64(kSectionCpuConfig, kCfgNumRegs));
    config.operandWidth = static_cast<unsigned>(
        reader.u64(kSectionCpuConfig, kCfgOperandWidth));
    config.ldrrmDelaySlots = static_cast<unsigned>(
        reader.u64(kSectionCpuConfig, kCfgLdrrmDelaySlots));
    config.memWords = static_cast<size_t>(
        reader.u64(kSectionCpuConfig, kCfgMemWords));
    config.relocationMode = static_cast<RelocationMode>(mode);
    config.rrmBanks = static_cast<unsigned>(
        reader.u64(kSectionCpuConfig, kCfgRrmBanks));
    config.timing.takenBranchPenalty = static_cast<unsigned>(
        reader.u64(kSectionCpuConfig, kCfgTakenBranchPenalty));
    config.timing.loadUsePenalty = static_cast<unsigned>(
        reader.u64(kSectionCpuConfig, kCfgLoadUsePenalty));
    config.timing.ldrrmPenalty = static_cast<unsigned>(
        reader.u64(kSectionCpuConfig, kCfgLdrrmPenalty));

    // Geometry sanity before the CpuConfig reaches a constructor
    // assertion (hostile files must fail with ckpt::Error, not abort).
    const auto pow2 = [](uint64_t v) {
        return v != 0 && (v & (v - 1)) == 0;
    };
    if (!pow2(config.numRegs) || config.operandWidth < 1 ||
        config.operandWidth > 6 ||
        (1u << config.operandWidth) > config.numRegs ||
        !pow2(config.rrmBanks) ||
        log2Ceil(config.rrmBanks) >= config.operandWidth ||
        config.memWords == 0 ||
        config.memWords > (size_t{1} << 32))
        throw ckpt::Error("checkpoint machine configuration is "
                          "invalid or hostile");
    return config;
}

} // namespace rr::machine
