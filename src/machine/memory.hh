/**
 * @file
 * A flat, word-addressed memory for the cycle-level machine. RRISC is
 * word-oriented: addresses count 32-bit words.
 */

#ifndef RR_MACHINE_MEMORY_HH
#define RR_MACHINE_MEMORY_HH

#include <cstddef>
#include <cstdint>
#include <vector>

namespace rr::machine {

/** Word-addressed RAM. */
class Memory
{
  public:
    /** Construct with @p num_words words, zero-initialized. */
    explicit Memory(size_t num_words);

    /** Number of words. */
    size_t size() const { return words_.size(); }

    /** @return true when @p addr is a valid word address. */
    bool inRange(uint64_t addr) const { return addr < words_.size(); }

    /** Read the word at @p addr; panics when out of range. */
    uint32_t read(uint64_t addr) const;

    /** Write the word at @p addr; panics when out of range. */
    void write(uint64_t addr, uint32_t value);

    /** Copy @p image into memory starting at word @p base. */
    void loadImage(uint64_t base, const std::vector<uint32_t> &image);

    /** Zero all of memory. */
    void clear();

    /**
     * Raw word storage for pre-validated fast paths (the Cpu predecode
     * core). Callers must bounds-check addresses themselves; the
     * pointer stays valid for the Memory's lifetime (the size is fixed
     * at construction). Writes through this pointer bypass the
     * mutation counter and write journal below — the Cpu fast path
     * does its own invalidation for those.
     */
    const uint32_t *data() const { return words_.data(); }
    uint32_t *data() { return words_.data(); }

    // ---- mutation tracking ----------------------------------------------
    //
    // Derived caches keyed on memory contents (the Cpu's superblock
    // cache) need to notice writes that arrive through the public
    // API — host pokes from the runtime, checkpoint restores, image
    // loads — without re-hashing memory. version() is a monotonic
    // counter bumped by every mutating call; the write journal records
    // which addresses changed since the consumer last drained it, so
    // a cache can invalidate selectively. Past kWriteLogCap entries
    // (or after a bulk loadImage/clear) the journal degrades to an
    // overflow flag meaning "anything may have changed".

    /** Journal capacity before it degrades to the overflow flag. */
    static constexpr size_t kWriteLogCap = 64;

    /** Monotonic counter bumped by write/loadImage/clear. */
    uint64_t version() const { return version_; }

    /** Addresses written since the last clearWriteLog(). */
    const std::vector<uint32_t> &writeLog() const { return writeLog_; }

    /** True when the journal overflowed (treat all words as dirty). */
    bool writeLogOverflowed() const { return writeLogOverflow_; }

    /** Drain the journal (consumer has caught up with version()). */
    void clearWriteLog();

  private:
    std::vector<uint32_t> words_;
    uint64_t version_ = 0;
    std::vector<uint32_t> writeLog_;
    bool writeLogOverflow_ = false;
};

} // namespace rr::machine

#endif // RR_MACHINE_MEMORY_HH
