/**
 * @file
 * A flat, word-addressed memory for the cycle-level machine. RRISC is
 * word-oriented: addresses count 32-bit words.
 */

#ifndef RR_MACHINE_MEMORY_HH
#define RR_MACHINE_MEMORY_HH

#include <cstddef>
#include <cstdint>
#include <vector>

namespace rr::machine {

/** Word-addressed RAM. */
class Memory
{
  public:
    /** Construct with @p num_words words, zero-initialized. */
    explicit Memory(size_t num_words);

    /** Number of words. */
    size_t size() const { return words_.size(); }

    /** @return true when @p addr is a valid word address. */
    bool inRange(uint64_t addr) const { return addr < words_.size(); }

    /** Read the word at @p addr; panics when out of range. */
    uint32_t read(uint64_t addr) const;

    /** Write the word at @p addr; panics when out of range. */
    void write(uint64_t addr, uint32_t value);

    /** Copy @p image into memory starting at word @p base. */
    void loadImage(uint64_t base, const std::vector<uint32_t> &image);

    /** Zero all of memory. */
    void clear();

    /**
     * Raw word storage for pre-validated fast paths (the Cpu predecode
     * core). Callers must bounds-check addresses themselves; the
     * pointer stays valid for the Memory's lifetime (the size is fixed
     * at construction).
     */
    const uint32_t *data() const { return words_.data(); }
    uint32_t *data() { return words_.data(); }

  private:
    std::vector<uint32_t> words_;
};

} // namespace rr::machine

#endif // RR_MACHINE_MEMORY_HH
