/**
 * @file
 * Token-threaded superblock dispatch for the RRISC interpreter.
 *
 * Cpu::run in Threaded/Fused mode executes cached *superblocks*: runs
 * of predecoded instructions keyed by entry PC, decoded once from the
 * per-word predecode cache and then executed descriptor-to-descriptor
 * with computed-goto dispatch (a portable switch fallback covers
 * non-GNU compilers). A straight-line run pays one validity check per
 * block instead of a raw-word tag compare, a decode-hook check, and a
 * relocation-epoch check per instruction.
 *
 * Invalidation mirrors the predecode cache's contract exactly:
 *
 *  - simulated stores check the per-word cover map and mark the cache
 *    stale when they hit a word any block decoded (self-modifying
 *    code), ending the current block before a stale descriptor could
 *    execute;
 *  - host writes through Memory's public API are caught by the memory
 *    version counter / bounded write journal at block boundaries; a
 *    journal hit demotes blocks to "unverified" rather than dropping
 *    them — each block re-proves itself at its next entry by comparing
 *    the covered words against its build-time snapshot, so reloading
 *    an identical image (the common bench/runtime reset) keeps the
 *    whole cache warm;
 *  - checkpoint restore flushes everything — superblocks are derived
 *    state and never serialized (docs/CKPT.md).
 *
 * Fused descriptors (Fused mode) pack the dominant macro-op pairs —
 * ALU-immediate + compare-branch, load + use, and back-to-back ALU
 * adds (mov is an ADDI alias) — into one token.
 * Each constituent still retires individually: per-constituent budget
 * checks, delay-slot advance, trace callbacks, and pipeline_timing
 * charges, so traces, stats, and checkpoints stay byte-identical to
 * the per-instruction paths.
 */

#include "machine/cpu.hh"

#include <algorithm>

#include "base/bitops.hh"
#include "base/logging.hh"

// Computed goto is a GNU extension; the switch fallback shares every
// handler body via the RR_CASE/RR_DISPATCH macros below.
#if defined(__GNUC__) || defined(__clang__)
#define RR_COMPUTED_GOTO 1
#else
#define RR_COMPUTED_GOTO 0
#endif

namespace rr::machine {

using isa::Instruction;
using isa::Opcode;

namespace {

/**
 * Dispatch tokens. The first isa::numOpcodes values mirror the Opcode
 * enum so plain instructions translate with a cast; fused pair tokens
 * and the end-of-block sentinel follow.
 */
#define RR_TOKENS(X) \
    X(NOP) X(HALT) \
    X(ADD) X(SUB) X(AND) X(OR) X(XOR) X(SLL) X(SRL) X(SRA) \
    X(SLT) X(SLTU) \
    X(ADDI) X(ANDI) X(ORI) X(XORI) X(SLTI) X(SLLI) X(SRLI) X(SRAI) \
    X(LUI) \
    X(LD) X(ST) \
    X(BEQ) X(BNE) X(BLT) X(BGE) \
    X(JAL) X(JALR) X(JMP) \
    X(LDRRM) X(RDRRM) X(LDRRMX) \
    X(MFPSW) X(MTPSW) \
    X(FF1) \
    X(FAULT) \
    X(FUSED_ADDI_BEQ) X(FUSED_ADDI_BNE) \
    X(FUSED_ADDI_BLT) X(FUSED_ADDI_BGE) \
    X(FUSED_LD_ADDI) X(FUSED_LD_ADD) \
    X(FUSED_ADDI_ADDI) X(FUSED_ADD_ADDI) X(FUSED_LUI_ORI) \
    X(END)

enum Token : uint16_t
{
#define X(n) tok_##n,
    RR_TOKENS(X)
#undef X
    tok_Count
};

// Pin the opcode-token mirror; a new Opcode inserted mid-enum breaks
// these rather than silently dispatching the wrong handler.
static_assert(tok_NOP == static_cast<uint16_t>(Opcode::NOP));
static_assert(tok_LD == static_cast<uint16_t>(Opcode::LD));
static_assert(tok_BGE == static_cast<uint16_t>(Opcode::BGE));
static_assert(tok_FAULT == static_cast<uint16_t>(Opcode::FAULT));
static_assert(tok_FUSED_ADDI_BEQ == isa::numOpcodes);

} // namespace

const Cpu::SuperBlock *
Cpu::buildBlock(uint32_t entry)
{
    if (blocks_.size() >= kMaxSuperblocks)
        flushBlocks();

    // Decode through the predecode cache so entries stay warm for
    // step() interleavings and re-decode costs are shared.
    auto decodeCached = [&](uint32_t pc, Instruction &out) -> bool {
        const uint32_t word = memData_[pc];
        ICacheEntry &slot = icache_[pc];
        if (slot.valid && slot.word == word) {
            out = slot.inst;
            return true;
        }
        if (!isa::decode(word, out))
            return false;
        slot.word = word;
        slot.inst = out;
        slot.valid = true;
        return true;
    };

    const bool fuse = config_.dispatch == DispatchMode::Fused;
    const uint32_t limit = static_cast<uint32_t>(std::min<uint64_t>(
        memWords_, uint64_t{entry} + kMaxBlockWords));

    SuperBlock blk;
    blk.entry = entry;
    blk.ops.reserve(16);

    uint32_t pc = entry;
    while (pc < limit) {
        Instruction inst;
        if (!decodeCached(pc, inst))
            break; // undecodable: the block ends just before it

        MicroOp op;
        op.pc = pc;
        op.a = inst;
        op.token = static_cast<uint16_t>(inst.op);

        // Unconditional control transfers and stops end the block.
        // Conditional branches do not: the not-taken path continues
        // in-block (that is what makes these superblocks).
        const bool terminal =
            inst.op == Opcode::JAL || inst.op == Opcode::JALR ||
            inst.op == Opcode::JMP || inst.op == Opcode::HALT ||
            inst.op == Opcode::FAULT;

        if (fuse && !terminal && pc + 1 < limit) {
            Instruction nxt;
            if (decodeCached(pc + 1, nxt)) {
                uint16_t ftok = 0;
                if (inst.op == Opcode::ADDI) {
                    switch (nxt.op) {
                      case Opcode::BEQ:
                        ftok = tok_FUSED_ADDI_BEQ;
                        break;
                      case Opcode::BNE:
                        ftok = tok_FUSED_ADDI_BNE;
                        break;
                      case Opcode::BLT:
                        ftok = tok_FUSED_ADDI_BLT;
                        break;
                      case Opcode::BGE:
                        ftok = tok_FUSED_ADDI_BGE;
                        break;
                      case Opcode::ADDI:
                        // mov is an ADDI alias, so ALU-move runs are
                        // everywhere in relocation-convention code.
                        ftok = tok_FUSED_ADDI_ADDI;
                        break;
                      default:
                        break;
                    }
                } else if (inst.op == Opcode::ADD) {
                    if (nxt.op == Opcode::ADDI)
                        ftok = tok_FUSED_ADD_ADDI;
                } else if (inst.op == Opcode::LUI) {
                    // li/la assemble to LUI + ORI; constants load in
                    // one dispatch.
                    if (nxt.op == Opcode::ORI)
                        ftok = tok_FUSED_LUI_ORI;
                } else if (inst.op == Opcode::LD) {
                    if (nxt.op == Opcode::ADDI &&
                        nxt.rs1 == inst.rd) {
                        ftok = tok_FUSED_LD_ADDI;
                    } else if (nxt.op == Opcode::ADD &&
                               (nxt.rs1 == inst.rd ||
                                nxt.rs2 == inst.rd)) {
                        ftok = tok_FUSED_LD_ADD;
                    }
                }
                // An ALU pair ending in ADDI yields to a better
                // fusion: when the instruction after the pair is a
                // conditional branch, leave the ADDI free so it can
                // fuse with the branch on the next iteration (the
                // compare-branch pair saves a block exit, which is
                // worth more than an ALU dispatch).
                if ((ftok == tok_FUSED_ADDI_ADDI ||
                     ftok == tok_FUSED_ADD_ADDI) &&
                    pc + 2 < limit) {
                    Instruction after;
                    if (decodeCached(pc + 2, after) &&
                        (after.op == Opcode::BEQ ||
                         after.op == Opcode::BNE ||
                         after.op == Opcode::BLT ||
                         after.op == Opcode::BGE)) {
                        ftok = 0;
                    }
                }
                if (ftok != 0) {
                    op.token = ftok;
                    op.b = nxt;
                    blk.ops.push_back(op);
                    pc += 2;
                    continue;
                }
            }
        }

        blk.ops.push_back(op);
        ++pc;
        if (terminal)
            break;
    }

    if (blk.ops.empty())
        return nullptr; // entry word undecodable

    // End-of-block sentinel: execution resumes at the fallthrough pc
    // (which may be out of range — the outer loop raises the trap).
    MicroOp end;
    end.token = tok_END;
    end.pc = pc;
    blk.ops.push_back(end);
    blk.words = pc - entry;
    blk.seenEpoch = codeEpoch_;
    blk.raw.assign(memData_ + entry, memData_ + pc);

    const auto idx = static_cast<int32_t>(blocks_.size());
    for (uint32_t w = entry; w < entry + blk.words; ++w)
        ++blockCover_[w];
    blockIndex_[entry] = idx;
    blocks_.push_back(std::move(blk));
    ++sbBuilt_;
    return &blocks_.back();
}

void
Cpu::flushBlocks()
{
    if (!blocks_.empty()) {
        for (const SuperBlock &blk : blocks_) {
            blockIndex_[blk.entry] = -1;
            for (uint32_t w = blk.entry; w < blk.entry + blk.words;
                 ++w)
                --blockCover_[w];
        }
        blocks_.clear();
        ++sbFlushes_;
    }
    blocksStale_ = false;
}

void
Cpu::syncHostWrites()
{
    if (memVersionSeen_ == mem_.version())
        return;
    // Something wrote memory through the public API since the last
    // block boundary (runtime pokes, context loads). When a journaled
    // address is covered by a block — or the journal overflowed, which
    // means "anything may have changed" — advance the code epoch: that
    // demotes every block to unverified, and each one re-proves itself
    // at its next entry by comparing the covered words against its
    // build-time snapshot (runBlocks). Reloading an identical image
    // therefore costs one word-compare pass per re-entered block, not
    // a rebuild of the whole cache.
    bool hit = mem_.writeLogOverflowed();
    if (!hit) {
        for (const uint32_t addr : mem_.writeLog()) {
            if (addr < blockCover_.size() &&
                blockCover_[addr] != 0) {
                hit = true;
                break;
            }
        }
    }
    if (hit)
        ++codeEpoch_;
    mem_.clearWriteLog();
    memVersionSeen_ = mem_.version();
}

uint64_t
Cpu::runBlocks(uint64_t max_steps)
{
    uint64_t executed = 0;
    while (executed < max_steps) {
        if (halted_ || trap_ != TrapKind::None)
            break;
        syncHostWrites();
        if (blocksStale_)
            flushBlocks();
        if (pc_ >= memWords_) {
            // Match the per-step path exactly: the fetch attempt
            // advances the LDRRM delay-slot machine even when it
            // traps.
            advancePendingRrm();
            trap_ = TrapKind::MemOutOfRange;
            break;
        }
        if (relocEpoch_ != relocation_.epoch())
            refreshRelocTable();

        const SuperBlock *blk = nullptr;
        const int32_t idx = blockIndex_[pc_];
        if (idx >= 0) {
            SuperBlock &cand = blocks_[static_cast<size_t>(idx)];
            if (cand.seenEpoch == codeEpoch_) {
                blk = &cand;
            } else if (std::equal(cand.raw.begin(), cand.raw.end(),
                                  memData_ + cand.entry)) {
                // Host writes happened but this block's code did not
                // change (e.g. the same image was reloaded): keep it.
                cand.seenEpoch = codeEpoch_;
                ++sbReverified_;
                blk = &cand;
            } else {
                // The covered words really did change; every block is
                // suspect, so start the cache over.
                flushBlocks();
            }
        }
        if (blk == nullptr) {
            blk = buildBlock(pc_);
            if (blk == nullptr) {
                // Undecodable entry word: take one per-instruction
                // step so the InvalidOpcode trap is raised with
                // identical semantics (no trace event, no retire).
                const uint64_t before = instret_;
                stepFast();
                executed += instret_ - before;
                continue;
            }
        }

        const uint64_t budget = max_steps - executed;
        executed += (traceHook_ || timingEnabled_)
                        ? execBlock<true>(*blk, budget)
                        : execBlock<false>(*blk, budget);
    }
    return executed;
}

// ---------------------------------------------------------------------
// The token-threaded executor.
//
// Retirement contract (identical to stepFast): per instruction —
// budget check, delay-slot advance, trace hook (careful), execute,
// ++cycles_/++instret_, applyTiming (careful). Fast mode accumulates
// the counters in a register and flushes them at every exit (and
// before the fault hook, which may observe cycles() or call stall()).

// Flush fast-mode counter accumulation into the architectural
// counters. No-op in careful mode, which maintains them per op.
#define RR_FLUSH()                                                     \
    do {                                                               \
        if constexpr (!Careful) {                                      \
            cycles_ += done;                                           \
            instret_ += done;                                          \
        }                                                              \
    } while (0)

#define RR_EXIT()                                                      \
    do {                                                               \
        RR_FLUSH();                                                    \
        return done;                                                   \
    } while (0)

// Per-constituent prologue: budget, trap bookkeeping, LDRRM delay
// slots, and (careful mode) the trace hook + hazard-window reset.
#define RR_PROLOG(inst_, pcOf_)                                        \
    if (done >= budget) [[unlikely]] {                                 \
        pc_ = (pcOf_);                                                 \
        RR_EXIT();                                                     \
    }                                                                  \
    trapPc = (pcOf_);                                                  \
    if (rrmPending_) [[unlikely]] {                                    \
        advancePendingRrm();                                           \
        if (!rrmPending_) {                                            \
            refreshRelocTable();                                       \
            reloc = relocTable_;                                       \
        }                                                              \
    }                                                                  \
    if constexpr (Careful) {                                           \
        if (traceHook_) {                                              \
            traceHook_(TraceEntry{cycles_, (pcOf_), (inst_),           \
                                  relocation_.mask(0),                 \
                                  isa::disassemble((inst_))});         \
        }                                                              \
        if (timingEnabled_) {                                          \
            stepReadCount_ = 0;                                        \
            stepWrote_ = false;                                        \
        }                                                              \
    }

// Retire a constituent that falls through inside the block.
#define RR_RETIRE_STEP(inst_, pcOf_)                                   \
    do {                                                               \
        if constexpr (Careful) {                                       \
            pc_ = (pcOf_) + 1;                                         \
            ++cycles_;                                                 \
            ++instret_;                                                \
            ++done;                                                    \
            if (timingEnabled_)                                        \
                applyTiming((inst_), (pcOf_));                         \
        } else {                                                       \
            ++done;                                                    \
        }                                                              \
    } while (0)

// Block chaining (fast mode only): when a control transfer lands on
// the entry of an already-built, verified superblock, jump straight to
// its descriptors instead of returning to the outer loop. The outer
// loop's duties are all discharged or impossible here: no hook can
// have run (fast mode has none, FAULT exits), so no host write can
// have arrived since the last sync; a simulated store to cached code
// sets blocksStale_ and exits its block immediately, so the flag check
// suffices; LDRRM delay slots and bank switches refresh the relocation
// table inline; and the per-constituent budget check in RR_PROLOG
// still bounds the chained run. Careful mode never chains — the trace
// hook may legitimately write memory between instructions, and the
// outer loop must observe that.
#define RR_CHAIN(chainPc_)                                             \
    do {                                                               \
        if constexpr (!Careful) {                                      \
            if ((chainPc_) < memSz && !blocksStale_) {                 \
                const int32_t ci_ = blockIdx[(chainPc_)];              \
                if (ci_ >= 0) {                                        \
                    const SuperBlock &nb_ =                            \
                        blocksArr[static_cast<size_t>(ci_)];           \
                    if (nb_.seenEpoch == codeEp) {                     \
                        op = nb_.ops.data();                           \
                        RR_DISPATCH();                                 \
                    }                                                  \
                }                                                      \
            }                                                          \
        }                                                              \
    } while (0)

// Retire a control transfer and leave the block (or chain into the
// target block in fast mode). target_ must be side-effect free.
#define RR_RETIRE_EXIT(target_, inst_, pcOf_)                          \
    do {                                                               \
        if constexpr (Careful) {                                       \
            pc_ = (target_);                                           \
            ++cycles_;                                                 \
            ++instret_;                                                \
            ++done;                                                    \
            if (timingEnabled_)                                        \
                applyTiming((inst_), (pcOf_));                         \
        } else {                                                       \
            const uint32_t tgt_ = (target_);                           \
            ++done;                                                    \
            RR_CHAIN(tgt_);                                            \
            pc_ = tgt_;                                                \
        }                                                              \
        RR_EXIT();                                                     \
    } while (0)

// Retire an instruction that stops the machine (HALT) or whose block
// must end here (a store into cached code). Never chains.
#define RR_RETIRE_STOP(target_, inst_, pcOf_)                          \
    do {                                                               \
        pc_ = (target_);                                               \
        if constexpr (Careful) {                                       \
            ++cycles_;                                                 \
            ++instret_;                                                \
            ++done;                                                    \
            if (timingEnabled_)                                        \
                applyTiming((inst_), (pcOf_));                         \
        } else {                                                       \
            ++done;                                                    \
        }                                                              \
        RR_EXIT();                                                     \
    } while (0)

#if RR_COMPUTED_GOTO
#define RR_CASE(label) L_##label:
#define RR_DISPATCH() goto *kLabels[op->token]
#else
#define RR_CASE(label) case tok_##label:
#define RR_DISPATCH() goto dispatch
#endif

// Straight-line single-instruction epilogue.
#define RR_NEXT()                                                      \
    do {                                                               \
        RR_RETIRE_STEP(op->a, op->pc);                                 \
        ++op;                                                          \
        RR_DISPATCH();                                                 \
    } while (0)

// Conditional branch: fall through in-block when not taken.
#define RR_BRANCH_HANDLER(name, takenExpr)                             \
    RR_CASE(name)                                                      \
    {                                                                  \
        RR_PROLOG(op->a, op->pc);                                      \
        const uint32_t lhs = rdop(op->a.rs1);                          \
        const uint32_t rhs = rdop(op->a.rs2);                          \
        if (takenExpr) {                                               \
            RR_RETIRE_EXIT(op->pc +                                    \
                               static_cast<uint32_t>(op->a.imm),       \
                           op->a, op->pc);                             \
        }                                                              \
        RR_NEXT();                                                     \
    }

// Fused ALU-immediate + compare-branch. Constituents retire
// individually; the pair splits cleanly when the budget runs out or
// the second constituent traps.
#define RR_FUSED_ADDI_BR(name, takenExpr)                              \
    RR_CASE(name)                                                      \
    {                                                                  \
        RR_PROLOG(op->a, op->pc);                                      \
        wrop(op->a.rd,                                                 \
             rdop(op->a.rs1) + static_cast<uint32_t>(op->a.imm));      \
        RR_RETIRE_STEP(op->a, op->pc);                                 \
        RR_PROLOG(op->b, op->pc + 1);                                  \
        const uint32_t lhs = rdop(op->b.rs1);                          \
        const uint32_t rhs = rdop(op->b.rs2);                          \
        if (takenExpr) {                                               \
            RR_RETIRE_EXIT(op->pc + 1 +                                \
                               static_cast<uint32_t>(op->b.imm),       \
                           op->b, op->pc + 1);                         \
        }                                                              \
        RR_RETIRE_STEP(op->b, op->pc + 1);                             \
        ++op;                                                          \
        RR_DISPATCH();                                                 \
    }

template <bool Careful>
uint64_t
Cpu::execBlock(const SuperBlock &blk, uint64_t budget)
{
    const MicroOp *op = blk.ops.data();
    uint64_t done = 0;
    uint32_t trapPc = op->pc;

    // Hot members hoisted into locals: register writes go through
    // uint32_t pointers, which under type-based aliasing could clobber
    // any integral member, so the compiler would otherwise reload
    // these on every operand access. None of them changes inside a
    // block except the relocation table, which the LDRRM retirement
    // paths refresh explicitly.
    const RelocationResult *reloc = relocTable_;
    const unsigned relocSz = relocTableSize_;
    uint32_t *const regs = regsData_;
    uint32_t *const mem = memData_;
    const uint64_t memSz = memWords_;
    const int32_t *const blockIdx = blockIndex_.data();
    const SuperBlock *const blocksArr = blocks_.data();
    const uint64_t codeEp = codeEpoch_;
    const uint16_t *const cover = blockCover_.data();

    auto rdop = [&](unsigned operand) -> uint32_t {
        if (operand >= relocSz) [[unlikely]]
            throwTrap(TrapKind::OperandTooWide);
        const RelocationResult &r = reloc[operand];
        if (!r.ok) [[unlikely]]
            throwTrap(TrapKind::ContextBounds);
        if constexpr (Careful) {
            if (timingEnabled_)
                recordOperandRead(r.physical);
        }
        return regs[r.physical];
    };
    auto wrop = [&](unsigned operand, uint32_t value) {
        if (operand >= relocSz) [[unlikely]]
            throwTrap(TrapKind::OperandTooWide);
        const RelocationResult &r = reloc[operand];
        if (!r.ok) [[unlikely]]
            throwTrap(TrapKind::ContextBounds);
        regs[r.physical] = value;
        if constexpr (Careful) {
            if (timingEnabled_) {
                stepWrote_ = true;
                stepWrotePhys_ = r.physical;
            }
        }
    };

    try {
#if RR_COMPUTED_GOTO
        static const void *const kLabels[] = {
#define X(n) &&L_##n,
            RR_TOKENS(X)
#undef X
        };
        static_assert(sizeof(kLabels) / sizeof(kLabels[0]) ==
                      tok_Count);
        RR_DISPATCH();
#else
    dispatch:
        switch (op->token) {
#endif

        RR_CASE(NOP)
        {
            RR_PROLOG(op->a, op->pc);
            RR_NEXT();
        }

        RR_CASE(HALT)
        {
            RR_PROLOG(op->a, op->pc);
            halted_ = true;
            RR_RETIRE_STOP(op->pc + 1, op->a, op->pc);
        }

        RR_CASE(ADD)
        {
            RR_PROLOG(op->a, op->pc);
            wrop(op->a.rd, rdop(op->a.rs1) + rdop(op->a.rs2));
            RR_NEXT();
        }
        RR_CASE(SUB)
        {
            RR_PROLOG(op->a, op->pc);
            wrop(op->a.rd, rdop(op->a.rs1) - rdop(op->a.rs2));
            RR_NEXT();
        }
        RR_CASE(AND)
        {
            RR_PROLOG(op->a, op->pc);
            wrop(op->a.rd, rdop(op->a.rs1) & rdop(op->a.rs2));
            RR_NEXT();
        }
        RR_CASE(OR)
        {
            RR_PROLOG(op->a, op->pc);
            wrop(op->a.rd, rdop(op->a.rs1) | rdop(op->a.rs2));
            RR_NEXT();
        }
        RR_CASE(XOR)
        {
            RR_PROLOG(op->a, op->pc);
            wrop(op->a.rd, rdop(op->a.rs1) ^ rdop(op->a.rs2));
            RR_NEXT();
        }
        RR_CASE(SLL)
        {
            RR_PROLOG(op->a, op->pc);
            wrop(op->a.rd, rdop(op->a.rs1)
                               << (rdop(op->a.rs2) & 31));
            RR_NEXT();
        }
        RR_CASE(SRL)
        {
            RR_PROLOG(op->a, op->pc);
            wrop(op->a.rd,
                 rdop(op->a.rs1) >> (rdop(op->a.rs2) & 31));
            RR_NEXT();
        }
        RR_CASE(SRA)
        {
            RR_PROLOG(op->a, op->pc);
            wrop(op->a.rd,
                 static_cast<uint32_t>(
                     static_cast<int32_t>(rdop(op->a.rs1)) >>
                     (rdop(op->a.rs2) & 31)));
            RR_NEXT();
        }
        RR_CASE(SLT)
        {
            RR_PROLOG(op->a, op->pc);
            wrop(op->a.rd,
                 static_cast<int32_t>(rdop(op->a.rs1)) <
                         static_cast<int32_t>(rdop(op->a.rs2))
                     ? 1
                     : 0);
            RR_NEXT();
        }
        RR_CASE(SLTU)
        {
            RR_PROLOG(op->a, op->pc);
            wrop(op->a.rd,
                 rdop(op->a.rs1) < rdop(op->a.rs2) ? 1 : 0);
            RR_NEXT();
        }

        RR_CASE(ADDI)
        {
            RR_PROLOG(op->a, op->pc);
            wrop(op->a.rd,
                 rdop(op->a.rs1) + static_cast<uint32_t>(op->a.imm));
            RR_NEXT();
        }
        RR_CASE(ANDI)
        {
            RR_PROLOG(op->a, op->pc);
            wrop(op->a.rd,
                 rdop(op->a.rs1) & static_cast<uint32_t>(op->a.imm));
            RR_NEXT();
        }
        RR_CASE(ORI)
        {
            RR_PROLOG(op->a, op->pc);
            wrop(op->a.rd,
                 rdop(op->a.rs1) | static_cast<uint32_t>(op->a.imm));
            RR_NEXT();
        }
        RR_CASE(XORI)
        {
            RR_PROLOG(op->a, op->pc);
            wrop(op->a.rd,
                 rdop(op->a.rs1) ^ static_cast<uint32_t>(op->a.imm));
            RR_NEXT();
        }
        RR_CASE(SLTI)
        {
            RR_PROLOG(op->a, op->pc);
            wrop(op->a.rd,
                 static_cast<int32_t>(rdop(op->a.rs1)) < op->a.imm
                     ? 1
                     : 0);
            RR_NEXT();
        }
        RR_CASE(SLLI)
        {
            RR_PROLOG(op->a, op->pc);
            wrop(op->a.rd,
                 rdop(op->a.rs1)
                     << (static_cast<uint32_t>(op->a.imm) & 31));
            RR_NEXT();
        }
        RR_CASE(SRLI)
        {
            RR_PROLOG(op->a, op->pc);
            wrop(op->a.rd,
                 rdop(op->a.rs1) >>
                     (static_cast<uint32_t>(op->a.imm) & 31));
            RR_NEXT();
        }
        RR_CASE(SRAI)
        {
            RR_PROLOG(op->a, op->pc);
            wrop(op->a.rd,
                 static_cast<uint32_t>(
                     static_cast<int32_t>(rdop(op->a.rs1)) >>
                     (static_cast<uint32_t>(op->a.imm) & 31)));
            RR_NEXT();
        }

        RR_CASE(LUI)
        {
            RR_PROLOG(op->a, op->pc);
            wrop(op->a.rd, static_cast<uint32_t>(op->a.imm) << 12);
            RR_NEXT();
        }

        RR_CASE(LD)
        {
            RR_PROLOG(op->a, op->pc);
            const uint64_t addr =
                rdop(op->a.rs1) + static_cast<uint32_t>(op->a.imm);
            if (addr >= memSz) [[unlikely]]
                throwTrap(TrapKind::MemOutOfRange);
            wrop(op->a.rd, mem[addr]);
            RR_NEXT();
        }
        RR_CASE(ST)
        {
            RR_PROLOG(op->a, op->pc);
            const uint64_t addr =
                rdop(op->a.rs1) + static_cast<uint32_t>(op->a.imm);
            const uint32_t value = rdop(op->a.rd);
            if (addr >= memSz) [[unlikely]]
                throwTrap(TrapKind::MemOutOfRange);
            mem[addr] = value;
            icache_[addr].valid = false;
            if (cover[addr] != 0) [[unlikely]] {
                // The store clobbered cached code — possibly a later
                // descriptor of this very block. Mark the cache stale
                // and end the block before anything stale can run.
                blocksStale_ = true;
                RR_RETIRE_STOP(op->pc + 1, op->a, op->pc);
            }
            RR_NEXT();
        }

        RR_BRANCH_HANDLER(BEQ, lhs == rhs)
        RR_BRANCH_HANDLER(BNE, lhs != rhs)
        RR_BRANCH_HANDLER(BLT, static_cast<int32_t>(lhs) <
                                   static_cast<int32_t>(rhs))
        RR_BRANCH_HANDLER(BGE, static_cast<int32_t>(lhs) >=
                                   static_cast<int32_t>(rhs))

        RR_CASE(JAL)
        {
            RR_PROLOG(op->a, op->pc);
            wrop(op->a.rd, op->pc + 1);
            RR_RETIRE_EXIT(op->pc + static_cast<uint32_t>(op->a.imm),
                           op->a, op->pc);
        }
        RR_CASE(JALR)
        {
            RR_PROLOG(op->a, op->pc);
            const uint32_t target =
                rdop(op->a.rs1) + static_cast<uint32_t>(op->a.imm);
            wrop(op->a.rd, op->pc + 1);
            RR_RETIRE_EXIT(target, op->a, op->pc);
        }
        RR_CASE(JMP)
        {
            RR_PROLOG(op->a, op->pc);
            const uint32_t target = rdop(op->a.rs1);
            RR_RETIRE_EXIT(target, op->a, op->pc);
        }

        RR_CASE(LDRRM)
        {
            RR_PROLOG(op->a, op->pc);
            rrmPendingValue_ = rdop(op->a.rs1);
            rrmPendingBank_ = 0;
            rrmPendingRemaining_ = config_.ldrrmDelaySlots + 1;
            rrmPending_ = true;
            RR_NEXT();
        }
        RR_CASE(RDRRM)
        {
            RR_PROLOG(op->a, op->pc);
            wrop(op->a.rd, relocation_.mask(0));
            RR_NEXT();
        }
        RR_CASE(LDRRMX)
        {
            RR_PROLOG(op->a, op->pc);
            const auto bank = static_cast<unsigned>(op->a.imm);
            if (bank >= relocation_.numBanks())
                throwTrap(TrapKind::InvalidOpcode);
            const uint32_t value = rdop(op->a.rs1);
            if (bank == 0) {
                rrmPendingValue_ = value;
                rrmPendingBank_ = 0;
                rrmPendingRemaining_ = config_.ldrrmDelaySlots + 1;
                rrmPending_ = true;
            } else {
                relocTable_ = relocation_.installMask(value, bank);
                relocEpoch_ = relocation_.epoch();
                reloc = relocTable_;
            }
            RR_NEXT();
        }

        RR_CASE(MFPSW)
        {
            RR_PROLOG(op->a, op->pc);
            wrop(op->a.rd, psw_);
            RR_NEXT();
        }
        RR_CASE(MTPSW)
        {
            RR_PROLOG(op->a, op->pc);
            psw_ = rdop(op->a.rs1);
            RR_NEXT();
        }

        RR_CASE(FF1)
        {
            RR_PROLOG(op->a, op->pc);
            const int bit = findFirstSet(rdop(op->a.rs1));
            wrop(op->a.rd, static_cast<uint32_t>(bit));
            RR_NEXT();
        }

        RR_CASE(FAULT)
        {
            RR_PROLOG(op->a, op->pc);
            RR_FLUSH();
            // Copy what the epilogue needs before the hook runs: the
            // hook may redirect the pc, charge stalls, or write
            // memory (which can mark this very block stale).
            const Instruction finst = op->a;
            const uint32_t fpc = op->pc;
            lastFaultClass_ = static_cast<uint32_t>(finst.imm);
            ++faultCount_;
            pc_ = fpc + 1;
            if (faultHook_)
                faultHook_(*this, lastFaultClass_);
            ++cycles_;
            ++instret_;
            ++done;
            if constexpr (Careful) {
                if (timingEnabled_)
                    applyTiming(finst, fpc);
            }
            return done;
        }

        RR_FUSED_ADDI_BR(FUSED_ADDI_BEQ, lhs == rhs)
        RR_FUSED_ADDI_BR(FUSED_ADDI_BNE, lhs != rhs)
        RR_FUSED_ADDI_BR(FUSED_ADDI_BLT, static_cast<int32_t>(lhs) <
                                             static_cast<int32_t>(rhs))
        RR_FUSED_ADDI_BR(FUSED_ADDI_BGE, static_cast<int32_t>(lhs) >=
                                             static_cast<int32_t>(rhs))

        RR_CASE(FUSED_LD_ADDI)
        {
            RR_PROLOG(op->a, op->pc);
            const uint64_t addr =
                rdop(op->a.rs1) + static_cast<uint32_t>(op->a.imm);
            if (addr >= memSz) [[unlikely]]
                throwTrap(TrapKind::MemOutOfRange);
            wrop(op->a.rd, mem[addr]);
            RR_RETIRE_STEP(op->a, op->pc);
            RR_PROLOG(op->b, op->pc + 1);
            wrop(op->b.rd,
                 rdop(op->b.rs1) + static_cast<uint32_t>(op->b.imm));
            RR_RETIRE_STEP(op->b, op->pc + 1);
            ++op;
            RR_DISPATCH();
        }
        RR_CASE(FUSED_LD_ADD)
        {
            RR_PROLOG(op->a, op->pc);
            const uint64_t addr =
                rdop(op->a.rs1) + static_cast<uint32_t>(op->a.imm);
            if (addr >= memSz) [[unlikely]]
                throwTrap(TrapKind::MemOutOfRange);
            wrop(op->a.rd, mem[addr]);
            RR_RETIRE_STEP(op->a, op->pc);
            RR_PROLOG(op->b, op->pc + 1);
            wrop(op->b.rd, rdop(op->b.rs1) + rdop(op->b.rs2));
            RR_RETIRE_STEP(op->b, op->pc + 1);
            ++op;
            RR_DISPATCH();
        }

        RR_CASE(FUSED_ADDI_ADDI)
        {
            RR_PROLOG(op->a, op->pc);
            wrop(op->a.rd,
                 rdop(op->a.rs1) + static_cast<uint32_t>(op->a.imm));
            RR_RETIRE_STEP(op->a, op->pc);
            RR_PROLOG(op->b, op->pc + 1);
            wrop(op->b.rd,
                 rdop(op->b.rs1) + static_cast<uint32_t>(op->b.imm));
            RR_RETIRE_STEP(op->b, op->pc + 1);
            ++op;
            RR_DISPATCH();
        }
        RR_CASE(FUSED_ADD_ADDI)
        {
            RR_PROLOG(op->a, op->pc);
            wrop(op->a.rd, rdop(op->a.rs1) + rdop(op->a.rs2));
            RR_RETIRE_STEP(op->a, op->pc);
            RR_PROLOG(op->b, op->pc + 1);
            wrop(op->b.rd,
                 rdop(op->b.rs1) + static_cast<uint32_t>(op->b.imm));
            RR_RETIRE_STEP(op->b, op->pc + 1);
            ++op;
            RR_DISPATCH();
        }
        RR_CASE(FUSED_LUI_ORI)
        {
            RR_PROLOG(op->a, op->pc);
            wrop(op->a.rd, static_cast<uint32_t>(op->a.imm) << 12);
            RR_RETIRE_STEP(op->a, op->pc);
            RR_PROLOG(op->b, op->pc + 1);
            wrop(op->b.rd,
                 rdop(op->b.rs1) | static_cast<uint32_t>(op->b.imm));
            RR_RETIRE_STEP(op->b, op->pc + 1);
            ++op;
            RR_DISPATCH();
        }

        RR_CASE(END)
        {
            // Fallthrough off the end of the block: chain into the
            // next block when one is already cached, else resume at
            // the fallthrough pc (no instruction retires here).
            RR_CHAIN(op->pc);
            pc_ = op->pc;
            RR_EXIT();
        }

#if !RR_COMPUTED_GOTO
          default:
            rr_assert(false, "invalid dispatch token ", op->token);
        }
        rr_assert(false, "unreachable");
        return done;
#endif
    } catch (const TrapSignal &signal) {
        RR_FLUSH();
        trap_ = signal.kind;
        pc_ = trapPc;
        return done;
    }
}

#undef RR_FLUSH
#undef RR_EXIT
#undef RR_PROLOG
#undef RR_RETIRE_STEP
#undef RR_CHAIN
#undef RR_RETIRE_EXIT
#undef RR_RETIRE_STOP
#undef RR_CASE
#undef RR_DISPATCH
#undef RR_NEXT
#undef RR_BRANCH_HANDLER
#undef RR_FUSED_ADDI_BR
#undef RR_TOKENS

template uint64_t Cpu::execBlock<false>(const SuperBlock &, uint64_t);
template uint64_t Cpu::execBlock<true>(const SuperBlock &, uint64_t);

} // namespace rr::machine
