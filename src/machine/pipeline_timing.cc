#include "machine/pipeline_timing.hh"

namespace rr::machine {

PipelineTimingConfig
PipelineTimingConfig::classicFiveStage()
{
    PipelineTimingConfig config;
    config.takenBranchPenalty = 2;
    config.loadUsePenalty = 1;
    config.ldrrmPenalty = 0; // the delay slot absorbs it
    return config;
}

} // namespace rr::machine
