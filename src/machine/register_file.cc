#include "machine/register_file.hh"

#include "base/logging.hh"

namespace rr::machine {

RegisterFile::RegisterFile(unsigned num_regs)
    : regs_(num_regs, 0)
{
    rr_assert(num_regs >= 4, "register file too small: ", num_regs);
}

uint32_t
RegisterFile::read(unsigned index) const
{
    rr_assert(index < regs_.size(), "register read out of range: ",
              index, " >= ", regs_.size());
    return regs_[index];
}

void
RegisterFile::write(unsigned index, uint32_t value)
{
    rr_assert(index < regs_.size(), "register write out of range: ",
              index, " >= ", regs_.size());
    regs_[index] = value;
}

void
RegisterFile::clear()
{
    std::fill(regs_.begin(), regs_.end(), 0);
}

} // namespace rr::machine
