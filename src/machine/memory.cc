#include "machine/memory.hh"

#include "base/logging.hh"

namespace rr::machine {

Memory::Memory(size_t num_words)
    : words_(num_words, 0)
{
    rr_assert(num_words > 0, "memory must be nonempty");
    writeLog_.reserve(kWriteLogCap);
}

uint32_t
Memory::read(uint64_t addr) const
{
    rr_assert(addr < words_.size(), "memory read out of range: ", addr);
    return words_[addr];
}

void
Memory::write(uint64_t addr, uint32_t value)
{
    rr_assert(addr < words_.size(), "memory write out of range: ", addr);
    words_[addr] = value;
    ++version_;
    if (!writeLogOverflow_) {
        if (writeLog_.size() < kWriteLogCap)
            writeLog_.push_back(static_cast<uint32_t>(addr));
        else
            writeLogOverflow_ = true;
    }
}

void
Memory::loadImage(uint64_t base, const std::vector<uint32_t> &image)
{
    rr_assert(base + image.size() <= words_.size(),
              "image does not fit: base ", base, " + ", image.size(),
              " > ", words_.size());
    std::copy(image.begin(), image.end(), words_.begin() + base);
    ++version_;
    writeLogOverflow_ = true;
}

void
Memory::clear()
{
    std::fill(words_.begin(), words_.end(), 0);
    ++version_;
    writeLogOverflow_ = true;
}

void
Memory::clearWriteLog()
{
    writeLog_.clear();
    writeLogOverflow_ = false;
}

} // namespace rr::machine
