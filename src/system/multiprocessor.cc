#include "system/multiprocessor.hh"

#include <algorithm>
#include <cmath>

#include "base/logging.hh"

namespace rr::system {

SystemResult
simulateSystem(const SystemConfig &config)
{
    rr_assert(config.nodeConfig != nullptr, "node builder missing");
    rr_assert(config.numNodes >= 1, "no nodes");
    rr_assert(config.baseLatency >= 1.0, "base latency too small");
    rr_assert(config.maxUtilization > 0.0 &&
                  config.maxUtilization < 1.0,
              "bad utilization clamp");

    SystemResult result;
    double latency = config.baseLatency;

    for (unsigned iter = 1; iter <= config.maxIterations; ++iter) {
        result.iterations = iter;

        mt::MtConfig node = config.nodeConfig(
            static_cast<uint64_t>(std::llround(latency)));
        result.nodeStats = mt::simulate(std::move(node));

        const double fault_rate =
            result.nodeStats.totalCycles == 0
                ? 0.0
                : static_cast<double>(result.nodeStats.faults) /
                      static_cast<double>(
                          result.nodeStats.totalCycles);

        // Interconnect contention (M/M/1 flavour, clamped short of
        // saturation so the fixed point stays finite).
        double rho = static_cast<double>(config.numNodes) *
                     fault_rate * config.msgServiceCycles;
        rho = std::min(rho, config.maxUtilization);
        const double next_latency =
            config.baseLatency +
            config.msgServiceCycles / (1.0 - rho);

        result.networkUtilization = rho;
        result.effectiveLatency = next_latency;
        result.nodeEfficiency = result.nodeStats.efficiencyCentral;
        result.aggregateThroughput =
            static_cast<double>(config.numNodes) *
            result.nodeEfficiency;

        const double change =
            std::abs(next_latency - latency) / latency;
        // Damped update stabilizes the oscillation between high
        // latency (low rate) and low latency (high rate).
        latency = 0.5 * (latency + next_latency);
        if (change < config.tolerance) {
            result.converged = true;
            break;
        }
    }
    return result;
}

} // namespace rr::system
