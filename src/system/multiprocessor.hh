/**
 * @file
 * Multiprocessor system model — relaxing the paper's lightly-loaded
 * network assumption.
 *
 * The paper's cache-fault experiments hold the remote-miss latency L
 * constant, "which is reasonable for lightly loaded networks"
 * (Section 3.2). At system scale the latency is endogenous: every
 * node's misses load the interconnect, and higher per-node
 * utilization (exactly what register relocation buys) generates more
 * traffic. We model K identical nodes sharing an interconnect with
 * an M/M/1-style contention term,
 *
 *     L_eff = L_base + s_net / (1 - rho),
 *     rho   = K * per-node fault rate * s_net,
 *
 * and iterate node simulation against latency to a fixed point. The
 * question it answers: does the flexible scheme's advantage survive
 * the extra traffic it creates?
 */

#ifndef RR_SYSTEM_MULTIPROCESSOR_HH
#define RR_SYSTEM_MULTIPROCESSOR_HH

#include <functional>

#include "multithread/mt_processor.hh"

namespace rr::system {

/** Configuration of the fixed-point system simulation. */
struct SystemConfig
{
    unsigned numNodes = 16;      ///< K
    double baseLatency = 50.0;   ///< uncontended round trip (cycles)
    double msgServiceCycles = 2.0; ///< interconnect service per miss

    /**
     * Builds the per-node simulation for a given effective latency.
     * All nodes are identical, so one representative node is
     * simulated per iteration.
     */
    std::function<mt::MtConfig(uint64_t effective_latency)>
        nodeConfig;

    unsigned maxIterations = 25;
    double tolerance = 0.01; ///< relative latency change to converge
    double maxUtilization = 0.95; ///< interconnect saturation clamp
};

/** Outcome of the fixed-point iteration. */
struct SystemResult
{
    bool converged = false;
    unsigned iterations = 0;
    double effectiveLatency = 0.0;   ///< converged L_eff
    double networkUtilization = 0.0; ///< converged rho
    double nodeEfficiency = 0.0;     ///< per-node central efficiency
    double aggregateThroughput = 0.0; ///< K * per-node useful rate
    mt::MtStats nodeStats;           ///< last node simulation
};

/** Run the fixed-point system simulation. */
SystemResult simulateSystem(const SystemConfig &config);

} // namespace rr::system

#endif // RR_SYSTEM_MULTIPROCESSOR_HH
