#include "serve/broker.hh"

#include "exp/engine.hh"
#include "serve/coalesce.hh"
#include "trace/audit.hh"

namespace rr::serve {

UnitResult
runAuditedUnit(const SimUnit &unit)
{
    mt::MtConfig config = makeSpec(unit).build();
    trace::TraceAuditor auditor(config.costs);
    config.traceSink = &auditor;
    const mt::MtStats stats = mt::simulate(config);

    UnitResult result;
    result.efficiency = stats.efficiencyCentral;
    result.resident = stats.avgResidentContexts;
    const std::vector<std::string> problems =
        auditor.reconcile(mt::auditTotals(stats));
    if (!problems.empty()) {
        result.auditOk = false;
        result.auditProblem = problems.front();
    }
    return result;
}

Broker::Broker(std::size_t cache_entries, unsigned jobs)
    : cache_(cache_entries), jobs_(jobs)
{
}

std::vector<ServeResult>
Broker::serveBatch(const std::vector<ServeRequest> &requests)
{
    std::vector<ServeResult> results(requests.size());

    // Cache pass: hits are served from stored bytes untouched.
    std::vector<std::size_t> miss_indices;
    std::vector<ServeRequest> misses;
    std::vector<std::string> miss_keys;
    for (std::size_t i = 0; i < requests.size(); ++i) {
        std::string key = canonicalKey(requests[i]);
        if (auto hit = cache_.get(key)) {
            results[i] = {200, std::move(*hit), true};
            continue;
        }
        miss_indices.push_back(i);
        misses.push_back(requests[i]);
        miss_keys.push_back(std::move(key));
    }

    // Coalesce the misses and simulate each unique unit once, on
    // the deterministic worker pool. Each task writes only its own
    // slot; the assembly below reads them in fixed request order.
    const BatchPlan plan = planBatch(misses);
    std::vector<UnitResult> unit_results(plan.unique.size());
    exp::runParallel(
        plan.unique.size(),
        [&](std::size_t i) {
            unit_results[i] = runAuditedUnit(plan.unique[i]);
        },
        jobs_);

    uint64_t violations = 0;
    for (std::size_t m = 0; m < misses.size(); ++m) {
        const std::vector<UnitResult> mine =
            gatherResults(plan, m, unit_results);
        const UnitResult *failed = nullptr;
        for (const UnitResult &result : mine) {
            if (!result.auditOk) {
                failed = &result;
                break;
            }
        }
        ServeResult &out = results[miss_indices[m]];
        if (failed != nullptr) {
            ++violations;
            const ProtocolError error{
                ErrorCode::AuditFailure,
                "cycle-conservation audit failed: " +
                    failed->auditProblem};
            out = {errorHttpStatus(error.code),
                   errorDocument(error), false};
            continue; // never cache an unverified result
        }
        out = {200, resultDocument(misses[m], mine), false};
        cache_.put(miss_keys[m], out.body);
    }

    {
        std::lock_guard<std::mutex> lock(mutex_);
        counters_.requests += requests.size();
        counters_.batches += 1;
        counters_.unitsTotal += plan.totalUnits;
        counters_.unitsUnique += plan.unique.size();
        counters_.simulations += plan.unique.size();
        counters_.auditViolations += violations;
    }
    return results;
}

ServeResult
Broker::serveBody(const std::string &body)
{
    try {
        return serveBatch({parseRequest(body)}).front();
    } catch (const ProtocolError &error) {
        return {errorHttpStatus(error.code), errorDocument(error),
                false};
    }
}

BrokerCounters
Broker::counters() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return counters_;
}

} // namespace rr::serve
