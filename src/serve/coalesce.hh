/**
 * @file
 * Request coalescing for rrserve (docs/SERVE.md).
 *
 * The scheduler drains the admission queue in batches; planBatch()
 * expands every request in the batch into its simulation units
 * (protocol.hh) and deduplicates them by canonical unit key, so
 * overlapping sweeps — two clients asking for intersecting latency
 * grids, or the same spec at different sweep shapes — are simulated
 * once and the results shared.
 *
 * Coalescing is invisible in the output: a unit's result depends
 * only on its spec (the simulations are deterministic), and each
 * request's document is assembled from its own unit list in
 * canonical order, so a coalesced batch produces byte-identical
 * documents to the same requests served one at a time — the oracle
 * tests/test_serve.cc checks.
 */

#ifndef RR_SERVE_COALESCE_HH
#define RR_SERVE_COALESCE_HH

#include <cstddef>
#include <vector>

#include "serve/protocol.hh"

namespace rr::serve {

/** The deduplicated execution plan for one batch of requests. */
struct BatchPlan
{
    /** Units to simulate, in first-appearance order. */
    std::vector<SimUnit> unique;

    /**
     * Per request, the index into `unique` of each of its units, in
     * expandUnits() order — the order resultDocument() consumes.
     */
    std::vector<std::vector<std::size_t>> assignments;

    std::size_t totalUnits = 0; ///< before deduplication

    /** Simulations saved by coalescing. */
    std::size_t saved() const { return totalUnits - unique.size(); }
};

/** Expand and deduplicate @p requests into one execution plan. */
BatchPlan planBatch(const std::vector<ServeRequest> &requests);

/**
 * Gather request @p index's results from the batch-wide unit
 * results (parallel to BatchPlan::unique).
 */
std::vector<UnitResult>
gatherResults(const BatchPlan &plan, std::size_t index,
              const std::vector<UnitResult> &unit_results);

} // namespace rr::serve

#endif // RR_SERVE_COALESCE_HH
