#include "serve/hammer.hh"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <ostream>
#include <string>
#include <thread>
#include <vector>

#include "exp/json_out.hh"
#include "serve/server.hh"

namespace rr::serve {

namespace {

/** A small, fast request body; @p index selects a distinct spec. */
std::string
hammerBody(unsigned index)
{
    return "{\"spec\": {\"family\": \"cache\", \"runLength\": " +
           std::to_string(8 + 4 * index) +
           ", \"threads\": 8, \"seeds\": 2}}";
}

uint64_t
percentileUs(std::vector<uint64_t> &sorted_us, unsigned percent)
{
    if (sorted_us.empty())
        return 0;
    std::size_t rank = sorted_us.size() * percent / 100;
    if (rank >= sorted_us.size())
        rank = sorted_us.size() - 1;
    return sorted_us[rank];
}

/** An in-process server plus the thread running it. */
class ServerFixture
{
  public:
    explicit ServerFixture(const ServeOptions &options)
        : server_(options)
    {
        ok_ = server_.start();
        if (ok_)
            thread_ = std::thread([this] { server_.run(); });
    }

    ~ServerFixture()
    {
        if (thread_.joinable()) {
            server_.stop();
            thread_.join();
        }
    }

    bool ok() const { return ok_; }
    uint16_t port() const { return server_.port(); }
    Server &server() { return server_; }

  private:
    Server server_;
    std::thread thread_;
    bool ok_ = false;
};

} // namespace

int
runHammer(const HammerOptions &options, std::ostream &out)
{
    using Clock = std::chrono::steady_clock;
    bool pass = true;
    const unsigned specs = options.specs == 0 ? 1 : options.specs;
    const unsigned clients =
        options.clients == 0 ? 1 : options.clients;

    ServeOptions serve;
    serve.port = 0;
    serve.cacheEntries = options.cacheEntries;
    serve.jobs = options.jobs;
    ServerFixture fixture(serve);
    if (!fixture.ok()) {
        out << "hammer: cannot start server: "
            << fixture.server().error() << "\n";
        return 1;
    }
    const uint16_t port = fixture.port();

    // Phase 1: identity. Cold run misses; the identical request
    // replayed from the cache must return byte-identical bytes.
    const std::string identity_body = hammerBody(0);
    const HttpResponse cold =
        httpPost(port, "/v1/simulate", identity_body);
    const HttpResponse hot =
        httpPost(port, "/v1/simulate", identity_body);
    const bool identity_ok =
        cold.status == 200 && hot.status == 200 &&
        cold.header("X-Cache") == "miss" &&
        hot.header("X-Cache") == "hit" && cold.body == hot.body;
    pass = pass && identity_ok;

    const HttpResponse health = httpGet(port, "/healthz");
    pass = pass && health.status == 200;

    // Phase 2: throughput. Client threads cycle over a small spec
    // set so the cache and the coalescer both see repeats.
    std::vector<std::vector<uint64_t>> latencies(clients);
    std::atomic<uint64_t> issued{0};
    std::atomic<uint64_t> ok_responses{0};
    std::atomic<uint64_t> failures{0};
    std::vector<std::thread> workers;
    for (unsigned c = 0; c < clients; ++c) {
        workers.emplace_back([&, c] {
            for (;;) {
                const uint64_t n = issued.fetch_add(1);
                if (n >= options.requests)
                    return;
                const std::string body =
                    hammerBody(static_cast<unsigned>(n % specs));
                const auto start = Clock::now();
                const HttpResponse reply =
                    httpPost(port, "/v1/simulate", body);
                const auto micros =
                    std::chrono::duration_cast<
                        std::chrono::microseconds>(Clock::now() -
                                                   start)
                        .count();
                latencies[c].push_back(
                    static_cast<uint64_t>(micros));
                if (reply.status == 200)
                    ok_responses.fetch_add(1);
                else
                    failures.fetch_add(1);
            }
        });
    }
    for (std::thread &worker : workers)
        worker.join();

    std::vector<uint64_t> all_us;
    for (const std::vector<uint64_t> &mine : latencies)
        all_us.insert(all_us.end(), mine.begin(), mine.end());
    std::sort(all_us.begin(), all_us.end());
    const uint64_t p50 = percentileUs(all_us, 50);
    const uint64_t p99 = percentileUs(all_us, 99);
    const bool throughput_ok =
        ok_responses.load() == options.requests &&
        failures.load() == 0;
    pass = pass && throughput_ok;

    const std::string stats = fixture.server().statsDocument();
    pass = pass && stats.find("rr.serve.stats.v1") !=
                       std::string::npos;

    // Phase 3: backpressure, against a dedicated server with a tiny
    // queue, single-unit batches, and the cache off so every request
    // really simulates. Flooding it with concurrent unique requests
    // must produce 429s while every response stays well-formed.
    uint64_t rejected = 0;
    uint64_t flood_ok = 0;
    uint64_t flood_bad = 0;
    {
        ServeOptions tiny;
        tiny.port = 0;
        tiny.queueDepth = 2;
        tiny.batchMax = 1;
        tiny.cacheEntries = 0;
        tiny.jobs = 1;
        ServerFixture small(tiny);
        if (!small.ok()) {
            out << "hammer: cannot start backpressure server: "
                << small.server().error() << "\n";
            return 1;
        }
        const uint16_t small_port = small.port();
        constexpr unsigned kFlood = 32;
        std::atomic<uint64_t> flood_rejected{0};
        std::atomic<uint64_t> flood_served{0};
        std::atomic<uint64_t> flood_failed{0};
        std::vector<std::thread> flooders;
        for (unsigned f = 0; f < kFlood; ++f) {
            flooders.emplace_back([&, f] {
                // Unique spec per flooder: no two coalesce away.
                const std::string body =
                    "{\"spec\": {\"family\": \"sync\", "
                    "\"runLength\": " +
                    std::to_string(8 + f) +
                    ", \"threads\": 16, \"seeds\": 2}}";
                const HttpResponse reply =
                    httpPost(small_port, "/v1/simulate", body);
                if (reply.status == 429)
                    flood_rejected.fetch_add(1);
                else if (reply.status == 200)
                    flood_served.fetch_add(1);
                else
                    flood_failed.fetch_add(1);
            });
        }
        for (std::thread &flooder : flooders)
            flooder.join();
        rejected = flood_rejected.load();
        flood_ok = flood_served.load();
        flood_bad = flood_failed.load();
    }
    const bool backpressure_ok = rejected > 0 && flood_bad == 0;
    pass = pass && backpressure_ok;

    if (options.json) {
        exp::JsonWriter w;
        w.beginObject();
        w.key("schema");
        w.value("rr.serve.hammer.v1");
        w.key("requests");
        w.value(options.requests);
        w.key("clients");
        w.value(clients);
        w.key("identityOk");
        w.value(identity_ok);
        w.key("throughputOk");
        w.value(throughput_ok);
        w.key("p50Us");
        w.value(p50);
        w.key("p99Us");
        w.value(p99);
        w.key("rejected429");
        w.value(rejected);
        w.key("backpressureOk");
        w.value(backpressure_ok);
        w.key("pass");
        w.value(pass);
        w.endObject();
        out << w.str() << "\n";
    } else if (!options.quiet) {
        out << "rrserve --hammer: " << options.requests
            << " requests, " << clients << " clients\n";
        out << "  identity: cold miss + hot hit byte-identical: "
            << (identity_ok ? "ok" : "FAIL") << "\n";
        out << "  throughput: " << ok_responses.load() << " ok, "
            << failures.load() << " errors, p50 " << p50
            << " us, p99 " << p99 << " us\n";
        out << "  backpressure: " << (flood_ok + rejected + flood_bad)
            << " offered, " << rejected << " rejected (429), "
            << flood_ok << " served: "
            << (backpressure_ok ? "ok" : "FAIL") << "\n";
    }
    out << (pass ? "hammer: PASS" : "hammer: FAIL") << "\n";
    return pass ? 0 : 1;
}

} // namespace rr::serve
