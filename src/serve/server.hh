/**
 * @file
 * The rrserve daemon (docs/SERVE.md): a long-running
 * simulation-as-a-service process over the request broker.
 *
 * Two threads:
 *  - the **acceptor** (run() itself) accepts loopback connections,
 *    reads and parses each request, answers protocol errors and the
 *    observability endpoints immediately, and admits simulation
 *    requests to the bounded queue — or answers 429 when it is
 *    full (admission.hh);
 *  - the **scheduler** drains the queue in batches and hands them
 *    to the broker (cache → coalesce → simulate → audit → respond).
 *
 * Graceful drain: when the stop flag is raised (SIGTERM/SIGINT in
 * rrserve), the acceptor stops taking connections and closes the
 * queue; the scheduler finishes every admitted request before run()
 * returns — an accepted request is never dropped.
 *
 * Endpoints: POST /v1/simulate, GET /v1/stats, GET /healthz.
 */

#ifndef RR_SERVE_SERVER_HH
#define RR_SERVE_SERVER_HH

#include <csignal>
#include <cstdint>
#include <string>

#include "serve/admission.hh"
#include "serve/broker.hh"
#include "serve/http.hh"

namespace rr::serve {

struct ServeOptions
{
    uint16_t port = 8377;          ///< 0 = ephemeral (tests)
    std::size_t queueDepth = 64;   ///< admission queue capacity
    std::size_t batchMax = 32;     ///< scheduler batch size
    std::size_t cacheEntries = 256;
    unsigned jobs = 0;             ///< sim worker threads (0 = env)
    std::size_t maxBody = 1u << 20;

    /**
     * When non-null, raising the flag (e.g. from a signal handler)
     * triggers graceful drain; run() returns once drained.
     */
    const volatile std::sig_atomic_t *stopFlag = nullptr;
};

class Server
{
  public:
    explicit Server(const ServeOptions &options);

    /** Bind the listener. @return false with error() on failure. */
    bool start();

    /** The bound port (after start()). */
    uint16_t port() const { return listener_.port(); }

    /**
     * Serve until the stop flag is raised (or stop() is called from
     * another thread), then drain and return.
     */
    void run();

    /** Programmatic stop (the in-process hammer uses this). */
    void stop() { stopped_.store(true); }

    /** The "rr.serve.stats.v1" counters document. */
    std::string statsDocument() const;

    const std::string &error() const { return error_; }

  private:
    /** One admitted request awaiting simulation. */
    struct Pending
    {
        int fd = -1;
        ServeRequest request;
    };

    void handleConnection(int fd);
    void schedulerLoop();

    ServeOptions options_;
    Broker broker_;
    AdmissionQueue<Pending> queue_;
    Listener listener_;
    std::atomic<bool> stopped_{false};
    std::string error_;
};

} // namespace rr::serve

#endif // RR_SERVE_SERVER_HH
