/**
 * @file
 * The rrserve wire protocol (docs/SERVE.md is the full reference):
 * strict parsing of simulation requests, canonical spec keys, and
 * deterministic result-document assembly.
 *
 * A request is one JSON object selecting a fault family, a sweep of
 * (run length, latency) points, the architectures to compare, and
 * the replication count. Parsing is strict in the same spirit as the
 * tools' numeric grammar (base/parse_num.hh): unknown fields, wrong
 * types, out-of-range values, and oversized sweeps are protocol
 * errors with stable machine-readable codes — never aborts, never
 * silent defaults for junk.
 *
 * Canonicalization is the contract the result cache and the
 * coalescer both build on: parseRequest() normalizes every request
 * (defaults filled in, sweep lists sorted and deduplicated, numbers
 * reformatted in shortest round-trip form), so two requests that
 * mean the same simulation — whatever their key order, whitespace,
 * or list order — produce the same canonicalKey(), the same unit
 * keys, and byte-identical result documents.
 */

#ifndef RR_SERVE_PROTOCOL_HH
#define RR_SERVE_PROTOCOL_HH

#include <cstdint>
#include <string>
#include <vector>

#include "multithread/mt_processor.hh"
#include "multithread/simulation_spec.hh"

namespace rr::serve {

/** Protocol limits (documented in docs/SERVE.md). */
inline constexpr std::size_t kMaxSweepValues = 16; ///< per sweep list
inline constexpr unsigned kMaxSeeds = 16;
inline constexpr unsigned kMaxThreads = 4096;
inline constexpr std::size_t kMaxUnits = 1024; ///< sims per request

/** Machine-readable protocol error codes (docs/SERVE.md). */
enum class ErrorCode : uint8_t
{
    BadJson,      ///< body is not a valid JSON document
    BadRequest,   ///< wrong shape: missing/mistyped/unknown fields
    BadSpec,      ///< SimulationSpec validation rejected the values
    Limit,        ///< a protocol limit exceeded (sweep size, seeds)
    TooLarge,     ///< body exceeds the configured size cap
    NotFound,     ///< unknown endpoint
    MethodNotAllowed,
    OverCapacity, ///< admission queue full — retry later
    AuditFailure, ///< a served simulation failed the trace audit
};

/** Stable wire name of @p code ("bad-json", "over-capacity", ...). */
const char *errorCodeName(ErrorCode code);

/** The HTTP status conventionally paired with @p code. */
int errorHttpStatus(ErrorCode code);

/** A protocol-level rejection (thrown by parseRequest). */
struct ProtocolError
{
    ErrorCode code = ErrorCode::BadRequest;
    std::string message;
};

/** Render @p error as an "rr.serve.error.v1" JSON document. */
std::string errorDocument(const ProtocolError &error);

/** The stochastic fault family a request selects. */
enum class Family : uint8_t
{
    Cache,         ///< Figure 5 conventions (S = 6, never unload)
    Sync,          ///< Figure 6 conventions (S = 8, two-phase)
    Deterministic, ///< Section 3.4 analytic setting
};

const char *familyName(Family family);

/**
 * One fully-resolved simulation configuration, before the
 * architecture and seed are chosen. Every field is populated after
 * parsing (defaults applied), so canonical keys never depend on
 * which fields the client spelled out.
 */
struct PointSpec
{
    Family family = Family::Cache;
    double runLength = 32.0; ///< mean run length R
    double latency = 200.0;  ///< fault latency L
    unsigned threads = 64;
    unsigned numRegs = 128;
    unsigned minContextSize = 4;
    unsigned regsLo = 6;  ///< register demand C ~ U[lo, hi]
    unsigned regsHi = 24;
    unsigned fixedContextRegs = 32;
};

/** A parsed, normalized simulation request. */
struct ServeRequest
{
    PointSpec base;                   ///< shared non-sweep settings
    std::vector<double> runLengths;   ///< sorted, unique, non-empty
    std::vector<double> latencies;    ///< sorted, unique, non-empty
    std::vector<mt::ArchKind> archs;  ///< sorted, unique, non-empty
    unsigned seeds = 3;               ///< replications (seeds 1..N)

    /** Simulations this request expands to (points * archs * seeds). */
    std::size_t units() const
    {
        return runLengths.size() * latencies.size() * archs.size() *
               seeds;
    }
};

/** One concrete simulation a request expands into. */
struct SimUnit
{
    PointSpec point; ///< runLength/latency resolved to this unit's
    mt::ArchKind arch = mt::ArchKind::Flexible;
    uint64_t seed = 1;
};

/** What one simulation produced (the coalescer's exchange type). */
struct UnitResult
{
    double efficiency = 0.0; ///< central-window efficiency
    double resident = 0.0;   ///< time-weighted mean residency
    bool auditOk = true;
    std::string auditProblem; ///< first violation when !auditOk
};

/**
 * Parse and normalize @p body as one simulation request.
 * @throws ProtocolError naming the first problem (strict: unknown
 *         fields, wrong types, limit violations, and values the
 *         SimulationSpec validator rejects are all errors).
 */
ServeRequest parseRequest(const std::string &body);

/**
 * The canonical form of @p request: a fixed field order rendered
 * with shortest round-trip numbers. Equal for every spelling of the
 * same request; the result cache hashes this string (cache.hh).
 */
std::string canonicalKey(const ServeRequest &request);

/** The canonical identity of one simulation unit. */
std::string unitKey(const SimUnit &unit);

/** Expand @p request into its units, in canonical (output) order. */
std::vector<SimUnit> expandUnits(const ServeRequest &request);

/**
 * Build the validated SimulationSpec for @p unit (throws
 * mt::SpecError for combinations the builder rejects; parseRequest
 * already probes this once so served units do not throw).
 */
mt::SimulationSpec makeSpec(const SimUnit &unit);

/**
 * Assemble the "rr.bench.v1" result document for @p request from
 * its unit results, given in expandUnits() order. The document is a
 * pure function of (request, results): the bytes are identical
 * whether the units ran fresh, coalesced with another request's, or
 * were replayed from the cache.
 */
std::string resultDocument(const ServeRequest &request,
                           const std::vector<UnitResult> &results);

} // namespace rr::serve

#endif // RR_SERVE_PROTOCOL_HH
