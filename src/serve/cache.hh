/**
 * @file
 * Content-addressed result cache for rrserve (docs/SERVE.md).
 *
 * Entries are keyed by the canonical spec key (protocol.hh): the
 * server hashes the canonical string (64-bit FNV-1a) to find the
 * bucket and compares the full key on lookup, so a hash collision is
 * a miss, never a wrong answer. Because every simulation is
 * deterministic, a hit can return the stored response bytes
 * verbatim — byte-identical to a fresh run, which is the property
 * tests/test_serve.cc and the serve-smoke run both assert.
 *
 * Eviction is strict LRU over a fixed entry budget; hit, miss,
 * insertion, and eviction counters feed the /v1/stats endpoint.
 * The cache is internally locked — the acceptor and scheduler
 * threads share one instance.
 */

#ifndef RR_SERVE_CACHE_HH
#define RR_SERVE_CACHE_HH

#include <cstdint>
#include <list>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>

namespace rr::serve {

/** 64-bit FNV-1a over @p text (the canonical-key hash). */
inline uint64_t
fnv1a64(const std::string &text)
{
    uint64_t hash = 14695981039346656037ull;
    for (const char c : text) {
        hash ^= static_cast<unsigned char>(c);
        hash *= 1099511628211ull;
    }
    return hash;
}

/** Monotonic counters, snapshotted for /v1/stats. */
struct CacheCounters
{
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t insertions = 0;
    uint64_t evictions = 0;
    uint64_t entries = 0; ///< current size (not monotonic)
};

/** LRU result cache keyed by canonical spec key. */
class ResultCache
{
  public:
    /** @param capacity maximum resident entries (0 disables). */
    explicit ResultCache(std::size_t capacity)
        : capacity_(capacity)
    {
    }

    /**
     * Look @p key up; a hit refreshes recency and returns the stored
     * bytes. Counts a hit or a miss either way.
     */
    std::optional<std::string>
    get(const std::string &key)
    {
        std::lock_guard<std::mutex> lock(mutex_);
        const auto it = index_.find(fnv1a64(key));
        if (it == index_.end() || it->second->key != key) {
            ++counters_.misses;
            return std::nullopt;
        }
        ++counters_.hits;
        lru_.splice(lru_.begin(), lru_, it->second);
        return it->second->bytes;
    }

    /**
     * Insert @p bytes under @p key (replacing any entry with the
     * same hash), evicting the least-recently-used entry when the
     * budget is exceeded.
     */
    void
    put(const std::string &key, std::string bytes)
    {
        if (capacity_ == 0)
            return;
        std::lock_guard<std::mutex> lock(mutex_);
        const uint64_t hash = fnv1a64(key);
        const auto it = index_.find(hash);
        if (it != index_.end()) {
            lru_.erase(it->second);
            index_.erase(it);
        }
        lru_.push_front(Entry{key, std::move(bytes)});
        index_[hash] = lru_.begin();
        ++counters_.insertions;
        while (lru_.size() > capacity_) {
            index_.erase(fnv1a64(lru_.back().key));
            lru_.pop_back();
            ++counters_.evictions;
        }
    }

    CacheCounters
    counters() const
    {
        std::lock_guard<std::mutex> lock(mutex_);
        CacheCounters out = counters_;
        out.entries = lru_.size();
        return out;
    }

  private:
    struct Entry
    {
        std::string key;
        std::string bytes;
    };

    std::size_t capacity_;
    mutable std::mutex mutex_;
    std::list<Entry> lru_; ///< front = most recently used
    std::unordered_map<uint64_t, std::list<Entry>::iterator> index_;
    CacheCounters counters_;
};

} // namespace rr::serve

#endif // RR_SERVE_CACHE_HH
