/**
 * @file
 * The built-in load generator behind `rrserve --hammer`
 * (docs/SERVE.md): an in-process proof of the daemon's three
 * contracts, with a latency report.
 *
 * The hammer starts a real Server on an ephemeral loopback port and
 * drives it through the client half of the HTTP layer:
 *
 *  1. **identity** — the same request served cold and then hot must
 *     be a miss then a hit, with byte-identical rr.bench.v1 bodies;
 *  2. **throughput** — N client threads issue the configured number
 *     of requests over a small spec set (so the cache and the
 *     coalescer both engage) and per-request latency is collected
 *     into a p50/p99 report;
 *  3. **backpressure** — a deliberately tiny queue (depth 2, batch 1,
 *     cache off) is flooded with concurrent unique requests; some
 *     must be answered 429 and every response must still be clean.
 *
 * Exit code 0 means every check passed ("hammer: PASS" on the last
 * line — the serve_smoke ctest keys on it).
 */

#ifndef RR_SERVE_HAMMER_HH
#define RR_SERVE_HAMMER_HH

#include <cstdint>
#include <iosfwd>

namespace rr::serve {

struct HammerOptions
{
    uint64_t requests = 1024; ///< throughput-phase request count
    unsigned clients = 8;     ///< concurrent client threads
    unsigned specs = 16;      ///< distinct specs cycled through
    std::size_t cacheEntries = 256;
    unsigned jobs = 0;
    bool json = false; ///< emit an rr.serve.hammer.v1 document
    bool quiet = false;
};

/**
 * Run the load generator against an in-process server.
 * @return 0 when every phase passed, 1 otherwise.
 */
int runHammer(const HammerOptions &options, std::ostream &out);

} // namespace rr::serve

#endif // RR_SERVE_HAMMER_HH
