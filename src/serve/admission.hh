/**
 * @file
 * Admission control for rrserve (docs/SERVE.md): a bounded queue
 * between the acceptor and the scheduler.
 *
 * The acceptor calls tryPush() for every admissible request; when
 * the queue is at capacity the push fails immediately and the server
 * answers 429 (over-capacity) instead of buffering — memory use is
 * bounded by `capacity` queued requests no matter the offered load.
 * The scheduler drains with popBatch(), which blocks until work or
 * shutdown and then takes everything available up to the batch cap,
 * which is what gives the coalescer cross-request batches to merge.
 *
 * close() wakes the scheduler for graceful drain: pushes are refused
 * from then on, but popBatch() keeps returning queued work until the
 * queue is empty — SIGTERM never drops an accepted request.
 */

#ifndef RR_SERVE_ADMISSION_HH
#define RR_SERVE_ADMISSION_HH

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <utility>
#include <vector>

namespace rr::serve {

/** Monotonic admission counters, snapshotted for /v1/stats. */
struct AdmissionCounters
{
    uint64_t accepted = 0;
    uint64_t rejected = 0;
    uint64_t maxDepth = 0; ///< high-water queue depth
};

/** Bounded MPSC work queue with reject-on-full admission. */
template <typename T>
class AdmissionQueue
{
  public:
    /** @param capacity maximum queued items (>= 1). */
    explicit AdmissionQueue(std::size_t capacity)
        : capacity_(capacity)
    {
    }

    /**
     * Admit @p item unless the queue is full or closed.
     * @return true when queued; false means answer 429 now.
     */
    bool
    tryPush(T item)
    {
        {
            std::lock_guard<std::mutex> lock(mutex_);
            if (closed_ || items_.size() >= capacity_) {
                ++counters_.rejected;
                return false;
            }
            items_.push_back(std::move(item));
            ++counters_.accepted;
            if (items_.size() > counters_.maxDepth)
                counters_.maxDepth = items_.size();
        }
        ready_.notify_one();
        return true;
    }

    /**
     * Block until items are queued or the queue is closed, then
     * take up to @p max items. An empty result means closed-and-
     * drained: the scheduler should exit.
     */
    std::vector<T>
    popBatch(std::size_t max)
    {
        std::unique_lock<std::mutex> lock(mutex_);
        ready_.wait(lock,
                    [this] { return closed_ || !items_.empty(); });
        std::vector<T> batch;
        while (!items_.empty() && batch.size() < max) {
            batch.push_back(std::move(items_.front()));
            items_.pop_front();
        }
        return batch;
    }

    /** Refuse new work and wake the scheduler (graceful drain). */
    void
    close()
    {
        {
            std::lock_guard<std::mutex> lock(mutex_);
            closed_ = true;
        }
        ready_.notify_all();
    }

    bool
    closed() const
    {
        std::lock_guard<std::mutex> lock(mutex_);
        return closed_;
    }

    std::size_t
    depth() const
    {
        std::lock_guard<std::mutex> lock(mutex_);
        return items_.size();
    }

    AdmissionCounters
    counters() const
    {
        std::lock_guard<std::mutex> lock(mutex_);
        return counters_;
    }

  private:
    std::size_t capacity_;
    mutable std::mutex mutex_;
    std::condition_variable ready_;
    std::deque<T> items_;
    bool closed_ = false;
    AdmissionCounters counters_;
};

} // namespace rr::serve

#endif // RR_SERVE_ADMISSION_HH
