#include "serve/coalesce.hh"

#include <string>
#include <unordered_map>

namespace rr::serve {

BatchPlan
planBatch(const std::vector<ServeRequest> &requests)
{
    BatchPlan plan;
    std::unordered_map<std::string, std::size_t> seen;
    for (const ServeRequest &request : requests) {
        std::vector<std::size_t> assignment;
        for (const SimUnit &unit : expandUnits(request)) {
            const std::string key = unitKey(unit);
            const auto [it, inserted] =
                seen.emplace(key, plan.unique.size());
            if (inserted)
                plan.unique.push_back(unit);
            assignment.push_back(it->second);
            ++plan.totalUnits;
        }
        plan.assignments.push_back(std::move(assignment));
    }
    return plan;
}

std::vector<UnitResult>
gatherResults(const BatchPlan &plan, std::size_t index,
              const std::vector<UnitResult> &unit_results)
{
    std::vector<UnitResult> out;
    out.reserve(plan.assignments[index].size());
    for (const std::size_t unit : plan.assignments[index])
        out.push_back(unit_results[unit]);
    return out;
}

} // namespace rr::serve
