#include "serve/server.hh"

#include <unistd.h>

#include <thread>

#include "exp/json_out.hh"

namespace rr::serve {

namespace {

/**
 * An "rr.serve.error.v1" document for HTTP-layer failures, where the
 * status comes from request framing rather than an ErrorCode.
 */
std::string
transportErrorDocument(int status, const std::string &message)
{
    ErrorCode code = ErrorCode::BadRequest;
    switch (status) {
      case 404: code = ErrorCode::NotFound; break;
      case 405: code = ErrorCode::MethodNotAllowed; break;
      case 413: code = ErrorCode::TooLarge; break;
      case 429: code = ErrorCode::OverCapacity; break;
      default: break;
    }
    return errorDocument({code, message});
}

} // namespace

Server::Server(const ServeOptions &options)
    : options_(options),
      broker_(options.cacheEntries, options.jobs),
      queue_(options.queueDepth == 0 ? 1 : options.queueDepth)
{
}

bool
Server::start()
{
    if (!listener_.open(options_.port)) {
        error_ = "cannot listen on 127.0.0.1:" +
                 std::to_string(options_.port) + ": " +
                 listener_.error();
        return false;
    }
    return true;
}

void
Server::run()
{
    std::thread scheduler([this] { schedulerLoop(); });

    while (!stopped_.load()) {
        if (options_.stopFlag != nullptr && *options_.stopFlag != 0)
            break;
        const int fd = listener_.acceptOnce(100);
        if (fd < 0)
            continue;
        handleConnection(fd);
    }

    // Graceful drain: stop accepting, then let the scheduler finish
    // every admitted request before returning.
    listener_.close();
    queue_.close();
    scheduler.join();
}

void
Server::handleConnection(int fd)
{
    HttpRequest request = readHttpRequest(fd, options_.maxBody);
    if (!request.ok()) {
        writeHttpResponse(fd, request.errorStatus,
                          transportErrorDocument(
                              request.errorStatus,
                              request.errorReason));
        ::close(fd);
        return;
    }

    if (request.method == "GET" && request.target == "/healthz") {
        writeHttpResponse(fd, 200, "{\"ok\": true}\n");
        ::close(fd);
        return;
    }
    if (request.method == "GET" && request.target == "/v1/stats") {
        writeHttpResponse(fd, 200, statsDocument());
        ::close(fd);
        return;
    }
    if (request.target != "/v1/simulate") {
        writeHttpResponse(fd, 404,
                          transportErrorDocument(
                              404, "no such endpoint: " +
                                       request.target));
        ::close(fd);
        return;
    }
    if (request.method != "POST") {
        writeHttpResponse(fd, 405,
                          transportErrorDocument(
                              405, "/v1/simulate requires POST"),
                          {"Allow: POST"});
        ::close(fd);
        return;
    }

    Pending pending;
    pending.fd = fd;
    try {
        pending.request = parseRequest(request.body);
    } catch (const ProtocolError &error) {
        writeHttpResponse(fd, errorHttpStatus(error.code),
                          errorDocument(error));
        ::close(fd);
        return;
    }

    // Admission control: a full queue answers 429 immediately rather
    // than buffering — memory stays bounded under any offered load.
    if (!queue_.tryPush(std::move(pending))) {
        writeHttpResponse(
            fd, 429,
            transportErrorDocument(
                429, "admission queue full; retry later"),
            {"Retry-After: 1"});
        ::close(fd);
    }
}

void
Server::schedulerLoop()
{
    for (;;) {
        std::vector<Pending> batch =
            queue_.popBatch(options_.batchMax == 0
                                ? 1
                                : options_.batchMax);
        if (batch.empty())
            return; // closed and drained

        std::vector<ServeRequest> requests;
        requests.reserve(batch.size());
        for (const Pending &pending : batch)
            requests.push_back(pending.request);

        std::vector<ServeResult> results;
        try {
            results = broker_.serveBatch(requests);
        } catch (const std::exception &failure) {
            const std::string body = errorDocument(
                {ErrorCode::AuditFailure,
                 std::string("internal error: ") + failure.what()});
            for (const Pending &pending : batch) {
                writeHttpResponse(pending.fd, 500, body);
                ::close(pending.fd);
            }
            continue;
        }

        for (std::size_t i = 0; i < batch.size(); ++i) {
            writeHttpResponse(batch[i].fd, results[i].status,
                              results[i].body,
                              {results[i].cacheHit
                                   ? "X-Cache: hit"
                                   : "X-Cache: miss"});
            ::close(batch[i].fd);
        }
    }
}

std::string
Server::statsDocument() const
{
    const CacheCounters cache = broker_.cacheCounters();
    const AdmissionCounters admission = queue_.counters();
    const BrokerCounters broker = broker_.counters();

    exp::JsonWriter w;
    w.beginObject();
    w.key("schema");
    w.value("rr.serve.stats.v1");
    w.key("cache");
    w.beginObject();
    w.key("hits");
    w.value(cache.hits);
    w.key("misses");
    w.value(cache.misses);
    w.key("insertions");
    w.value(cache.insertions);
    w.key("evictions");
    w.value(cache.evictions);
    w.key("entries");
    w.value(cache.entries);
    w.endObject();
    w.key("admission");
    w.beginObject();
    w.key("accepted");
    w.value(admission.accepted);
    w.key("rejected");
    w.value(admission.rejected);
    w.key("maxDepth");
    w.value(admission.maxDepth);
    w.key("queueDepth");
    w.value(static_cast<uint64_t>(queue_.depth()));
    w.endObject();
    w.key("broker");
    w.beginObject();
    w.key("requests");
    w.value(broker.requests);
    w.key("batches");
    w.value(broker.batches);
    w.key("unitsTotal");
    w.value(broker.unitsTotal);
    w.key("unitsUnique");
    w.value(broker.unitsUnique);
    w.key("simulations");
    w.value(broker.simulations);
    w.key("auditViolations");
    w.value(broker.auditViolations);
    w.endObject();
    w.endObject();
    return w.str() + "\n";
}

} // namespace rr::serve
