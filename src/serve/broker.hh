/**
 * @file
 * The rrserve request broker: everything between a parsed request
 * and its response bytes, with no sockets involved.
 *
 * serveBatch() is the scheduler's whole job: check each request
 * against the result cache, coalesce the misses into one
 * deduplicated execution plan, fan the unique units out on the
 * deterministic worker pool (exp/engine.hh), audit every simulation
 * with a streaming TraceAuditor, assemble each request's rr.bench.v1
 * document, and fill the cache. Tests drive the broker directly
 * (tests/test_serve.cc) — the HTTP layer adds transport, nothing
 * else.
 *
 * Every simulation the broker serves is cycle-audited: the unit's
 * trace is reconciled against its reported statistics, and any
 * violation turns the affected requests into audit-failure errors
 * instead of silently serving unverified numbers.
 */

#ifndef RR_SERVE_BROKER_HH
#define RR_SERVE_BROKER_HH

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "serve/cache.hh"
#include "serve/protocol.hh"

namespace rr::serve {

/** Broker counters, snapshotted for /v1/stats. */
struct BrokerCounters
{
    uint64_t requests = 0;    ///< simulate requests served
    uint64_t batches = 0;     ///< scheduler batches processed
    uint64_t unitsTotal = 0;  ///< units requested (pre-coalescing)
    uint64_t unitsUnique = 0; ///< units simulated after coalescing
    uint64_t simulations = 0; ///< simulations actually run
    uint64_t auditViolations = 0;
};

/** One served response. */
struct ServeResult
{
    int status = 200;
    std::string body;
    bool cacheHit = false;
};

class Broker
{
  public:
    /**
     * @param cache_entries result-cache budget (entries; 0 disables)
     * @param jobs worker threads for the simulation fan-out
     *             (0 = exp::defaultJobs())
     */
    Broker(std::size_t cache_entries, unsigned jobs);

    /**
     * Serve @p requests as one batch (cache, coalesce, simulate,
     * audit, respond). Returns one result per request, in order.
     */
    std::vector<ServeResult>
    serveBatch(const std::vector<ServeRequest> &requests);

    /**
     * Parse and serve one request body — parse errors become their
     * error documents with the matching HTTP status.
     */
    ServeResult serveBody(const std::string &body);

    CacheCounters cacheCounters() const { return cache_.counters(); }
    BrokerCounters counters() const;

  private:
    ResultCache cache_;
    unsigned jobs_;

    mutable std::mutex mutex_;
    BrokerCounters counters_;
};

/**
 * Run @p unit's simulation with a streaming cycle-conservation
 * auditor attached and reconcile the trace against the reported
 * statistics (docs/TRACE.md). Exposed for the unit tests.
 */
UnitResult runAuditedUnit(const SimUnit &unit);

} // namespace rr::serve

#endif // RR_SERVE_BROKER_HH
