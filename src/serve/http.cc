#include "serve/http.hh"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cctype>
#include <cerrno>
#include <cstring>

#include "base/parse_num.hh"

namespace rr::serve {

namespace {

/** Read with a per-call timeout; 0 on EOF, -1 on error/timeout. */
ssize_t
readSome(int fd, char *buffer, std::size_t size, int timeout_ms)
{
    pollfd pfd{fd, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, timeout_ms);
    if (ready <= 0)
        return -1;
    return ::read(fd, buffer, size);
}

bool
writeAll(int fd, const char *data, std::size_t size)
{
    while (size > 0) {
        // MSG_NOSIGNAL: a peer that hung up means a failed write,
        // never a SIGPIPE process kill.
        const ssize_t wrote =
            ::send(fd, data, size, MSG_NOSIGNAL);
        if (wrote <= 0) {
            if (wrote < 0 && errno == EINTR)
                continue;
            return false;
        }
        data += wrote;
        size -= static_cast<std::size_t>(wrote);
    }
    return true;
}

bool
equalsIgnoreCase(const std::string &a, const std::string &b)
{
    if (a.size() != b.size())
        return false;
    for (std::size_t i = 0; i < a.size(); ++i) {
        if (std::tolower(static_cast<unsigned char>(a[i])) !=
            std::tolower(static_cast<unsigned char>(b[i])))
            return false;
    }
    return true;
}

std::string
trimmed(const std::string &text)
{
    std::size_t lo = 0;
    std::size_t hi = text.size();
    while (lo < hi &&
           std::isspace(static_cast<unsigned char>(text[lo])))
        ++lo;
    while (hi > lo &&
           std::isspace(static_cast<unsigned char>(text[hi - 1])))
        --hi;
    return text.substr(lo, hi - lo);
}

HttpRequest
requestError(int status, std::string reason)
{
    HttpRequest out;
    out.errorStatus = status;
    out.errorReason = std::move(reason);
    return out;
}

constexpr int kReadTimeoutMs = 5000;

} // namespace

HttpRequest
readHttpRequest(int fd, std::size_t max_body)
{
    // Accumulate until the blank line ending the header block.
    std::string data;
    std::size_t header_end = std::string::npos;
    while (header_end == std::string::npos) {
        if (data.size() > kMaxHeaderBytes)
            return requestError(431, "header block too large");
        char buffer[2048];
        const ssize_t got =
            readSome(fd, buffer, sizeof buffer, kReadTimeoutMs);
        if (got < 0)
            return requestError(408, "timed out reading request");
        if (got == 0)
            return requestError(400, "connection closed mid-request");
        data.append(buffer, static_cast<std::size_t>(got));
        header_end = data.find("\r\n\r\n");
    }

    // Request line: METHOD SP target SP HTTP/1.x
    const std::size_t line_end = data.find("\r\n");
    const std::string line = data.substr(0, line_end);
    const std::size_t sp1 = line.find(' ');
    const std::size_t sp2 =
        sp1 == std::string::npos ? sp1 : line.find(' ', sp1 + 1);
    if (sp2 == std::string::npos ||
        line.compare(sp2 + 1, 7, "HTTP/1.") != 0)
        return requestError(400, "malformed request line");

    HttpRequest request;
    request.method = line.substr(0, sp1);
    request.target = line.substr(sp1 + 1, sp2 - sp1 - 1);

    // Headers: only the framing ones matter, but reject transfer
    // encodings this subset does not implement.
    uint64_t content_length = 0;
    bool have_length = false;
    std::size_t pos = line_end + 2;
    while (pos < header_end) {
        std::size_t eol = data.find("\r\n", pos);
        const std::string header = data.substr(pos, eol - pos);
        pos = eol + 2;
        const std::size_t colon = header.find(':');
        if (colon == std::string::npos)
            return requestError(400, "malformed header line");
        const std::string name = header.substr(0, colon);
        const std::string value = trimmed(header.substr(colon + 1));
        if (equalsIgnoreCase(name, "content-length")) {
            if (!parseUnsigned(value.c_str(), content_length))
                return requestError(400, "bad Content-Length");
            have_length = true;
        } else if (equalsIgnoreCase(name, "transfer-encoding")) {
            return requestError(501,
                                "transfer encodings not supported");
        }
    }

    if (request.method == "POST" && !have_length)
        return requestError(411, "POST requires Content-Length");
    if (content_length > max_body)
        return requestError(413, "request body exceeds the limit");

    request.body = data.substr(header_end + 4);
    if (request.body.size() > content_length)
        return requestError(400, "body longer than Content-Length");
    while (request.body.size() < content_length) {
        char buffer[4096];
        const ssize_t got =
            readSome(fd, buffer, sizeof buffer, kReadTimeoutMs);
        if (got < 0)
            return requestError(408, "timed out reading body");
        if (got == 0)
            return requestError(400, "connection closed mid-body");
        request.body.append(buffer, static_cast<std::size_t>(got));
        if (request.body.size() > content_length)
            return requestError(400,
                                "body longer than Content-Length");
    }
    return request;
}

const char *
httpReason(int status)
{
    switch (status) {
      case 200: return "OK";
      case 400: return "Bad Request";
      case 404: return "Not Found";
      case 405: return "Method Not Allowed";
      case 408: return "Request Timeout";
      case 411: return "Length Required";
      case 413: return "Payload Too Large";
      case 429: return "Too Many Requests";
      case 431: return "Request Header Fields Too Large";
      case 500: return "Internal Server Error";
      case 501: return "Not Implemented";
    }
    return "Unknown";
}

bool
writeHttpResponse(int fd, int status, const std::string &body,
                  const std::vector<std::string> &extra_headers)
{
    std::string out = "HTTP/1.1 " + std::to_string(status) + " " +
                      httpReason(status) + "\r\n";
    out += "Content-Type: application/json\r\n";
    out += "Content-Length: " + std::to_string(body.size()) + "\r\n";
    for (const std::string &header : extra_headers)
        out += header + "\r\n";
    out += "Connection: close\r\n\r\n";
    out += body;
    return writeAll(fd, out.data(), out.size());
}

std::string
HttpResponse::header(const std::string &name) const
{
    for (const auto &[key, value] : headers) {
        if (equalsIgnoreCase(key, name))
            return value;
    }
    return "";
}

namespace {

int
connectLoopback(uint16_t port)
{
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0)
        return -1;
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    if (::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                  sizeof addr) != 0) {
        ::close(fd);
        return -1;
    }
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
    return fd;
}

/** Issue one request and parse the whole reply (until EOF). */
HttpResponse
roundTrip(uint16_t port, const std::string &wire)
{
    HttpResponse response;
    const int fd = connectLoopback(port);
    if (fd < 0)
        return response;
    if (!writeAll(fd, wire.data(), wire.size())) {
        ::close(fd);
        return response;
    }
    std::string data;
    for (;;) {
        char buffer[4096];
        const ssize_t got =
            readSome(fd, buffer, sizeof buffer, kReadTimeoutMs);
        if (got < 0) {
            ::close(fd);
            return response; // timeout: report transport failure
        }
        if (got == 0)
            break;
        data.append(buffer, static_cast<std::size_t>(got));
    }
    ::close(fd);

    const std::size_t header_end = data.find("\r\n\r\n");
    if (header_end == std::string::npos ||
        data.compare(0, 9, "HTTP/1.1 ") != 0)
        return response;
    uint64_t status = 0;
    if (!parseUnsigned(data.substr(9, 3).c_str(), status, 599))
        return response;
    response.status = static_cast<int>(status);
    std::size_t pos = data.find("\r\n") + 2;
    while (pos < header_end) {
        const std::size_t eol = data.find("\r\n", pos);
        const std::string header = data.substr(pos, eol - pos);
        pos = eol + 2;
        const std::size_t colon = header.find(':');
        if (colon != std::string::npos)
            response.headers.emplace_back(
                header.substr(0, colon),
                trimmed(header.substr(colon + 1)));
    }
    response.body = data.substr(header_end + 4);
    return response;
}

} // namespace

HttpResponse
httpPost(uint16_t port, const std::string &target,
         const std::string &body)
{
    const std::string wire =
        "POST " + target + " HTTP/1.1\r\n" +
        "Host: 127.0.0.1\r\n" +
        "Content-Type: application/json\r\n" +
        "Content-Length: " + std::to_string(body.size()) +
        "\r\n\r\n" + body;
    return roundTrip(port, wire);
}

HttpResponse
httpGet(uint16_t port, const std::string &target)
{
    const std::string wire = "GET " + target + " HTTP/1.1\r\n" +
                             "Host: 127.0.0.1\r\n\r\n";
    return roundTrip(port, wire);
}

bool
Listener::open(uint16_t port, int backlog)
{
    close();
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd_ < 0) {
        error_ = std::strerror(errno);
        return false;
    }
    const int one = 1;
    ::setsockopt(fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    if (::bind(fd_, reinterpret_cast<sockaddr *>(&addr),
               sizeof addr) != 0 ||
        ::listen(fd_, backlog) != 0) {
        error_ = std::strerror(errno);
        close();
        return false;
    }
    socklen_t len = sizeof addr;
    if (::getsockname(fd_, reinterpret_cast<sockaddr *>(&addr),
                      &len) != 0) {
        error_ = std::strerror(errno);
        close();
        return false;
    }
    port_ = ntohs(addr.sin_port);
    return true;
}

int
Listener::acceptOnce(int timeout_ms)
{
    if (fd_ < 0)
        return -1;
    pollfd pfd{fd_, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, timeout_ms);
    if (ready <= 0)
        return -1;
    const int fd = ::accept(fd_, nullptr, nullptr);
    if (fd >= 0) {
        const int one = 1;
        ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
    }
    return fd;
}

void
Listener::close()
{
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
    port_ = 0;
}

} // namespace rr::serve
