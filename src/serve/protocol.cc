#include "serve/protocol.hh"

#include <algorithm>
#include <cmath>

#include "base/stats.hh"
#include "exp/json_in.hh"
#include "exp/json_out.hh"
#include "exp/report.hh"
#include "exp/sweep.hh"

namespace rr::serve {

namespace {

[[noreturn]] void
reject(ErrorCode code, std::string message)
{
    throw ProtocolError{code, std::move(message)};
}

/** Reject members of @p object outside @p allowed. */
void
checkFields(const exp::JsonValue &object, const char *where,
            const std::vector<const char *> &allowed)
{
    for (const auto &[name, value] : object.members) {
        (void)value;
        bool known = false;
        for (const char *candidate : allowed)
            known = known || name == candidate;
        if (!known)
            reject(ErrorCode::BadRequest,
                   std::string("unknown field '") + where + "." +
                       name + "'");
    }
}

/** A member that, when present, must be a finite positive number. */
double
positiveNumber(const exp::JsonValue &object, const char *where,
               const char *name, double fallback)
{
    const exp::JsonValue *value = object.find(name);
    if (value == nullptr)
        return fallback;
    if (!value->isNumber() || !std::isfinite(value->number) ||
        value->number <= 0.0) {
        reject(ErrorCode::BadRequest,
               std::string("field '") + where + "." + name +
                   "' must be a positive number");
    }
    return value->number;
}

/** A member that, when present, must be an integer in [1, max]. */
unsigned
boundedUnsigned(const exp::JsonValue &object, const char *where,
                const char *name, unsigned fallback, unsigned max)
{
    const exp::JsonValue *value = object.find(name);
    if (value == nullptr)
        return fallback;
    if (!value->isNumber() || value->number < 1.0 ||
        value->number > static_cast<double>(max) ||
        value->number != std::floor(value->number)) {
        reject(ErrorCode::Limit,
               std::string("field '") + where + "." + name +
                   "' must be an integer in [1, " +
                   std::to_string(max) + "]");
    }
    return static_cast<unsigned>(value->number);
}

/** Sorted, deduplicated sweep list (or {fallback} when absent). */
std::vector<double>
sweepValues(const exp::JsonValue &object, const char *where,
            const char *name, double fallback)
{
    const exp::JsonValue *value = object.find(name);
    if (value == nullptr)
        return {fallback};
    if (!value->isArray() || value->elements.empty())
        reject(ErrorCode::BadRequest,
               std::string("field '") + where + "." + name +
                   "' must be a non-empty array of numbers");
    if (value->elements.size() > kMaxSweepValues)
        reject(ErrorCode::Limit,
               std::string("field '") + where + "." + name +
                   "' exceeds " + std::to_string(kMaxSweepValues) +
                   " values");
    std::vector<double> out;
    for (const exp::JsonValue &element : value->elements) {
        if (!element.isNumber() || !std::isfinite(element.number) ||
            element.number <= 0.0) {
            reject(ErrorCode::BadRequest,
                   std::string("field '") + where + "." + name +
                       "' must contain positive numbers");
        }
        out.push_back(element.number);
    }
    std::sort(out.begin(), out.end());
    out.erase(std::unique(out.begin(), out.end()), out.end());
    return out;
}

Family
parseFamily(const exp::JsonValue &spec)
{
    const exp::JsonValue *value = spec.find("family");
    if (value == nullptr)
        return Family::Cache;
    if (!value->isString())
        reject(ErrorCode::BadRequest,
               "field 'spec.family' must be a string");
    const std::string &name = value->string;
    if (name == "cache")
        return Family::Cache;
    if (name == "sync")
        return Family::Sync;
    if (name == "deterministic")
        return Family::Deterministic;
    reject(ErrorCode::BadRequest,
           "field 'spec.family' must be one of cache, sync, "
           "deterministic; got '" +
               name + "'");
}

std::vector<mt::ArchKind>
parseArchs(const exp::JsonValue &spec)
{
    const exp::JsonValue *value = spec.find("archs");
    if (value == nullptr)
        return {mt::ArchKind::Flexible, mt::ArchKind::FixedHw};
    if (!value->isArray() || value->elements.empty())
        reject(ErrorCode::BadRequest,
               "field 'spec.archs' must be a non-empty array of "
               "architecture names");
    std::vector<mt::ArchKind> out;
    for (const exp::JsonValue &element : value->elements) {
        if (!element.isString())
            reject(ErrorCode::BadRequest,
                   "field 'spec.archs' must contain strings");
        if (element.string == "flexible")
            out.push_back(mt::ArchKind::Flexible);
        else if (element.string == "fixed")
            out.push_back(mt::ArchKind::FixedHw);
        else if (element.string == "add")
            out.push_back(mt::ArchKind::AddReloc);
        else
            reject(ErrorCode::BadRequest,
                   "field 'spec.archs' must name flexible, fixed, "
                   "or add; got '" +
                       element.string + "'");
    }
    std::sort(out.begin(), out.end());
    out.erase(std::unique(out.begin(), out.end()), out.end());
    return out;
}

/** Append "name=value;" with shortest round-trip numbers. */
void
field(std::string &out, const char *name, double value)
{
    out += name;
    out += '=';
    out += exp::jsonNumber(value);
    out += ';';
}

void
field(std::string &out, const char *name, const std::string &value)
{
    out += name;
    out += '=';
    out += value;
    out += ';';
}

std::string
pointFields(const PointSpec &point)
{
    std::string out;
    field(out, "family", familyName(point.family));
    field(out, "threads", point.threads);
    field(out, "regs", point.numRegs);
    field(out, "min", point.minContextSize);
    field(out, "demand",
          exp::jsonNumber(point.regsLo) + ".." +
              exp::jsonNumber(point.regsHi));
    field(out, "fixedRegs", point.fixedContextRegs);
    return out;
}

std::string
joined(const std::vector<double> &values)
{
    std::string out;
    for (double value : values) {
        if (!out.empty())
            out += ',';
        out += exp::jsonNumber(value);
    }
    return out;
}

} // namespace

const char *
errorCodeName(ErrorCode code)
{
    switch (code) {
      case ErrorCode::BadJson: return "bad-json";
      case ErrorCode::BadRequest: return "bad-request";
      case ErrorCode::BadSpec: return "bad-spec";
      case ErrorCode::Limit: return "limit";
      case ErrorCode::TooLarge: return "too-large";
      case ErrorCode::NotFound: return "not-found";
      case ErrorCode::MethodNotAllowed: return "method-not-allowed";
      case ErrorCode::OverCapacity: return "over-capacity";
      case ErrorCode::AuditFailure: return "audit-failure";
    }
    return "internal";
}

int
errorHttpStatus(ErrorCode code)
{
    switch (code) {
      case ErrorCode::BadJson:
      case ErrorCode::BadRequest:
      case ErrorCode::BadSpec:
      case ErrorCode::Limit:
        return 400;
      case ErrorCode::TooLarge: return 413;
      case ErrorCode::NotFound: return 404;
      case ErrorCode::MethodNotAllowed: return 405;
      case ErrorCode::OverCapacity: return 429;
      case ErrorCode::AuditFailure: return 500;
    }
    return 500;
}

std::string
errorDocument(const ProtocolError &error)
{
    exp::JsonWriter w;
    w.beginObject();
    w.key("schema");
    w.value("rr.serve.error.v1");
    w.key("code");
    w.value(errorCodeName(error.code));
    w.key("status");
    w.value(errorHttpStatus(error.code));
    w.key("message");
    w.value(error.message);
    w.endObject();
    return w.str() + "\n";
}

const char *
familyName(Family family)
{
    switch (family) {
      case Family::Cache: return "cache";
      case Family::Sync: return "sync";
      case Family::Deterministic: return "deterministic";
    }
    return "unknown";
}

ServeRequest
parseRequest(const std::string &body)
{
    std::string error;
    const auto doc = exp::parseJson(body, &error);
    if (!doc)
        reject(ErrorCode::BadJson, error);
    if (!doc->isObject())
        reject(ErrorCode::BadRequest,
               "request body must be a JSON object");
    checkFields(*doc, "request", {"spec", "sweep"});

    const exp::JsonValue *spec = doc->find("spec");
    if (spec == nullptr || !spec->isObject())
        reject(ErrorCode::BadRequest,
               "request requires a 'spec' object");
    checkFields(*spec, "spec",
                {"family", "runLength", "latency", "archs", "threads",
                 "numRegs", "minContextSize", "regsLo", "regsHi",
                 "fixedContextRegs", "seeds"});

    ServeRequest request;
    request.base.family = parseFamily(*spec);
    request.base.runLength =
        positiveNumber(*spec, "spec", "runLength", 32.0);
    request.base.latency =
        positiveNumber(*spec, "spec", "latency", 200.0);
    request.base.threads =
        boundedUnsigned(*spec, "spec", "threads", 64, kMaxThreads);
    request.base.numRegs =
        boundedUnsigned(*spec, "spec", "numRegs", 128, 1u << 16);
    request.base.minContextSize = boundedUnsigned(
        *spec, "spec", "minContextSize", 4, 1u << 16);
    request.base.regsLo =
        boundedUnsigned(*spec, "spec", "regsLo", 6, 1u << 16);
    request.base.regsHi =
        boundedUnsigned(*spec, "spec", "regsHi", 24, 1u << 16);
    request.base.fixedContextRegs = boundedUnsigned(
        *spec, "spec", "fixedContextRegs", 32, 1u << 16);
    request.seeds =
        boundedUnsigned(*spec, "spec", "seeds", 3, kMaxSeeds);
    request.archs = parseArchs(*spec);

    request.runLengths = {request.base.runLength};
    request.latencies = {request.base.latency};
    if (const exp::JsonValue *sweep = doc->find("sweep")) {
        if (!sweep->isObject())
            reject(ErrorCode::BadRequest,
                   "field 'sweep' must be an object");
        checkFields(*sweep, "sweep", {"runLengths", "latencies"});
        request.runLengths = sweepValues(*sweep, "sweep",
                                         "runLengths",
                                         request.base.runLength);
        request.latencies = sweepValues(*sweep, "sweep", "latencies",
                                        request.base.latency);
    }

    if (request.units() > kMaxUnits)
        reject(ErrorCode::Limit,
               "request expands to " +
                   std::to_string(request.units()) +
                   " simulations; the limit is " +
                   std::to_string(kMaxUnits));

    // Probe the SimulationSpec validator once, so invalid settings
    // (a non-power-of-two minContextSize, a demand that cannot fit a
    // context) fail here with a protocol error instead of mid-batch.
    for (mt::ArchKind arch : request.archs) {
        SimUnit probe;
        probe.point = request.base;
        probe.arch = arch;
        try {
            (void)makeSpec(probe).build();
        } catch (const mt::SpecError &e) {
            reject(ErrorCode::BadSpec, e.what());
        }
    }
    return request;
}

std::string
canonicalKey(const ServeRequest &request)
{
    std::string out = pointFields(request.base);
    // The base point's R and L only matter through the sweep lists.
    field(out, "runs", joined(request.runLengths));
    field(out, "lats", joined(request.latencies));
    std::string archs;
    for (mt::ArchKind arch : request.archs) {
        if (!archs.empty())
            archs += ',';
        archs += mt::archName(arch);
    }
    field(out, "archs", archs);
    field(out, "seeds", request.seeds);
    return out;
}

std::string
unitKey(const SimUnit &unit)
{
    std::string out = pointFields(unit.point);
    field(out, "R", unit.point.runLength);
    field(out, "L", unit.point.latency);
    field(out, "arch", mt::archName(unit.arch));
    field(out, "seed", static_cast<double>(unit.seed));
    return out;
}

std::vector<SimUnit>
expandUnits(const ServeRequest &request)
{
    std::vector<SimUnit> units;
    units.reserve(request.units());
    for (double run : request.runLengths) {
        for (double latency : request.latencies) {
            for (mt::ArchKind arch : request.archs) {
                for (unsigned seed = 1; seed <= request.seeds;
                     ++seed) {
                    SimUnit unit;
                    unit.point = request.base;
                    unit.point.runLength = run;
                    unit.point.latency = latency;
                    unit.arch = arch;
                    unit.seed = seed;
                    units.push_back(unit);
                }
            }
        }
    }
    return units;
}

mt::SimulationSpec
makeSpec(const SimUnit &unit)
{
    const PointSpec &p = unit.point;
    mt::SimulationSpec spec;
    switch (p.family) {
      case Family::Cache:
        spec.cacheFaults(p.runLength,
                         static_cast<uint64_t>(p.latency));
        break;
      case Family::Sync:
        spec.syncFaults(p.runLength, p.latency);
        break;
      case Family::Deterministic:
        spec.deterministicFaults(
            static_cast<uint64_t>(p.runLength),
            static_cast<uint64_t>(p.latency));
        break;
    }
    spec.arch(unit.arch)
        .threads(p.threads)
        .numRegs(p.numRegs)
        .minContextSize(p.minContextSize)
        .fixedContextRegs(p.fixedContextRegs)
        .registerDemand(p.regsLo, p.regsHi)
        .seed(unit.seed);
    return spec;
}

std::string
resultDocument(const ServeRequest &request,
               const std::vector<UnitResult> &results)
{
    exp::ReportBuilder builder(
        "serve", "rrserve simulation result",
        exp::RunMeta{request.seeds, request.base.threads, false});
    builder.text("request " + canonicalKey(request));

    Table table({"family", "R", "L", "arch", "seeds", "efficiency",
                 "stddev", "ci95", "resident"});
    std::size_t index = 0;
    for (double run : request.runLengths) {
        for (double latency : request.latencies) {
            for (mt::ArchKind arch : request.archs) {
                RunningStats eff;
                RunningStats resident;
                for (unsigned seed = 0; seed < request.seeds;
                     ++seed, ++index) {
                    eff.add(results[index].efficiency);
                    resident.add(results[index].resident);
                }
                table.addRow(
                    {familyName(request.base.family),
                     exp::jsonNumber(run), exp::jsonNumber(latency),
                     mt::archName(arch), Table::num(request.seeds),
                     Table::num(eff.mean(), 6),
                     Table::num(eff.stddev(), 6),
                     Table::num(exp::ci95HalfWidth(eff.stddev(),
                                                   request.seeds),
                                6),
                     Table::num(resident.mean(), 3)});
            }
        }
    }
    builder.table("results", "central-window efficiency per point",
                  std::move(table));
    return builder.takeReport().toJson();
}

} // namespace rr::serve
