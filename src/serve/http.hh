/**
 * @file
 * Minimal HTTP/1.1 transport for rrserve: plain POSIX sockets, no
 * dependencies, in the spirit of the repo's own JSON layer
 * (src/exp/json_out.hh) — exactly the subset the protocol needs,
 * parsed strictly.
 *
 * Supported: one request per connection (`Connection: close`
 * semantics), request line + headers + Content-Length body, with
 * hard caps on header and body size. Unsupported constructs
 * (chunked transfer, upgrades) are answered with clean HTTP errors,
 * never ignored. Responses carry no Date header and a fixed header
 * order, so a response's bytes are a pure function of its content —
 * part of the cache byte-identity contract (docs/SERVE.md).
 *
 * The client half (httpPost/httpGet) exists for the built-in load
 * generator (hammer.hh) and the tests; it speaks to any HTTP/1.1
 * server on the loopback.
 */

#ifndef RR_SERVE_HTTP_HH
#define RR_SERVE_HTTP_HH

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace rr::serve {

inline constexpr std::size_t kMaxHeaderBytes = 8192;

/** A parsed request (or the error to answer instead). */
struct HttpRequest
{
    std::string method; ///< "GET" | "POST" | ...
    std::string target; ///< path, query string included
    std::string body;

    /** 0 when parsing succeeded; otherwise the status to answer. */
    int errorStatus = 0;
    std::string errorReason;

    bool ok() const { return errorStatus == 0; }
};

/**
 * Read and parse one request from @p fd. Bodies larger than
 * @p max_body yield errorStatus 413 (the connection is not drained);
 * malformed framing yields 400, missing length on POST 411, chunked
 * transfer 501, and a read timeout 408.
 */
HttpRequest readHttpRequest(int fd, std::size_t max_body);

/** The standard reason phrase for @p status. */
const char *httpReason(int status);

/**
 * Write a complete response: status line, fixed headers
 * (Content-Type: application/json, Content-Length, Connection:
 * close), @p extra_headers verbatim ("Name: value" lines, no CRLF),
 * then @p body.
 * @return false when the peer went away mid-write.
 */
bool writeHttpResponse(int fd, int status, const std::string &body,
                       const std::vector<std::string> &extra_headers =
                           {});

/** A client-side response (hammer and tests). */
struct HttpResponse
{
    int status = 0; ///< 0 = transport failure (connect/read error)
    std::string body;
    std::vector<std::pair<std::string, std::string>> headers;

    /** Header value by case-insensitive name; "" when absent. */
    std::string header(const std::string &name) const;
};

/** POST @p body to 127.0.0.1:@p port @p target; blocks for reply. */
HttpResponse httpPost(uint16_t port, const std::string &target,
                      const std::string &body);

/** GET @p target from 127.0.0.1:@p port. */
HttpResponse httpGet(uint16_t port, const std::string &target);

/** Loopback listener with a poll-based, interruptible accept. */
class Listener
{
  public:
    Listener() = default;
    ~Listener() { close(); }
    Listener(const Listener &) = delete;
    Listener &operator=(const Listener &) = delete;

    /**
     * Bind and listen on 127.0.0.1:@p port (0 = ephemeral).
     * @return false with a message in error() on failure.
     */
    bool open(uint16_t port, int backlog = 128);

    /** The bound port (after open(); resolves port 0). */
    uint16_t port() const { return port_; }

    /**
     * Accept one connection, waiting at most @p timeout_ms.
     * @return the connection fd, or -1 on timeout/closed listener.
     */
    int acceptOnce(int timeout_ms);

    void close();

    const std::string &error() const { return error_; }

  private:
    int fd_ = -1;
    uint16_t port_ = 0;
    std::string error_;
};

} // namespace rr::serve

#endif // RR_SERVE_HTTP_HH
