#include "ckpt/io.hh"

#include <cstdio>
#include <cstring>

namespace rr::ckpt {

const char kMagic[8] = {'r', 'r', 'c', 'k', 'p', 't', '1', '\n'};

namespace {

constexpr uint32_t kTrailerTag = 0xffffffffu;

/** Largest element count any vector field may claim. Documents are
 * whole simulation states — far below this — so anything larger is a
 * hostile length, rejected before the allocation it would imply. */
constexpr uint64_t kMaxElements = 1ull << 32;

std::string
hex(uint64_t v)
{
    char buf[32];
    std::snprintf(buf, sizeof buf, "0x%llx",
                  static_cast<unsigned long long>(v));
    return buf;
}

const char *
typeName(FieldType t)
{
    switch (t) {
      case FieldType::U64: return "u64";
      case FieldType::F64: return "f64";
      case FieldType::Str: return "str";
      case FieldType::Bytes: return "bytes";
      case FieldType::U64Vec: return "u64vec";
      case FieldType::U32Vec: return "u32vec";
    }
    return "?";
}

} // namespace

uint64_t
fnv1a(const uint8_t *data, size_t size)
{
    uint64_t hash = 0xcbf29ce484222325ull;
    for (size_t i = 0; i < size; ++i) {
        hash ^= data[i];
        hash *= 0x100000001b3ull;
    }
    return hash;
}

// ---------------------------------------------------------------------
// Writer

void
Writer::putU8(uint8_t v)
{
    body_.push_back(v);
}

void
Writer::putU32(uint32_t v)
{
    for (int i = 0; i < 4; ++i)
        body_.push_back(static_cast<uint8_t>(v >> (8 * i)));
}

void
Writer::putU64(uint64_t v)
{
    for (int i = 0; i < 8; ++i)
        body_.push_back(static_cast<uint8_t>(v >> (8 * i)));
}

void
Writer::beginSection(uint32_t tag)
{
    if (sealed_)
        throw Error("writer already sealed");
    if (inSection_)
        throw Error("nested section");
    putU32(tag);
    sectionLengthAt_ = body_.size();
    putU64(0); // patched by endSection()
    inSection_ = true;
}

void
Writer::endSection()
{
    if (!inSection_)
        throw Error("endSection outside a section");
    const uint64_t length = body_.size() - (sectionLengthAt_ + 8);
    for (int i = 0; i < 8; ++i)
        body_[sectionLengthAt_ + static_cast<size_t>(i)] =
            static_cast<uint8_t>(length >> (8 * i));
    inSection_ = false;
}

void
Writer::fieldHeader(uint32_t tag, FieldType type)
{
    if (!inSection_)
        throw Error("field emitted outside a section");
    putU32(tag);
    putU8(static_cast<uint8_t>(type));
}

void
Writer::u64(uint32_t tag, uint64_t value)
{
    fieldHeader(tag, FieldType::U64);
    putU64(value);
}

void
Writer::f64(uint32_t tag, double value)
{
    uint64_t bits = 0;
    static_assert(sizeof bits == sizeof value, "f64 width");
    std::memcpy(&bits, &value, sizeof bits);
    fieldHeader(tag, FieldType::F64);
    putU64(bits);
}

void
Writer::str(uint32_t tag, const std::string &value)
{
    fieldHeader(tag, FieldType::Str);
    putU64(value.size());
    body_.insert(body_.end(), value.begin(), value.end());
}

void
Writer::bytes(uint32_t tag, const std::vector<uint8_t> &value)
{
    fieldHeader(tag, FieldType::Bytes);
    putU64(value.size());
    body_.insert(body_.end(), value.begin(), value.end());
}

void
Writer::u64vec(uint32_t tag, const std::vector<uint64_t> &value)
{
    fieldHeader(tag, FieldType::U64Vec);
    putU64(value.size());
    for (const uint64_t v : value)
        putU64(v);
}

void
Writer::u32vec(uint32_t tag, const std::vector<uint32_t> &value)
{
    fieldHeader(tag, FieldType::U32Vec);
    putU64(value.size());
    for (const uint32_t v : value)
        putU32(v);
}

std::vector<uint8_t>
Writer::seal()
{
    if (inSection_)
        throw Error("seal inside an open section");
    if (sealed_)
        throw Error("writer already sealed");
    sealed_ = true;

    std::vector<uint8_t> out;
    out.reserve(sizeof kMagic + body_.size() + 12);
    out.insert(out.end(), kMagic, kMagic + sizeof kMagic);
    out.insert(out.end(), body_.begin(), body_.end());

    const uint64_t hash = fnv1a(body_.data(), body_.size());
    for (int i = 0; i < 4; ++i)
        out.push_back(static_cast<uint8_t>(kTrailerTag >> (8 * i)));
    for (int i = 0; i < 8; ++i)
        out.push_back(static_cast<uint8_t>(hash >> (8 * i)));
    return out;
}

// ---------------------------------------------------------------------
// Reader

namespace {

/** Bounds-checked little-endian cursor over the document body. */
class Cursor
{
  public:
    Cursor(const uint8_t *data, size_t size)
        : data_(data), size_(size)
    {
    }

    size_t at() const { return at_; }
    size_t remaining() const { return size_ - at_; }

    uint8_t
    u8()
    {
        need(1, "byte");
        return data_[at_++];
    }

    uint32_t
    u32()
    {
        need(4, "u32");
        uint32_t v = 0;
        for (int i = 0; i < 4; ++i)
            v |= static_cast<uint32_t>(data_[at_ + static_cast<size_t>(i)])
                 << (8 * i);
        at_ += 4;
        return v;
    }

    uint64_t
    u64()
    {
        need(8, "u64");
        uint64_t v = 0;
        for (int i = 0; i < 8; ++i)
            v |= static_cast<uint64_t>(data_[at_ + static_cast<size_t>(i)])
                 << (8 * i);
        at_ += 8;
        return v;
    }

    const uint8_t *
    raw(uint64_t count, const char *what)
    {
        need(count, what);
        const uint8_t *p = data_ + at_;
        at_ += static_cast<size_t>(count);
        return p;
    }

  private:
    void
    need(uint64_t count, const char *what)
    {
        if (count > size_ - at_)
            throw Error(std::string("truncated document reading ") +
                        what + " at offset " + hex(at_));
    }

    const uint8_t *data_;
    size_t size_;
    size_t at_ = 0;
};

} // namespace

Reader::Reader(const std::vector<uint8_t> &document)
{
    if (document.size() < sizeof kMagic ||
        std::memcmp(document.data(), kMagic, sizeof kMagic) != 0)
        throw Error("bad magic (not an rr.ckpt.v1 document)");

    // Locate and verify the trailer before trusting any length.
    if (document.size() < sizeof kMagic + 12)
        throw Error("truncated document (no checksum trailer)");
    const size_t bodySize = document.size() - sizeof kMagic - 12;
    const uint8_t *body = document.data() + sizeof kMagic;

    Cursor trailer(body + bodySize, 12);
    if (trailer.u32() != kTrailerTag)
        throw Error("missing checksum trailer");
    const uint64_t stored = trailer.u64();
    const uint64_t actual = fnv1a(body, bodySize);
    if (stored != actual)
        throw Error("checksum mismatch: stored " + hex(stored) +
                    ", computed " + hex(actual));

    Cursor cur(body, bodySize);
    while (cur.remaining() > 0) {
        const uint32_t sectionTag = cur.u32();
        const uint64_t sectionLength = cur.u64();
        if (sectionLength > cur.remaining())
            throw Error("section " + hex(sectionTag) +
                        " claims " + hex(sectionLength) +
                        " bytes but only " + hex(cur.remaining()) +
                        " remain");
        if (!sections_.emplace(sectionTag,
                               std::map<uint32_t, Field>{})
                 .second)
            throw Error("duplicate section tag " + hex(sectionTag));
        std::map<uint32_t, Field> &fields = sections_[sectionTag];

        const size_t sectionEnd =
            cur.at() + static_cast<size_t>(sectionLength);
        while (cur.at() < sectionEnd) {
            const uint32_t fieldTag = cur.u32();
            const uint8_t typeByte = cur.u8();
            Field field;
            switch (typeByte) {
              case static_cast<uint8_t>(FieldType::U64):
              case static_cast<uint8_t>(FieldType::F64):
                field.type = static_cast<FieldType>(typeByte);
                field.scalar = cur.u64();
                break;
              case static_cast<uint8_t>(FieldType::Str):
              case static_cast<uint8_t>(FieldType::Bytes): {
                field.type = static_cast<FieldType>(typeByte);
                const uint64_t n = cur.u64();
                if (n > kMaxElements)
                    throw Error("field " + hex(fieldTag) +
                                " claims an implausible length " +
                                hex(n));
                const uint8_t *p = cur.raw(n, "string payload");
                field.blob.assign(p, p + n);
                break;
              }
              case static_cast<uint8_t>(FieldType::U64Vec): {
                field.type = FieldType::U64Vec;
                const uint64_t n = cur.u64();
                if (n > kMaxElements)
                    throw Error("field " + hex(fieldTag) +
                                " claims an implausible count " +
                                hex(n));
                field.vec64.reserve(static_cast<size_t>(n));
                for (uint64_t i = 0; i < n; ++i)
                    field.vec64.push_back(cur.u64());
                break;
              }
              case static_cast<uint8_t>(FieldType::U32Vec): {
                field.type = FieldType::U32Vec;
                const uint64_t n = cur.u64();
                if (n > kMaxElements)
                    throw Error("field " + hex(fieldTag) +
                                " claims an implausible count " +
                                hex(n));
                field.vec32.reserve(static_cast<size_t>(n));
                for (uint64_t i = 0; i < n; ++i)
                    field.vec32.push_back(cur.u32());
                break;
              }
              default:
                throw Error("field " + hex(fieldTag) +
                            " in section " + hex(sectionTag) +
                            " has unknown type " +
                            hex(typeByte));
            }
            if (cur.at() > sectionEnd)
                throw Error("field " + hex(fieldTag) +
                            " overruns section " + hex(sectionTag));
            if (!fields.emplace(fieldTag, std::move(field)).second)
                throw Error("duplicate field tag " + hex(fieldTag) +
                            " in section " + hex(sectionTag));
        }
        if (cur.at() != sectionEnd)
            throw Error("section " + hex(sectionTag) +
                        " length does not land on a field boundary");
    }
}

bool
Reader::hasSection(uint32_t section) const
{
    return sections_.count(section) != 0;
}

bool
Reader::has(uint32_t section, uint32_t tag) const
{
    const auto s = sections_.find(section);
    return s != sections_.end() && s->second.count(tag) != 0;
}

const Reader::Field &
Reader::find(uint32_t section, uint32_t tag, FieldType type) const
{
    const auto s = sections_.find(section);
    if (s == sections_.end())
        throw Error("missing section " + hex(section));
    const auto f = s->second.find(tag);
    if (f == s->second.end())
        throw Error("section " + hex(section) +
                    " is missing field " + hex(tag));
    if (f->second.type != type)
        throw Error("section " + hex(section) + " field " +
                    hex(tag) + " has type " +
                    typeName(f->second.type) + ", expected " +
                    typeName(type));
    return f->second;
}

uint64_t
Reader::u64(uint32_t section, uint32_t tag) const
{
    return find(section, tag, FieldType::U64).scalar;
}

double
Reader::f64(uint32_t section, uint32_t tag) const
{
    const uint64_t bits = find(section, tag, FieldType::F64).scalar;
    double v = 0;
    std::memcpy(&v, &bits, sizeof v);
    return v;
}

std::string
Reader::str(uint32_t section, uint32_t tag) const
{
    const Field &f = find(section, tag, FieldType::Str);
    return std::string(f.blob.begin(), f.blob.end());
}

std::vector<uint8_t>
Reader::bytes(uint32_t section, uint32_t tag) const
{
    return find(section, tag, FieldType::Bytes).blob;
}

std::vector<uint64_t>
Reader::u64vec(uint32_t section, uint32_t tag) const
{
    return find(section, tag, FieldType::U64Vec).vec64;
}

std::vector<uint32_t>
Reader::u32vec(uint32_t section, uint32_t tag) const
{
    return find(section, tag, FieldType::U32Vec).vec32;
}

} // namespace rr::ckpt
