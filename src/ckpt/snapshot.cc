#include "ckpt/snapshot.hh"

#include <cstdio>

namespace rr::ckpt {

void
writeMeta(Writer &writer, const std::string &kind,
          const std::string &fingerprint)
{
    writer.beginSection(kSectionMeta);
    writer.u64(kMetaVersion, kVersion);
    writer.str(kMetaKind, kind);
    writer.str(kMetaFingerprint, fingerprint);
    writer.endSection();
}

void
checkMeta(const Reader &reader, const std::string &kind,
          const std::string &fingerprint)
{
    const uint64_t version = reader.u64(kSectionMeta, kMetaVersion);
    if (version != kVersion)
        throw Error("unsupported checkpoint version " +
                    std::to_string(version) + " (this build reads " +
                    std::to_string(kVersion) + ")");
    const std::string gotKind = reader.str(kSectionMeta, kMetaKind);
    if (gotKind != kind)
        throw Error("checkpoint kind is \"" + gotKind +
                    "\", expected \"" + kind + "\"");
    const std::string gotFp =
        reader.str(kSectionMeta, kMetaFingerprint);
    if (gotFp != fingerprint)
        throw Error(
            "cross-spec restore: checkpoint was taken under a "
            "different configuration\n  snapshot: " +
            gotFp + "\n  current:  " + fingerprint);
}

std::string
metaKind(const Reader &reader)
{
    if (reader.u64(kSectionMeta, kMetaVersion) != kVersion)
        throw Error("unsupported checkpoint version");
    return reader.str(kSectionMeta, kMetaKind);
}

std::vector<uint8_t>
readFile(const std::string &path)
{
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (!f)
        throw Error("cannot open checkpoint file: " + path);
    std::vector<uint8_t> out;
    uint8_t buf[65536];
    size_t n = 0;
    while ((n = std::fread(buf, 1, sizeof buf, f)) > 0)
        out.insert(out.end(), buf, buf + n);
    const bool bad = std::ferror(f) != 0;
    std::fclose(f);
    if (bad)
        throw Error("error reading checkpoint file: " + path);
    return out;
}

void
writeFile(const std::string &path,
          const std::vector<uint8_t> &document)
{
    std::FILE *f = std::fopen(path.c_str(), "wb");
    if (!f)
        throw Error("cannot create checkpoint file: " + path);
    const size_t wrote =
        std::fwrite(document.data(), 1, document.size(), f);
    const bool bad =
        wrote != document.size() || std::fclose(f) != 0;
    if (bad)
        throw Error("short write to checkpoint file: " + path);
    return;
}

} // namespace rr::ckpt
