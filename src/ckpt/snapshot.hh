/**
 * @file
 * The Snapshot/Restorable interface and rr.ckpt.v1 file helpers
 * (rr::ckpt).
 *
 * Every stateful simulation component implements Restorable:
 * saveState() emits one or more sections into a Writer,
 * restoreState() reads them back from a Reader. A checkpoint file is
 * a meta section (version, kind, spec fingerprint) followed by the
 * component sections; checkMeta() rejects version or kind mismatches
 * and cross-spec restores (snapshot from spec A into spec B) with a
 * ckpt::Error, which tools surface as exit code 2.
 *
 * The correctness contract (docs/CKPT.md): snapshot at any event
 * boundary, restore in a fresh process, and the remaining trace,
 * stats, and rr.bench.v1 output are byte-identical to the
 * uninterrupted run.
 */

#ifndef RR_CKPT_SNAPSHOT_HH
#define RR_CKPT_SNAPSHOT_HH

#include <cstdint>
#include <string>
#include <vector>

#include "ckpt/io.hh"

namespace rr::ckpt {

/** Format version of rr.ckpt.v1 documents. */
constexpr uint64_t kVersion = 1;

/** The meta section present in every checkpoint document. */
constexpr uint32_t kSectionMeta = 0x01;

/** Meta section fields. */
enum MetaField : uint32_t
{
    kMetaVersion = 1,     ///< u64, must equal kVersion
    kMetaKind = 2,        ///< str, e.g. "mt" or "machine"
    kMetaFingerprint = 3, ///< str, configuration fingerprint
};

/**
 * A component whose complete simulation-visible state can round-trip
 * through an rr.ckpt.v1 document. Implementations must be exact:
 * after restoreState(), continuing the simulation produces output
 * byte-identical to never having snapshotted. Derived or memoized
 * state (predecode caches, relocation tables) is rebuilt, not
 * trusted.
 */
class Restorable
{
  public:
    virtual ~Restorable() = default;

    /** Appends this component's sections to @p writer. */
    virtual void saveState(Writer &writer) const = 0;

    /**
     * Restores this component from @p reader. Throws ckpt::Error
     * when sections or fields are missing or incompatible; the
     * component may be left in an unspecified state on throw.
     */
    virtual void restoreState(const Reader &reader) = 0;
};

/** Writes the meta section: version, kind, spec fingerprint. */
void writeMeta(Writer &writer, const std::string &kind,
               const std::string &fingerprint);

/**
 * Validates the meta section: version must equal kVersion, kind and
 * fingerprint must match. A fingerprint mismatch means the snapshot
 * was taken under a different configuration (cross-spec restore) and
 * throws with both fingerprints in the message.
 */
void checkMeta(const Reader &reader, const std::string &kind,
               const std::string &fingerprint);

/** @return the kind string of @p reader's meta section. */
std::string metaKind(const Reader &reader);

/** Reads a whole file. Throws ckpt::Error when unreadable. */
std::vector<uint8_t> readFile(const std::string &path);

/** Writes @p document to @p path atomically enough for our use:
 * write to the final name, throw ckpt::Error on any short write. */
void writeFile(const std::string &path,
               const std::vector<uint8_t> &document);

} // namespace rr::ckpt

#endif // RR_CKPT_SNAPSHOT_HH
