/**
 * @file
 * rr.ckpt.v1 — field-tagged binary checkpoint container (rr::ckpt).
 *
 * The on-disk grammar (all integers little-endian):
 *
 *   Document := Magic Section* Trailer
 *   Magic    := "rrckpt1\n"                    (8 bytes)
 *   Section  := u32 tag, u64 byteLength, Field*
 *   Field    := u32 tag, u8 type, Payload
 *   Payload  := type U64:    u64 value
 *               type F64:    u64 IEEE-754 bit pattern
 *               type Str:    u64 length, bytes
 *               type Bytes:  u64 length, bytes
 *               type U64Vec: u64 count, u64 * count
 *               type U32Vec: u64 count, u32 * count
 *   Trailer  := u32 0xffffffff, u64 fnv1a-64 of every byte after
 *               Magic and before the Trailer
 *
 * Writers emit sections in call order; a Reader parses the whole
 * document up front (strict bounds checks on every length) and then
 * serves random-access typed lookups. Unknown section or field tags
 * are an error: the format is versioned, not extensible in place —
 * bump the version for schema changes.
 *
 * Everything here is dependency-free (in the style of exp/json_out)
 * and byte-deterministic: the same save sequence yields the same
 * bytes on every platform. Doubles are stored as bit patterns so a
 * restore is exact, never a parse-and-round.
 *
 * All failures throw ckpt::Error whose message begins "rr.ckpt: ";
 * tools translate that into exit code 2.
 */

#ifndef RR_CKPT_IO_HH
#define RR_CKPT_IO_HH

#include <cstdint>
#include <map>
#include <stdexcept>
#include <string>
#include <vector>

namespace rr::ckpt {

/** Raised for any malformed, truncated, or mismatched document. */
class Error : public std::runtime_error
{
  public:
    explicit Error(const std::string &what)
        : std::runtime_error("rr.ckpt: " + what)
    {
    }
};

/** The 8-byte document magic, including the newline. */
extern const char kMagic[8];

/** Field payload types (the wire `type` byte). */
enum class FieldType : uint8_t
{
    U64 = 1,
    F64 = 2,
    Str = 3,
    Bytes = 4,
    U64Vec = 5,
    U32Vec = 6,
};

/** FNV-1a 64-bit over @p size bytes at @p data (the trailer hash). */
uint64_t fnv1a(const uint8_t *data, size_t size);

/**
 * Serializes sections of tagged fields into an rr.ckpt.v1 document.
 * Usage: beginSection(tag), field emitters, endSection(), repeat;
 * then seal() to obtain the finished byte vector (magic + trailer).
 */
class Writer
{
  public:
    Writer() = default;

    /** Opens a section. Sections must not nest. */
    void beginSection(uint32_t tag);

    /** Closes the open section, patching its byte length. */
    void endSection();

    void u64(uint32_t tag, uint64_t value);
    void f64(uint32_t tag, double value);
    void str(uint32_t tag, const std::string &value);
    void bytes(uint32_t tag, const std::vector<uint8_t> &value);
    void u64vec(uint32_t tag, const std::vector<uint64_t> &value);
    void u32vec(uint32_t tag, const std::vector<uint32_t> &value);

    /**
     * Finishes the document: prepends the magic, appends the
     * checksum trailer, and returns the bytes. The writer must not
     * be reused afterwards.
     */
    std::vector<uint8_t> seal();

  private:
    void putU8(uint8_t v);
    void putU32(uint32_t v);
    void putU64(uint64_t v);
    void fieldHeader(uint32_t tag, FieldType type);

    std::vector<uint8_t> body_;
    bool inSection_ = false;
    size_t sectionLengthAt_ = 0; ///< offset of the open length slot
    bool sealed_ = false;
};

/**
 * Parses an rr.ckpt.v1 document completely up front and serves typed
 * field lookups. Every structural problem — bad magic, truncated
 * section or payload, unknown field type, checksum mismatch,
 * duplicate tags — throws ckpt::Error from the constructor; lookups
 * throw on missing sections/fields or type mismatches, so restore
 * code never needs its own validation.
 */
class Reader
{
  public:
    explicit Reader(const std::vector<uint8_t> &document);

    /** @return true when the document contains section @p tag. */
    bool hasSection(uint32_t section) const;

    /** @return true when @p section has a field @p tag. */
    bool has(uint32_t section, uint32_t tag) const;

    uint64_t u64(uint32_t section, uint32_t tag) const;
    double f64(uint32_t section, uint32_t tag) const;
    std::string str(uint32_t section, uint32_t tag) const;
    std::vector<uint8_t> bytes(uint32_t section, uint32_t tag) const;
    std::vector<uint64_t> u64vec(uint32_t section,
                                 uint32_t tag) const;
    std::vector<uint32_t> u32vec(uint32_t section,
                                 uint32_t tag) const;

  private:
    struct Field
    {
        FieldType type;
        uint64_t scalar = 0;         ///< U64 / F64 bit pattern
        std::vector<uint8_t> blob;   ///< Str / Bytes
        std::vector<uint64_t> vec64; ///< U64Vec
        std::vector<uint32_t> vec32; ///< U32Vec
    };

    const Field &find(uint32_t section, uint32_t tag,
                      FieldType type) const;

    std::map<uint32_t, std::map<uint32_t, Field>> sections_;
};

} // namespace rr::ckpt

#endif // RR_CKPT_IO_HH
