#include "base/stats.hh"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "base/logging.hh"

namespace rr {

void
RunningStats::add(double x)
{
    if (count_ == 0) {
        min_ = x;
        max_ = x;
    } else {
        min_ = std::min(min_, x);
        max_ = std::max(max_, x);
    }
    ++count_;
    sum_ += x;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (x - mean_);
}

double
RunningStats::mean() const
{
    return count_ == 0 ? 0.0 : mean_;
}

double
RunningStats::variance() const
{
    return count_ < 2 ? 0.0 : m2_ / static_cast<double>(count_ - 1);
}

double
RunningStats::stddev() const
{
    return std::sqrt(variance());
}

double
RunningStats::min() const
{
    return min_;
}

double
RunningStats::max() const
{
    return max_;
}

void
RunningStats::merge(const RunningStats &other)
{
    if (other.count_ == 0)
        return;
    if (count_ == 0) {
        *this = other;
        return;
    }
    const double n1 = static_cast<double>(count_);
    const double n2 = static_cast<double>(other.count_);
    const double delta = other.mean_ - mean_;
    const double n = n1 + n2;
    mean_ += delta * n2 / n;
    m2_ += other.m2_ + delta * delta * n1 * n2 / n;
    count_ += other.count_;
    sum_ += other.sum_;
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
}

void
IntervalRecorder::record(uint64_t time, uint64_t cumulative)
{
    if (!times_.empty()) {
        rr_assert(time >= times_.back(),
                  "non-monotonic time: ", time, " < ", times_.back());
        rr_assert(cumulative >= values_.back(),
                  "non-monotonic value: ", cumulative, " < ",
                  values_.back());
        // Collapse repeated samples at the same timestamp.
        if (time == times_.back()) {
            values_.back() = cumulative;
            return;
        }
    }
    times_.push_back(time);
    values_.push_back(cumulative);
}

void
IntervalRecorder::restore(std::vector<uint64_t> times,
                          std::vector<uint64_t> values)
{
    rr_assert(times.size() == values.size(),
              "restore: mismatched series lengths");
    times_ = std::move(times);
    values_ = std::move(values);
}

uint64_t
IntervalRecorder::endTime() const
{
    return times_.empty() ? 0 : times_.back();
}

uint64_t
IntervalRecorder::endValue() const
{
    return values_.empty() ? 0 : values_.back();
}

double
IntervalRecorder::valueAt(double t) const
{
    if (times_.empty())
        return 0.0;
    if (t <= static_cast<double>(times_.front()))
        return static_cast<double>(values_.front());
    if (t >= static_cast<double>(times_.back()))
        return static_cast<double>(values_.back());

    // First index with time > t.
    const auto it = std::upper_bound(times_.begin(), times_.end(),
                                     static_cast<uint64_t>(t));
    const size_t hi = static_cast<size_t>(it - times_.begin());
    const size_t lo = hi - 1;
    const double t0 = static_cast<double>(times_[lo]);
    const double t1 = static_cast<double>(times_[hi]);
    const double v0 = static_cast<double>(values_[lo]);
    const double v1 = static_cast<double>(values_[hi]);
    if (t1 <= t0)
        return v1;
    return v0 + (v1 - v0) * (t - t0) / (t1 - t0);
}

double
IntervalRecorder::windowRate(uint64_t t_begin, uint64_t t_end) const
{
    if (times_.empty() || t_end <= t_begin)
        return 0.0;
    const double v0 = valueAt(static_cast<double>(t_begin));
    const double v1 = valueAt(static_cast<double>(t_end));
    return (v1 - v0) / static_cast<double>(t_end - t_begin);
}

double
IntervalRecorder::centralRate(double lo_frac, double hi_frac) const
{
    if (times_.empty())
        return 0.0;
    const double end = static_cast<double>(endTime());
    const auto t0 = static_cast<uint64_t>(end * lo_frac);
    const auto t1 = static_cast<uint64_t>(end * hi_frac);
    if (t1 <= t0)
        return totalRate();
    return windowRate(t0, t1);
}

double
IntervalRecorder::totalRate() const
{
    if (times_.empty() || endTime() == 0)
        return 0.0;
    return static_cast<double>(endValue()) /
           static_cast<double>(endTime());
}

Histogram::Histogram(uint64_t bin_width, size_t num_bins)
    : bin_width_(bin_width), counts_(num_bins, 0)
{
    rr_assert(bin_width >= 1, "bin width must be >= 1");
    rr_assert(num_bins >= 1, "need at least one bin");
}

void
Histogram::add(uint64_t x)
{
    const uint64_t bin = x / bin_width_;
    if (bin < counts_.size())
        ++counts_[bin];
    else
        ++overflow_;
    ++total_;
}

uint64_t
Histogram::binCount(size_t i) const
{
    rr_assert(i < counts_.size(), "bin index out of range");
    return counts_[i];
}

std::string
Histogram::render() const
{
    std::ostringstream os;
    for (size_t i = 0; i < counts_.size(); ++i) {
        if (counts_[i] == 0)
            continue;
        os << "[" << i * bin_width_ << ", " << (i + 1) * bin_width_
           << "): " << counts_[i] << "\n";
    }
    if (overflow_ > 0)
        os << "overflow: " << overflow_ << "\n";
    return os.str();
}

} // namespace rr
