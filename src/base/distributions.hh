/**
 * @file
 * The stochastic distributions used by the paper's workloads
 * (Sections 3.2 and 3.3):
 *
 *  - geometric run lengths with mean R ("fixed probability of a fault
 *    on each execution cycle");
 *  - constant latency (cache faults, "lightly loaded networks");
 *  - exponential latency (synchronization faults, producer-consumer
 *    waiting);
 *  - uniform integer context sizes (C uniformly distributed 6..24);
 *  - degenerate/constant values (homogeneous context experiments).
 */

#ifndef RR_BASE_DISTRIBUTIONS_HH
#define RR_BASE_DISTRIBUTIONS_HH

#include <cstdint>
#include <memory>
#include <string>

#include "base/rng.hh"

namespace rr {

/**
 * A distribution over nonnegative cycle counts / register counts.
 * Samples are at least 1 for duration-like quantities; the minimum is
 * configured per concrete distribution.
 */
class Distribution
{
  public:
    virtual ~Distribution() = default;

    /** Draw one sample using the supplied generator. */
    virtual uint64_t sample(Rng &rng) const = 0;

    /** Exact mean of the distribution (for analytical comparisons). */
    virtual double mean() const = 0;

    /** Human-readable description, e.g. "geometric(mean=32)". */
    virtual std::string describe() const = 0;
};

/** Degenerate distribution: always returns the same value. */
class ConstantDist : public Distribution
{
  public:
    explicit ConstantDist(uint64_t value);

    uint64_t sample(Rng &rng) const override;
    double mean() const override;
    std::string describe() const override;

  private:
    uint64_t value_;
};

/**
 * Geometric distribution on {1, 2, 3, ...} with the given mean: a
 * fault occurs on each cycle with probability 1/mean, so run lengths
 * between faults are geometric (paper, Section 3.2).
 */
class GeometricDist : public Distribution
{
  public:
    explicit GeometricDist(double mean);

    uint64_t sample(Rng &rng) const override;
    double mean() const override;
    std::string describe() const override;

  private:
    double mean_;
};

/**
 * Exponential distribution with the given mean, rounded to whole
 * cycles with a minimum of 1 (paper, Section 3.3: synchronization wait
 * times are exponentially distributed).
 */
class ExponentialDist : public Distribution
{
  public:
    explicit ExponentialDist(double mean);

    uint64_t sample(Rng &rng) const override;
    double mean() const override;
    std::string describe() const override;

  private:
    double mean_;
};

/** Uniform integer distribution over the closed range [lo, hi]. */
class UniformIntDist : public Distribution
{
  public:
    UniformIntDist(uint64_t lo, uint64_t hi);

    uint64_t sample(Rng &rng) const override;
    double mean() const override;
    std::string describe() const override;

  private:
    uint64_t lo_;
    uint64_t hi_;
};

/** Convenience factories returning shared ownership handles. */
std::shared_ptr<Distribution> makeConstant(uint64_t value);
std::shared_ptr<Distribution> makeGeometric(double mean);
std::shared_ptr<Distribution> makeExponential(double mean);
std::shared_ptr<Distribution> makeUniformInt(uint64_t lo, uint64_t hi);

} // namespace rr

#endif // RR_BASE_DISTRIBUTIONS_HH
