/**
 * @file
 * Diagnostic logging helpers, patterned after gem5's logging.hh.
 *
 * panic()  — an internal invariant was violated; the simulator itself is
 *            broken. Aborts.
 * fatal()  — the simulation cannot continue due to a user error (bad
 *            configuration, invalid arguments). Exits with status 1.
 * warn()   — something may be modelled imprecisely but execution can
 *            continue.
 * inform() — status messages with no connotation of incorrect behaviour.
 */

#ifndef RR_BASE_LOGGING_HH
#define RR_BASE_LOGGING_HH

#include <cstdlib>
#include <sstream>
#include <string>

namespace rr {

namespace detail {

/** Format the variadic argument pack by streaming each piece. */
template <typename... Args>
std::string
formatMessage(Args &&...args)
{
    std::ostringstream os;
    (os << ... << args);
    return os.str();
}

/** Emit a panic message and abort. */
[[noreturn]] void panicImpl(const char *file, int line,
                            const std::string &msg);

/** Emit a fatal message and exit(1). */
[[noreturn]] void fatalImpl(const char *file, int line,
                            const std::string &msg);

/** Emit a warning message. */
void warnImpl(const char *file, int line, const std::string &msg);

/** Emit an informational message. */
void informImpl(const std::string &msg);

} // namespace detail

/** Enable or disable warn()/inform() output (tests silence it). */
void setLogOutputEnabled(bool enabled);

/** @return whether warn()/inform() output is currently enabled. */
bool logOutputEnabled();

} // namespace rr

#define rr_panic(...)                                                      \
    ::rr::detail::panicImpl(__FILE__, __LINE__,                            \
                            ::rr::detail::formatMessage(__VA_ARGS__))

#define rr_fatal(...)                                                      \
    ::rr::detail::fatalImpl(__FILE__, __LINE__,                            \
                            ::rr::detail::formatMessage(__VA_ARGS__))

#define rr_warn(...)                                                       \
    ::rr::detail::warnImpl(__FILE__, __LINE__,                             \
                           ::rr::detail::formatMessage(__VA_ARGS__))

#define rr_inform(...)                                                     \
    ::rr::detail::informImpl(::rr::detail::formatMessage(__VA_ARGS__))

/** Panic unless the given invariant holds. */
#define rr_assert(cond, ...)                                               \
    do {                                                                   \
        if (!(cond)) {                                                     \
            rr_panic("assertion failed: ", #cond, " ",                     \
                     ::rr::detail::formatMessage(__VA_ARGS__));            \
        }                                                                  \
    } while (0)

#endif // RR_BASE_LOGGING_HH
