/**
 * @file
 * Statistics collection for the simulators.
 *
 * The paper (Section 3.1) "extracted statistics over a substantial
 * fraction of the execution that avoided transient startup and
 * completion effects"; IntervalRecorder supports exactly that: it logs
 * a cumulative time series of (time, useful-cycles) points and can
 * compute efficiency over an arbitrary window of the run as well as
 * over the whole run.
 */

#ifndef RR_BASE_STATS_HH
#define RR_BASE_STATS_HH

#include <cstdint>
#include <string>
#include <vector>

namespace rr {

/** Running mean / variance / min / max accumulator (Welford). */
class RunningStats
{
  public:
    /** Add one observation. */
    void add(double x);

    /** Number of observations so far. */
    uint64_t count() const { return count_; }

    /** Sample mean (0 when empty). */
    double mean() const;

    /** Unbiased sample variance (0 when count < 2). */
    double variance() const;

    /** Sample standard deviation. */
    double stddev() const;

    /** Smallest observation (0 when empty). */
    double min() const;

    /** Largest observation (0 when empty). */
    double max() const;

    /** Sum of all observations. */
    double sum() const { return sum_; }

    /** Merge another accumulator into this one. */
    void merge(const RunningStats &other);

  private:
    uint64_t count_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
    double sum_ = 0.0;
};

/**
 * Cumulative (time, value) series used to compute windowed rates.
 * Points must be appended with non-decreasing time and value.
 */
class IntervalRecorder
{
  public:
    /** Record that by time @p time, @p cumulative units had accrued. */
    void record(uint64_t time, uint64_t cumulative);

    /** Total recorded span end time (0 when empty). */
    uint64_t endTime() const;

    /** Final cumulative value (0 when empty). */
    uint64_t endValue() const;

    /**
     * Rate of accrual (value per unit time) over the window
     * [t_begin, t_end], interpolating linearly between recorded
     * points. Returns 0 for an empty or zero-length window.
     */
    double windowRate(uint64_t t_begin, uint64_t t_end) const;

    /**
     * Rate over the central fraction of the run: the window
     * [lo_frac * T, hi_frac * T] where T is the end time. This is the
     * transient-excluding measurement used for all paper experiments.
     */
    double centralRate(double lo_frac = 0.2, double hi_frac = 0.8) const;

    /** Rate over the entire run. */
    double totalRate() const;

    /** Number of recorded points. */
    size_t size() const { return times_.size(); }

    /** Recorded times, for checkpointing. */
    const std::vector<uint64_t> &times() const { return times_; }

    /** Recorded cumulative values, for checkpointing. */
    const std::vector<uint64_t> &values() const { return values_; }

    /**
     * Replace the series wholesale (checkpoint restore). The two
     * vectors must be equally long and non-decreasing, exactly as if
     * produced by record() calls.
     */
    void restore(std::vector<uint64_t> times,
                 std::vector<uint64_t> values);

  private:
    /** Interpolated cumulative value at time @p t. */
    double valueAt(double t) const;

    std::vector<uint64_t> times_;
    std::vector<uint64_t> values_;
};

/**
 * Simple histogram over integer samples with fixed-width bins,
 * used to sanity check workload distributions.
 */
class Histogram
{
  public:
    /**
     * @param bin_width  width of each bin (>= 1)
     * @param num_bins   number of bins; samples beyond the last bin
     *                   are accumulated in an overflow bucket
     */
    Histogram(uint64_t bin_width, size_t num_bins);

    /** Add one sample. */
    void add(uint64_t x);

    /** Count in bin @p i. */
    uint64_t binCount(size_t i) const;

    /** Count of samples beyond the last bin. */
    uint64_t overflow() const { return overflow_; }

    /** Total number of samples. */
    uint64_t total() const { return total_; }

    size_t numBins() const { return counts_.size(); }
    uint64_t binWidth() const { return bin_width_; }

    /** Render a small ASCII summary (one line per nonempty bin). */
    std::string render() const;

  private:
    uint64_t bin_width_;
    std::vector<uint64_t> counts_;
    uint64_t overflow_ = 0;
    uint64_t total_ = 0;
};

} // namespace rr

#endif // RR_BASE_STATS_HH
