/**
 * @file
 * Aligned-column table printer used by the benchmark harness to emit
 * the paper's tables and figure series in a readable form, plus a CSV
 * emitter for downstream plotting.
 */

#ifndef RR_BASE_TABLE_HH
#define RR_BASE_TABLE_HH

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace rr {

/** A simple text table with a header row and aligned columns. */
class Table
{
  public:
    /** Construct with the given column headers. */
    explicit Table(std::vector<std::string> headers);

    /** Append a row; must have the same arity as the header. */
    void addRow(std::vector<std::string> cells);

    /** Convenience: format a double with @p precision decimals. */
    static std::string num(double v, int precision = 3);

    /** Convenience: format an integer. */
    static std::string num(uint64_t v);
    static std::string num(int64_t v);
    static std::string num(int v);
    static std::string num(unsigned v);

    /** Render with aligned columns and a separator under the header. */
    std::string render() const;

    /** Render as CSV (no alignment, comma-separated). */
    std::string renderCsv() const;

    /** Stream the aligned rendering to @p os. */
    void print(std::ostream &os) const;

    size_t numRows() const { return rows_.size(); }
    size_t numCols() const { return headers_.size(); }

    /** Column headers (for structured serialization). */
    const std::vector<std::string> &headers() const { return headers_; }

    /** Row cells (for structured serialization). */
    const std::vector<std::vector<std::string>> &rows() const
    {
        return rows_;
    }

  private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

} // namespace rr

#endif // RR_BASE_TABLE_HH
