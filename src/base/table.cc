#include "base/table.hh"

#include <iomanip>
#include <ostream>
#include <sstream>

#include "base/logging.hh"

namespace rr {

Table::Table(std::vector<std::string> headers)
    : headers_(std::move(headers))
{
    rr_assert(!headers_.empty(), "table needs at least one column");
}

void
Table::addRow(std::vector<std::string> cells)
{
    rr_assert(cells.size() == headers_.size(),
              "row arity ", cells.size(), " != header arity ",
              headers_.size());
    rows_.push_back(std::move(cells));
}

std::string
Table::num(double v, int precision)
{
    std::ostringstream os;
    os << std::fixed << std::setprecision(precision) << v;
    return os.str();
}

std::string
Table::num(uint64_t v)
{
    return std::to_string(v);
}

std::string
Table::num(int64_t v)
{
    return std::to_string(v);
}

std::string
Table::num(int v)
{
    return std::to_string(v);
}

std::string
Table::num(unsigned v)
{
    return std::to_string(v);
}

std::string
Table::render() const
{
    std::vector<size_t> widths(headers_.size());
    for (size_t c = 0; c < headers_.size(); ++c)
        widths[c] = headers_[c].size();
    for (const auto &row : rows_) {
        for (size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());
    }

    std::ostringstream os;
    auto emit_row = [&](const std::vector<std::string> &cells) {
        for (size_t c = 0; c < cells.size(); ++c) {
            os << std::setw(static_cast<int>(widths[c])) << cells[c];
            os << (c + 1 == cells.size() ? "\n" : "  ");
        }
    };
    emit_row(headers_);
    for (size_t c = 0; c < headers_.size(); ++c) {
        os << std::string(widths[c], '-')
           << (c + 1 == headers_.size() ? "\n" : "  ");
    }
    for (const auto &row : rows_)
        emit_row(row);
    return os.str();
}

std::string
Table::renderCsv() const
{
    std::ostringstream os;
    auto emit_row = [&](const std::vector<std::string> &cells) {
        for (size_t c = 0; c < cells.size(); ++c)
            os << cells[c] << (c + 1 == cells.size() ? "\n" : ",");
    };
    emit_row(headers_);
    for (const auto &row : rows_)
        emit_row(row);
    return os.str();
}

void
Table::print(std::ostream &os) const
{
    os << render();
}

} // namespace rr
