#include "base/distributions.hh"

#include <cmath>
#include <sstream>

#include "base/logging.hh"

namespace rr {

ConstantDist::ConstantDist(uint64_t value)
    : value_(value)
{
}

uint64_t
ConstantDist::sample(Rng &) const
{
    return value_;
}

double
ConstantDist::mean() const
{
    return static_cast<double>(value_);
}

std::string
ConstantDist::describe() const
{
    std::ostringstream os;
    os << "constant(" << value_ << ")";
    return os.str();
}

GeometricDist::GeometricDist(double mean)
    : mean_(mean)
{
    rr_assert(mean >= 1.0, "geometric mean must be >= 1, got ", mean);
}

uint64_t
GeometricDist::sample(Rng &rng) const
{
    // Inverse-CDF sampling of a geometric on {1, 2, ...} with success
    // probability p = 1/mean. ceil(ln U / ln (1-p)) for U in (0, 1).
    if (mean_ <= 1.0)
        return 1;
    const double p = 1.0 / mean_;
    double u = rng.nextDouble();
    if (u <= 0.0)
        u = 0x1.0p-53;
    const double v = std::ceil(std::log(u) / std::log(1.0 - p));
    if (v < 1.0)
        return 1;
    return static_cast<uint64_t>(v);
}

double
GeometricDist::mean() const
{
    return mean_;
}

std::string
GeometricDist::describe() const
{
    std::ostringstream os;
    os << "geometric(mean=" << mean_ << ")";
    return os.str();
}

ExponentialDist::ExponentialDist(double mean)
    : mean_(mean)
{
    rr_assert(mean > 0.0, "exponential mean must be positive, got ", mean);
}

uint64_t
ExponentialDist::sample(Rng &rng) const
{
    double u = rng.nextDouble();
    if (u <= 0.0)
        u = 0x1.0p-53;
    const double v = -mean_ * std::log(u);
    if (v < 1.0)
        return 1;
    return static_cast<uint64_t>(std::llround(v));
}

double
ExponentialDist::mean() const
{
    return mean_;
}

std::string
ExponentialDist::describe() const
{
    std::ostringstream os;
    os << "exponential(mean=" << mean_ << ")";
    return os.str();
}

UniformIntDist::UniformIntDist(uint64_t lo, uint64_t hi)
    : lo_(lo), hi_(hi)
{
    rr_assert(lo <= hi, "invalid uniform range [", lo, ", ", hi, "]");
}

uint64_t
UniformIntDist::sample(Rng &rng) const
{
    return rng.nextRange(lo_, hi_);
}

double
UniformIntDist::mean() const
{
    return (static_cast<double>(lo_) + static_cast<double>(hi_)) / 2.0;
}

std::string
UniformIntDist::describe() const
{
    std::ostringstream os;
    os << "uniform[" << lo_ << ", " << hi_ << "]";
    return os.str();
}

std::shared_ptr<Distribution>
makeConstant(uint64_t value)
{
    return std::make_shared<ConstantDist>(value);
}

std::shared_ptr<Distribution>
makeGeometric(double mean)
{
    return std::make_shared<GeometricDist>(mean);
}

std::shared_ptr<Distribution>
makeExponential(double mean)
{
    return std::make_shared<ExponentialDist>(mean);
}

std::shared_ptr<Distribution>
makeUniformInt(uint64_t lo, uint64_t hi)
{
    return std::make_shared<UniformIntDist>(lo, hi);
}

} // namespace rr
