#include "base/rng.hh"

#include "base/logging.hh"

namespace rr {

namespace {

/** splitmix64 step, used for seed expansion. */
uint64_t
splitmix64(uint64_t &state)
{
    uint64_t z = (state += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

uint64_t
rotl(uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(uint64_t seed_value)
{
    seed(seed_value);
}

void
Rng::seed(uint64_t seed_value)
{
    uint64_t sm = seed_value;
    for (auto &word : s_)
        word = splitmix64(sm);
    // A state of all zeros is invalid for xoshiro; splitmix64 cannot
    // produce four zero outputs in a row, but be defensive anyway.
    if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0)
        s_[0] = 1;
}

uint64_t
Rng::next()
{
    const uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const uint64_t t = s_[1] << 17;

    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);

    return result;
}

double
Rng::nextDouble()
{
    // 53 random mantissa bits -> [0, 1).
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

uint64_t
Rng::nextRange(uint64_t lo, uint64_t hi)
{
    rr_assert(lo <= hi, "invalid range [", lo, ", ", hi, "]");
    const uint64_t span = hi - lo;
    if (span == ~uint64_t{0})
        return next();
    return lo + static_cast<uint64_t>(nextDouble() *
                                      static_cast<double>(span + 1));
}

Rng
Rng::split()
{
    return Rng(next() ^ 0xd1b54a32d192ed03ull);
}

void
Rng::state(uint64_t out[4]) const
{
    for (int i = 0; i < 4; ++i)
        out[i] = s_[i];
}

void
Rng::setState(const uint64_t in[4])
{
    for (int i = 0; i < 4; ++i)
        s_[i] = in[i];
}

} // namespace rr
