/**
 * @file
 * Deterministic pseudo-random number generator.
 *
 * We implement xoshiro256** rather than relying on std:: distributions
 * so that every experiment is bit-reproducible across standard library
 * implementations; the paper's experiments are stochastic and we want
 * the reproduction's tables to be stable.
 */

#ifndef RR_BASE_RNG_HH
#define RR_BASE_RNG_HH

#include <cstdint>

namespace rr {

/**
 * xoshiro256** generator with splitmix64 seeding.
 *
 * Satisfies the essentials of UniformRandomBitGenerator but is used
 * through the explicit helpers below for determinism.
 */
class Rng
{
  public:
    using result_type = uint64_t;

    /** Construct from a 64-bit seed (expanded via splitmix64). */
    explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ull);

    /** Re-seed the generator. */
    void seed(uint64_t seed);

    /** @return the next raw 64-bit output. */
    uint64_t next();

    uint64_t operator()() { return next(); }

    static constexpr uint64_t min() { return 0; }
    static constexpr uint64_t max() { return ~uint64_t{0}; }

    /** Uniform double in [0, 1). */
    double nextDouble();

    /**
     * Uniform integer in the closed range [lo, hi].
     * Uses rejection-free Lemire-style mapping; slight bias is below
     * 2^-53 and irrelevant for simulation purposes.
     */
    uint64_t nextRange(uint64_t lo, uint64_t hi);

    /**
     * Split off an independent child generator; used to give each
     * thread / fault model its own stream.
     */
    Rng split();

    /**
     * Copy the raw xoshiro256** state into @p out. Together with
     * setState() this lets checkpoints capture a stream mid-sequence
     * without perturbing it.
     */
    void state(uint64_t out[4]) const;

    /** Restore a state previously captured with state(). */
    void setState(const uint64_t in[4]);

  private:
    uint64_t s_[4];
};

} // namespace rr

#endif // RR_BASE_RNG_HH
