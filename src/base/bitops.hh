/**
 * @file
 * Bit-manipulation helpers used throughout the register-relocation
 * runtime: power-of-two arithmetic, find-first-set (the MC88000 FF1
 * operation mentioned in Section 2.3 of the paper), and the
 * bit-parallel prefix scan used by the Appendix A allocator.
 */

#ifndef RR_BASE_BITOPS_HH
#define RR_BASE_BITOPS_HH

#include <bit>
#include <cstdint>

namespace rr {

/** @return true iff @p x is a (nonzero) power of two. */
constexpr bool
isPowerOfTwo(uint64_t x)
{
    return x != 0 && (x & (x - 1)) == 0;
}

/**
 * Ceiling of the base-2 logarithm; log2Ceil(1) == 0.
 * This is the paper's ceil(lg n) used to size the RRM register.
 */
constexpr unsigned
log2Ceil(uint64_t x)
{
    unsigned bits = 0;
    uint64_t v = 1;
    while (v < x) {
        v <<= 1;
        ++bits;
    }
    return bits;
}

/** Floor of the base-2 logarithm; log2Floor(1) == 0, undefined for 0. */
constexpr unsigned
log2Floor(uint64_t x)
{
    unsigned bits = 0;
    while (x > 1) {
        x >>= 1;
        ++bits;
    }
    return bits;
}

/** Round @p x up to the next power of two (returns 1 for x <= 1). */
constexpr uint64_t
roundUpPowerOfTwo(uint64_t x)
{
    return uint64_t{1} << log2Ceil(x);
}

/**
 * Find-first-set: index of the least significant 1 bit, or -1 when no
 * bit is set. Mirrors the MC88000 FF1-style operation the paper cites
 * as an allocator accelerator.
 */
constexpr int
findFirstSet(uint64_t x)
{
    if (x == 0)
        return -1;
    return std::countr_zero(x);
}

/** Population count. */
constexpr unsigned
popCount(uint64_t x)
{
    return static_cast<unsigned>(std::popcount(x));
}

/** A mask with the low @p n bits set (n in [0, 64]). */
constexpr uint64_t
lowMask(unsigned n)
{
    return n >= 64 ? ~uint64_t{0} : (uint64_t{1} << n) - 1;
}

/**
 * Bit-parallel prefix scan from the paper's Appendix A: given an
 * availability bitmap where a 1 marks a free unit, produce a bitmap in
 * which bit i is set iff bits [i, i + run) are all set. Only bits at
 * positions that are multiples of @p run remain meaningful after the
 * caller applies an alignment mask.
 *
 * @param map  availability bitmap
 * @param run  run length; must be a power of two
 */
constexpr uint64_t
contiguousRunMap(uint64_t map, unsigned run)
{
    uint64_t t = map;
    for (unsigned width = 1; width < run; width <<= 1)
        t &= t >> width;
    return t;
}

/**
 * Mask selecting bit positions aligned to @p run within a 64-bit map
 * (bit 0, bit run, bit 2*run, ...). @p run must be a power of two.
 */
constexpr uint64_t
alignedPositionsMask(unsigned run)
{
    uint64_t m = 0;
    for (unsigned i = 0; i < 64; i += run)
        m |= uint64_t{1} << i;
    return m;
}

} // namespace rr

#endif // RR_BASE_BITOPS_HH
