/**
 * @file
 * Strict unsigned-integer parsing shared by the CLI tools
 * (tools/arg_num.hh) and the benchmark harness's environment knobs
 * (exp/env.hh). `std::strtoul(text, nullptr, 0)` silently maps
 * garbage to 0 and ignores trailing junk ("--check foo" used to
 * disable the check instead of failing; "RR_BENCH_SEEDS=3x" used to
 * run with 3 seeds); this helper accepts a string only when the
 * whole of it is a valid number within range.
 */

#ifndef RR_BASE_PARSE_NUM_HH
#define RR_BASE_PARSE_NUM_HH

#include <cerrno>
#include <cstdint>
#include <cstdlib>
#include <limits>

namespace rr {

/**
 * Parse @p text as an unsigned integer (decimal, 0x-hex, or 0-octal).
 * @return true and sets @p out only when the whole string is a valid
 *         number no greater than @p max. Rejects empty strings,
 *         leading '-', trailing junk, and out-of-range values.
 */
inline bool
parseUnsigned(const char *text, uint64_t &out,
              uint64_t max = std::numeric_limits<uint64_t>::max())
{
    if (text == nullptr || *text == '\0' || *text == '-')
        return false;
    errno = 0;
    char *end = nullptr;
    const unsigned long long value = std::strtoull(text, &end, 0);
    if (errno != 0 || end == text || *end != '\0')
        return false;
    if (value > max)
        return false;
    out = value;
    return true;
}

} // namespace rr

#endif // RR_BASE_PARSE_NUM_HH
