/**
 * @file
 * Strict unsigned-integer parsing shared by the CLI tools
 * (tools/arg_num.hh) and the benchmark harness's environment knobs
 * (exp/env.hh). `std::strtoul(text, nullptr, 0)` silently maps
 * garbage to 0 and ignores trailing junk ("--check foo" used to
 * disable the check instead of failing; "RR_BENCH_SEEDS=3x" used to
 * run with 3 seeds); strtoull also quietly honours locale whitespace,
 * a leading '+', and C octal ("010" meant 8), none of which the
 * documented grammar admits. This parser accepts exactly
 *
 *     [0-9]+  |  0[xX][0-9a-fA-F]+
 *
 * with no sign, no whitespace, and no octal: "010" is the decimal
 * number ten.
 */

#ifndef RR_BASE_PARSE_NUM_HH
#define RR_BASE_PARSE_NUM_HH

#include <cstdint>
#include <limits>

namespace rr {

/**
 * Parse @p text as an unsigned integer: decimal digits, or 0x/0X
 * followed by hex digits. Leading zeros are decimal, never octal.
 * @return true and sets @p out only when the whole string matches
 *         the grammar and the value is no greater than @p max.
 *         Rejects empty strings, signs, whitespace, trailing junk,
 *         and out-of-range values.
 */
inline bool
parseUnsigned(const char *text, uint64_t &out,
              uint64_t max = std::numeric_limits<uint64_t>::max())
{
    if (text == nullptr || *text == '\0')
        return false;

    const char *p = text;
    unsigned base = 10;
    if (p[0] == '0' && (p[1] == 'x' || p[1] == 'X')) {
        base = 16;
        p += 2;
        if (*p == '\0')
            return false; // "0x" alone is not a number
    }

    uint64_t value = 0;
    for (; *p != '\0'; ++p) {
        unsigned digit;
        if (*p >= '0' && *p <= '9')
            digit = static_cast<unsigned>(*p - '0');
        else if (base == 16 && *p >= 'a' && *p <= 'f')
            digit = static_cast<unsigned>(*p - 'a') + 10;
        else if (base == 16 && *p >= 'A' && *p <= 'F')
            digit = static_cast<unsigned>(*p - 'A') + 10;
        else
            return false;
        // Overflow check: value * base + digit must fit in 64 bits.
        if (value > (std::numeric_limits<uint64_t>::max() - digit) /
                        base)
            return false;
        value = value * base + digit;
    }
    if (value > max)
        return false;
    out = value;
    return true;
}

} // namespace rr

#endif // RR_BASE_PARSE_NUM_HH
