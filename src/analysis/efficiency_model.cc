#include "analysis/efficiency_model.hh"

#include <algorithm>

#include "base/logging.hh"

namespace rr::analysis {

EfficiencyModel::EfficiencyModel(double run_length, double latency,
                                 double switch_cost)
    : r_(run_length), l_(latency), s_(switch_cost)
{
    rr_assert(run_length > 0.0, "run length must be positive");
    rr_assert(latency >= 0.0, "latency must be nonnegative");
    rr_assert(switch_cost >= 0.0, "switch cost must be nonnegative");
}

double
EfficiencyModel::saturated() const
{
    return r_ / (r_ + s_);
}

double
EfficiencyModel::linear(double n) const
{
    return n * r_ / (r_ + s_ + l_);
}

double
EfficiencyModel::efficiency(double n) const
{
    return std::min(linear(n), saturated());
}

double
EfficiencyModel::saturationPoint() const
{
    return 1.0 + l_ / (r_ + s_);
}

bool
EfficiencyModel::inLinearRegime(double n) const
{
    return n < saturationPoint();
}

} // namespace rr::analysis
