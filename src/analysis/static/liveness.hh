/**
 * @file
 * Backward liveness over context-relative registers.
 *
 * The point of this analysis (per the ROADMAP and the compile-time
 * specialization theme): a thread's *minimal viable context* is what
 * lets software pick the smallest power-of-two context, which is the
 * paper's whole performance argument — more resident contexts, more
 * latency tolerance. Liveness tells the loader which registers a
 * context must actually contain when it is entered.
 *
 * Register sets are 64-bit masks (the encoding has 6-bit operand
 * fields, so at most 64 context-relative registers exist).
 *
 * LDRRM window barriers: after an LDRRM's delay slots elapse, every
 * register name refers to a *different physical register* — liveness
 * must not propagate uses from the new window back into the old one.
 * When an LDRRM's effect point falls inside the same basic block, the
 * backward sweep records the live set at that point (the new window's
 * entry requirement, see Liveness::windowEntryLive) and restarts from
 * the empty set. An effect point that crosses the end of its block is
 * a hazard the lint pass reports separately; here it is conservatively
 * ignored.
 */

#ifndef RR_LINT_LIVENESS_HH
#define RR_LINT_LIVENESS_HH

#include <cstdint>
#include <map>
#include <vector>

#include "analysis/static/cfg.hh"

namespace rr::lint {

/** Register operands read / written by one instruction. */
struct UseDef
{
    uint64_t uses = 0; ///< bit r set: context-relative r is read
    uint64_t defs = 0; ///< bit r set: context-relative r is written
};

/** Compute the use/def sets of @p inst. */
UseDef useDef(const isa::Instruction &inst);

/** Options for the liveness fixpoint. */
struct LivenessOptions
{
    /** LDRRM delay slots (mirrors CpuConfig::ldrrmDelaySlots). */
    unsigned delaySlots = 1;

    /**
     * Honour LDRRM window barriers (see file header). Disable to get
     * plain textbook liveness.
     */
    bool windowBarriers = true;
};

/** Backward may-liveness over a Cfg. */
class Liveness
{
  public:
    Liveness(const Cfg &cfg, const LivenessOptions &options = {});

    /** Registers live on entry to block @p id. */
    uint64_t liveIn(uint32_t block_id) const;

    /** Registers live on exit from block @p id. */
    uint64_t liveOut(uint32_t block_id) const;

    /** Registers live immediately before the instruction at @p addr. */
    uint64_t liveBefore(uint32_t addr) const;

    /**
     * Live sets recorded at LDRRM effect points (address where the
     * new mask takes effect -> registers the new window must already
     * hold). Together with the RRM analysis this yields per-context
     * entry requirements.
     */
    const std::map<uint32_t, uint64_t> &windowEntryLive() const
    {
        return windowEntryLive_;
    }

  private:
    /** Sweep one block backwards from @p live_out. */
    uint64_t transferBlock(const BasicBlock &block, uint64_t live_out,
                           bool record);

    /** Addresses (within the block) where a new RRM takes effect. */
    std::vector<bool> effectPoints(const BasicBlock &block) const;

    const Cfg &cfg_;
    LivenessOptions options_;
    std::vector<uint64_t> liveIn_;
    std::vector<uint64_t> liveOut_;
    std::vector<uint64_t> liveBefore_; ///< indexed by addr - base
    std::map<uint32_t, uint64_t> windowEntryLive_;
};

} // namespace rr::lint

#endif // RR_LINT_LIVENESS_HH
