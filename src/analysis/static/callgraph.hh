/**
 * @file
 * Call graph and per-procedure summaries over an assembled RRISC
 * image.
 *
 * The Cfg treats JAL as an ordinary jump: the callee's blocks become
 * plain successors, and the instruction after the call is a pred-less
 * root. That is sound for straight dataflow but blind to structure:
 * it cannot say *which* procedure a hazard hides in, it cannot carry
 * state from a callee's `jmp link` back to the call site, and it has
 * no notion of thread entry points. This pass recovers the structure:
 *
 *  - procedure entries are the program entry, every `.thread` label,
 *    every direct JAL target, every address-taken label (the
 *    conservative JALR target set), and every `.lockdef`
 *    acquire/release procedure;
 *  - bodies are discovered by walking CFG successors from each entry,
 *    treating JAL edges as calls (resume at the return address) and
 *    `jmp` as return-by-convention;
 *  - each procedure gets a summary: registers read/written directly,
 *    the transitive context-relative footprint of its call subtree,
 *    the minimal context that subtree needs, and whether the subtree
 *    switches the RRM;
 *  - call sites carry their return address, so the RRM analysis can
 *    add return edges (callee exit state flows back to the caller)
 *    and the lockset pass can model acquire/release effects;
 *  - callPath() reconstructs a shortest entry→procedure call chain,
 *    the witness attached to interprocedural findings.
 *
 * JALR over-approximation: an indirect call may target any
 * address-taken procedure, so summaries treat it as clobbering
 * everything (`callsIndirect`); see docs/LINT.md for the contract.
 */

#ifndef RR_LINT_CALLGRAPH_HH
#define RR_LINT_CALLGRAPH_HH

#include <cstdint>
#include <string>
#include <vector>

#include "analysis/static/cfg.hh"

namespace rr::lint {

/** One call instruction (JAL direct, JALR indirect). */
struct CallSite
{
    uint32_t address = 0;       ///< word address of the call
    int line = 0;               ///< 1-based source line (0 unknown)
    uint32_t caller = 0;        ///< procedure index issuing the call
    uint32_t callee = 0;        ///< callee index; noProc when indirect
    bool indirect = false;      ///< JALR: callee unknown
    uint32_t returnAddress = 0; ///< the word after the call
};

/** One discovered procedure with its interprocedural summary. */
struct Procedure
{
    uint32_t entry = 0; ///< entry word address
    std::string name;   ///< best label at the entry, else "@addr"

    bool isEntry = false;      ///< the program entry point
    bool isThread = false;     ///< declared via .thread
    bool addressTaken = false; ///< potential JALR target
    bool hasThreadRrm = false; ///< .thread gave an explicit mask
    uint32_t threadRrm = 0;    ///< entry RRM when hasThreadRrm

    int lockAcquire = -1; ///< lock index this proc acquires (-1 none)
    int lockRelease = -1; ///< lock index this proc releases (-1 none)

    std::vector<uint32_t> blocks;       ///< body block ids (discovery order)
    std::vector<uint32_t> returnBlocks; ///< body blocks ending in `jmp`
    std::vector<uint32_t> callSites;    ///< call-site indices issued here
    std::vector<uint32_t> callers;      ///< call-site indices targeting me

    uint64_t regsRead = 0;    ///< context-relative regs read directly
    uint64_t regsWritten = 0; ///< context-relative regs written directly
    uint64_t footprint = 0;   ///< transitive regs referenced (subtree)
    unsigned registers = 0;   ///< transitive max register + 1
    unsigned minContext = 1;  ///< registers rounded to a power of two
    bool switchesRrm = false; ///< subtree executes LDRRM/LDRRMX
    bool callsIndirect = false; ///< subtree contains a JALR
    bool returns = false;       ///< has at least one return block
};

/** Call graph of one Cfg. */
class CallGraph
{
  public:
    static constexpr uint32_t noProc = ~uint32_t{0};

    /** Build the call graph (and summaries) of @p cfg. */
    explicit CallGraph(const Cfg &cfg);

    const Cfg &cfg() const { return cfg_; }

    const std::vector<Procedure> &procedures() const { return procs_; }

    const std::vector<CallSite> &callSites() const { return sites_; }

    /** Lock names (lockdef order, capped at 32). */
    const std::vector<std::string> &lockNames() const { return locks_; }

    /** Procedure whose entry is @p addr, or noProc. */
    uint32_t procByEntry(uint32_t addr) const;

    /** Primary owner of block @p blockId, or noProc. */
    uint32_t procOfBlock(uint32_t blockId) const;

    /** Primary owner of the instruction at @p addr, or noProc. */
    uint32_t procOfAddress(uint32_t addr) const;

    /**
     * Shortest call chain from a root procedure to @p proc, as
     * procedure names ("entry" -> ... -> proc). A lone name when the
     * procedure is itself a root; empty when unreachable via calls.
     */
    std::vector<std::string> callPath(uint32_t proc) const;

  private:
    void collectEntries();
    void discoverBodies();
    void summarize();
    void buildPaths();

    const Cfg &cfg_;
    std::vector<Procedure> procs_;
    std::vector<CallSite> sites_;
    std::vector<std::string> locks_;
    std::vector<uint32_t> blockOwner_; ///< block id -> primary proc
    std::vector<uint32_t> pathParent_; ///< proc -> call site (or noProc)
};

} // namespace rr::lint

#endif // RR_LINT_CALLGRAPH_HH
