#include "analysis/static/rrm_state.hh"

#include <algorithm>
#include <deque>

#include "analysis/static/callgraph.hh"
#include "base/bitops.hh"
#include "base/logging.hh"

namespace rr::lint {

using isa::Instruction;
using isa::Opcode;

namespace {

/** Physical registers above this are not worth tracking. */
constexpr uint32_t physTrackLimit = 1u << 20;

} // namespace

AbsVal
AbsVal::join(const AbsVal &a, const AbsVal &b)
{
    if (a.kind == Bottom)
        return b;
    if (b.kind == Bottom)
        return a;
    if (a.kind == Const && b.kind == Const && a.value == b.value)
        return a;
    return top();
}

RrmAnalysis::RrmAnalysis(const Cfg &cfg, const RrmOptions &options,
                         const CallGraph *callgraph)
    : cfg_(cfg), options_(options), callgraph_(callgraph)
{
    const size_t num_blocks = cfg_.blocks().size();
    inStates_.resize(num_blocks);
    rrmBefore_.assign(cfg_.instructions().size(), AbsVal::bottom());
    memAddrBefore_.assign(cfg_.instructions().size(),
                          AbsVal::bottom());

    if (num_blocks == 0)
        return;

    // Interprocedural return edges: a callee's `jmp` exit state flows
    // to every direct call site's return point — pending LDRRM
    // included, since the hardware keeps ticking across the jump.
    // Those return points then need no conservative Top seed.
    //
    // Indirect call sites get a caller-side edge instead: a JALR may
    // target any address-taken returning procedure, whose own entry
    // state is unknown, so the callee's exit state is useless — but
    // its *summary* is not. The caller's RRM survives the call when
    // no possible callee subtree switches it; registers are assumed
    // clobbered either way.
    std::vector<std::vector<uint32_t>> return_succs(num_blocks);
    std::vector<std::vector<uint32_t>> indirect_return_succs(
        num_blocks);
    std::vector<bool> return_point(num_blocks, false);
    bool indirect_keeps_rrm = true;
    if (callgraph_ != nullptr) {
        bool any_indirect_target = false;
        for (const Procedure &p : callgraph_->procedures()) {
            if (!p.addressTaken || !p.returns)
                continue;
            any_indirect_target = true;
            if (p.switchesRrm)
                indirect_keeps_rrm = false;
        }
        for (const CallSite &site : callgraph_->callSites()) {
            if (site.indirect) {
                if (!any_indirect_target)
                    continue; // no callee returns: point stays a root
                const uint32_t point =
                    cfg_.blockAt(site.returnAddress);
                const uint32_t call_block =
                    cfg_.blockAt(site.address);
                if (point == Cfg::noBlock ||
                    call_block == Cfg::noBlock) {
                    continue;
                }
                return_point[point] = true;
                indirect_return_succs[call_block].push_back(point);
                continue;
            }
            if (site.callee == CallGraph::noProc)
                continue;
            const uint32_t point = cfg_.blockAt(site.returnAddress);
            if (point == Cfg::noBlock)
                continue;
            return_point[point] = true;
            const Procedure &callee =
                callgraph_->procedures()[site.callee];
            for (const uint32_t from : callee.returnBlocks)
                return_succs[from].push_back(point);
        }
        for (std::vector<uint32_t> &succs : return_succs) {
            std::sort(succs.begin(), succs.end());
            succs.erase(std::unique(succs.begin(), succs.end()),
                        succs.end());
        }
        for (std::vector<uint32_t> &succs : indirect_return_succs) {
            std::sort(succs.begin(), succs.end());
            succs.erase(std::unique(succs.begin(), succs.end()),
                        succs.end());
        }
    }

    // Seed: the entry runs under the configured initial mask; with a
    // call graph, `.thread` entries run under their declared mask
    // (default: the initial one) and direct-call return points wait
    // for their return edge; any other root (label- or indirect-
    // jump-reachable code) runs under an unknown mask so that nothing
    // escapes analysis.
    std::deque<uint32_t> work;
    std::vector<bool> queued(num_blocks, false);
    for (const uint32_t root : cfg_.roots()) {
        State seed;
        seed.reachable = true;
        bool seeded = false;
        if (root == cfg_.entryBlock()) {
            seed.rrm = AbsVal::constant(options_.initialRrm);
            seeded = true;
        }
        if (callgraph_ != nullptr) {
            const uint32_t proc = callgraph_->procByEntry(
                cfg_.blocks()[root].begin);
            if (proc != CallGraph::noProc &&
                callgraph_->procedures()[proc].isThread) {
                const Procedure &p = callgraph_->procedures()[proc];
                seed.rrm = AbsVal::join(
                    seed.rrm,
                    AbsVal::constant(p.hasThreadRrm
                                         ? p.threadRrm
                                         : options_.initialRrm));
                seeded = true;
            }
        }
        if (!seeded) {
            if (callgraph_ != nullptr && return_point[root])
                continue; // fed by its return edge instead
            seed.rrm = AbsVal::top();
        }
        inStates_[root] = joinStates(inStates_[root], seed);
        if (!queued[root]) {
            work.push_back(root);
            queued[root] = true;
        }
    }

    while (!work.empty()) {
        const uint32_t id = work.front();
        work.pop_front();
        queued[id] = false;
        const BasicBlock &block = cfg_.blocks()[id];

        const State out = transferBlock(block, inStates_[id], false);
        auto propagate = [&](uint32_t succ, const State &state) {
            const State joined = joinStates(inStates_[succ], state);
            if (joined == inStates_[succ])
                return;
            inStates_[succ] = joined;
            if (!queued[succ]) {
                work.push_back(succ);
                queued[succ] = true;
            }
        };
        State cleared = out;
        clearPendingAtExit(block, cleared);
        for (const uint32_t succ : block.succs)
            propagate(succ, cleared);
        // Return edges carry the raw state: the delay-slot machinery
        // keeps ticking across a `jmp`.
        for (const uint32_t succ : return_succs[id])
            propagate(succ, out);
        // Indirect return edges carry a summary approximation: any
        // register may be clobbered, and the RRM survives only when
        // no address-taken returning procedure switches it (a mask
        // still pending at the JALR lands inside the callee, so it is
        // unknown here too).
        for (const uint32_t succ : indirect_return_succs[id]) {
            State weak;
            weak.reachable = true;
            weak.rrm = indirect_keeps_rrm && !out.pending.active
                           ? out.rrm
                           : AbsVal::top();
            propagate(succ, weak);
        }
    }

    // Recording pass: per-instruction masks and hazards, once.
    for (const BasicBlock &block : cfg_.blocks()) {
        if (!inStates_[block.id].reachable)
            continue;
        const State out =
            transferBlock(block, inStates_[block.id], true);
        if (!return_succs[block.id].empty() && out.pending.active) {
            const CfgInstruction &last = cfg_.at(block.end - 1);
            hazards_.push_back({RrmHazard::PendingAcrossReturn,
                                last.address, last.line});
        }
    }

    // Collect the distinct constant windows.
    for (const AbsVal &v : rrmBefore_) {
        if (v.isConst())
            windows_.push_back(v.value);
    }
    std::sort(windows_.begin(), windows_.end());
    windows_.erase(std::unique(windows_.begin(), windows_.end()),
                   windows_.end());
    std::sort(hazards_.begin(), hazards_.end(),
              [](const RrmHazard &a, const RrmHazard &b) {
                  return a.address < b.address;
              });
}

const AbsVal &
RrmAnalysis::rrmBefore(uint32_t addr) const
{
    rr_assert(cfg_.contains(addr), "address outside image");
    return rrmBefore_[addr - cfg_.program().base];
}

const AbsVal &
RrmAnalysis::memAddrBefore(uint32_t addr) const
{
    rr_assert(cfg_.contains(addr), "address outside image");
    return memAddrBefore_[addr - cfg_.program().base];
}

bool
RrmAnalysis::relocate(uint32_t rrm, unsigned reg,
                      uint32_t &physical) const
{
    switch (options_.mode) {
      case RelocMode::Or:
        physical = rrm | reg;
        return true;
      case RelocMode::Add:
        physical = rrm + reg;
        return true;
      case RelocMode::Mux:
        if (options_.muxContextSize == 0)
            return false;
        physical =
            (rrm & ~(options_.muxContextSize - 1)) |
            (reg & (options_.muxContextSize - 1));
        return true;
    }
    return false;
}

RrmAnalysis::State
RrmAnalysis::joinStates(const State &a, const State &b)
{
    if (!a.reachable)
        return b;
    if (!b.reachable)
        return a;

    State out;
    out.reachable = true;
    out.rrm = AbsVal::join(a.rrm, b.rrm);

    if (a.pending == b.pending) {
        out.pending = a.pending;
    } else if (a.pending.active && b.pending.active &&
               a.pending.remaining == b.pending.remaining) {
        out.pending.active = true;
        out.pending.remaining = a.pending.remaining;
        out.pending.value =
            AbsVal::join(a.pending.value, b.pending.value);
    } else {
        // Delay windows out of phase between the two paths: the mask
        // a few instructions from now is simply unknown.
        out.pending = Pending{};
        out.rrm = AbsVal::top();
    }

    for (const auto &[reg, value] : a.phys) {
        const auto it = b.phys.find(reg);
        if (it != b.phys.end() && it->second == value)
            out.phys.emplace(reg, value);
    }
    return out;
}

AbsVal
RrmAnalysis::readReg(const State &state, unsigned reg) const
{
    if (options_.banks > 1) {
        // Operands selecting a non-default bank relocate through a
        // mask this analysis does not track.
        const unsigned bank_bits = log2Ceil(options_.banks);
        if (reg >> (options_.operandWidth - bank_bits))
            return AbsVal::top();
    }
    if (!state.rrm.isConst())
        return AbsVal::top();
    uint32_t physical;
    if (!relocate(state.rrm.value, reg, physical))
        return AbsVal::top();
    const auto it = state.phys.find(physical);
    return it != state.phys.end() ? AbsVal::constant(it->second)
                                  : AbsVal::top();
}

void
RrmAnalysis::writeReg(State &state, unsigned reg,
                      const AbsVal &v) const
{
    if (!state.rrm.isConst()) {
        // Unknown destination: anything may have been clobbered.
        state.phys.clear();
        return;
    }
    if (options_.banks > 1) {
        const unsigned bank_bits = log2Ceil(options_.banks);
        if (reg >> (options_.operandWidth - bank_bits)) {
            state.phys.clear();
            return;
        }
    }
    uint32_t physical;
    if (!relocate(state.rrm.value, reg, physical)) {
        state.phys.clear();
        return;
    }
    if (physical >= physTrackLimit)
        return;
    if (v.isConst())
        state.phys[physical] = v.value;
    else
        state.phys.erase(physical);
}

void
RrmAnalysis::transferInstruction(State &state,
                                 const CfgInstruction &ci, bool record)
{
    // Mirror Cpu::step: a pending LDRRM advances before the
    // instruction decodes.
    if (state.pending.active) {
        --state.pending.remaining;
        if (state.pending.remaining == 0) {
            state.rrm = state.pending.value.isConst()
                            ? state.pending.value
                            : AbsVal::top();
            state.pending.active = false;
        }
    }

    if (record) {
        rrmBefore_[ci.address - cfg_.program().base] =
            AbsVal::join(rrmBefore_[ci.address - cfg_.program().base],
                         state.rrm);
        if (ci.inst.op == Opcode::LD || ci.inst.op == Opcode::ST) {
            const AbsVal base = readReg(state, ci.inst.rs1);
            const AbsVal eff =
                base.isConst()
                    ? AbsVal::constant(
                          base.value +
                          static_cast<uint32_t>(ci.inst.imm))
                    : AbsVal::top();
            AbsVal &slot =
                memAddrBefore_[ci.address - cfg_.program().base];
            slot = AbsVal::join(slot, eff);
        }
    }

    const Instruction &inst = ci.inst;
    auto r1 = [&] { return readReg(state, inst.rs1); };
    auto r2 = [&] { return readReg(state, inst.rs2); };
    auto wr = [&](const AbsVal &v) { writeReg(state, inst.rd, v); };
    auto fold2 = [&](auto op) {
        const AbsVal a = r1(), b = r2();
        wr(a.isConst() && b.isConst()
               ? AbsVal::constant(op(a.value, b.value))
               : AbsVal::top());
    };
    auto fold_imm = [&](auto op) {
        const AbsVal a = r1();
        wr(a.isConst() ? AbsVal::constant(
                             op(a.value,
                                static_cast<uint32_t>(inst.imm)))
                       : AbsVal::top());
    };

    switch (inst.op) {
      case Opcode::ADD:
        fold2([](uint32_t a, uint32_t b) { return a + b; });
        break;
      case Opcode::SUB:
        fold2([](uint32_t a, uint32_t b) { return a - b; });
        break;
      case Opcode::AND:
        fold2([](uint32_t a, uint32_t b) { return a & b; });
        break;
      case Opcode::OR:
        fold2([](uint32_t a, uint32_t b) { return a | b; });
        break;
      case Opcode::XOR:
        fold2([](uint32_t a, uint32_t b) { return a ^ b; });
        break;
      case Opcode::SLL:
        fold2([](uint32_t a, uint32_t b) { return a << (b & 31); });
        break;
      case Opcode::SRL:
        fold2([](uint32_t a, uint32_t b) { return a >> (b & 31); });
        break;
      case Opcode::SRA:
        fold2([](uint32_t a, uint32_t b) {
            return static_cast<uint32_t>(static_cast<int32_t>(a) >>
                                         (b & 31));
        });
        break;
      case Opcode::SLT:
        fold2([](uint32_t a, uint32_t b) {
            return static_cast<int32_t>(a) < static_cast<int32_t>(b)
                       ? 1u
                       : 0u;
        });
        break;
      case Opcode::SLTU:
        fold2([](uint32_t a, uint32_t b) { return a < b ? 1u : 0u; });
        break;

      case Opcode::ADDI:
        fold_imm([](uint32_t a, uint32_t i) { return a + i; });
        break;
      case Opcode::ANDI:
        fold_imm([](uint32_t a, uint32_t i) { return a & i; });
        break;
      case Opcode::ORI:
        fold_imm([](uint32_t a, uint32_t i) { return a | i; });
        break;
      case Opcode::XORI:
        fold_imm([](uint32_t a, uint32_t i) { return a ^ i; });
        break;
      case Opcode::SLTI:
        fold_imm([&](uint32_t a, uint32_t) {
            return static_cast<int32_t>(a) < inst.imm ? 1u : 0u;
        });
        break;
      case Opcode::SLLI:
        fold_imm([](uint32_t a, uint32_t i) { return a << (i & 31); });
        break;
      case Opcode::SRLI:
        fold_imm([](uint32_t a, uint32_t i) { return a >> (i & 31); });
        break;
      case Opcode::SRAI:
        fold_imm([](uint32_t a, uint32_t i) {
            return static_cast<uint32_t>(static_cast<int32_t>(a) >>
                                         (i & 31));
        });
        break;

      case Opcode::LUI:
        wr(AbsVal::constant(static_cast<uint32_t>(inst.imm) << 12));
        break;

      case Opcode::LD:
        wr(AbsVal::top());
        break;
      case Opcode::ST:
      case Opcode::MTPSW:
      case Opcode::FAULT:
      case Opcode::NOP:
      case Opcode::HALT:
        break;

      case Opcode::JAL:
      case Opcode::JALR:
        // The link value is the static return address.
        wr(AbsVal::constant(ci.address + 1));
        break;
      case Opcode::JMP:
        break;

      case Opcode::LDRRM:
        if (state.pending.active && record) {
            hazards_.push_back(
                {RrmHazard::LdrrmInDelay, ci.address, ci.line});
        }
        state.pending.active = true;
        state.pending.value = r1();
        state.pending.remaining = options_.delaySlots + 1;
        break;
      case Opcode::LDRRMX:
        if (inst.imm == 0) {
            if (state.pending.active && record) {
                hazards_.push_back(
                    {RrmHazard::LdrrmInDelay, ci.address, ci.line});
            }
            state.pending.active = true;
            state.pending.value = r1();
            state.pending.remaining = options_.delaySlots + 1;
        }
        // Other banks are not tracked.
        break;

      case Opcode::RDRRM:
        wr(state.rrm);
        break;
      case Opcode::MFPSW:
        wr(AbsVal::top());
        break;
      case Opcode::FF1: {
        const AbsVal a = r1();
        wr(a.isConst() ? AbsVal::constant(static_cast<uint32_t>(
                             findFirstSet(a.value)))
                       : AbsVal::top());
        break;
      }

      case Opcode::BEQ:
      case Opcode::BNE:
      case Opcode::BLT:
      case Opcode::BGE:
        break;

      case Opcode::NumOpcodes:
        break;
    }

    // A control transfer inside a still-pending delay window means
    // the mask lands at the transfer target. HALT is exempt: the
    // pending mask dies with the machine, it lands nowhere.
    if (state.pending.active && isControlTransfer(inst) &&
        transferKind(inst) != Transfer::Halt && record) {
        hazards_.push_back(
            {RrmHazard::ControlInDelay, ci.address, ci.line});
    }
}

RrmAnalysis::State
RrmAnalysis::transferBlock(const BasicBlock &block, State state,
                           bool record)
{
    for (uint32_t addr = block.begin; addr < block.end; ++addr)
        transferInstruction(state, cfg_.at(addr), record);
    return state;
}

void
RrmAnalysis::clearPendingAtExit(const BasicBlock &block,
                                State &state) const
{
    // A pending window surviving a control-transfer exit lands at an
    // unknown point; CFG successors see an unknown mask. (Plain
    // fallthrough into a label keeps the pending state intact, and
    // return edges bypass this entirely: the call-site side knows
    // exactly where the mask lands.)
    const CfgInstruction &last = cfg_.at(block.end - 1);
    if (state.pending.active && isControlTransfer(last.inst)) {
        state.pending = Pending{};
        state.rrm = AbsVal::top();
    }
}

} // namespace rr::lint
