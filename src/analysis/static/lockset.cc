#include "analysis/static/lockset.hh"

#include <algorithm>
#include <deque>
#include <map>

#include "base/logging.hh"

namespace rr::lint {

using isa::Opcode;

namespace {

/** Sentinel lockset for not-yet-reached blocks (top of the meet). */
constexpr uint32_t lockTop = ~uint32_t{0};

} // namespace

LocksetAnalysis::LocksetAnalysis(const Cfg &cfg,
                                 const CallGraph &callgraph,
                                 const RrmAnalysis &rrm)
    : cfg_(cfg), callgraph_(callgraph), rrm_(rrm)
{
    lockBody_.assign(cfg_.blocks().size(), false);
    for (const Procedure &proc : callgraph_.procedures()) {
        if (proc.lockAcquire < 0 && proc.lockRelease < 0)
            continue;
        for (const uint32_t id : proc.blocks)
            lockBody_[id] = true;
    }

    computeIndirectEffects();

    const std::vector<Procedure> &procs = callgraph_.procedures();
    for (uint32_t pi = 0; pi < procs.size(); ++pi) {
        if (procs[pi].isEntry || procs[pi].isThread)
            roots_.push_back({pi, procs[pi].name});
    }
    for (uint32_t ri = 0; ri < roots_.size(); ++ri)
        runRoot(ri);
    findRaces();
}

void
LocksetAnalysis::computeIndirectEffects()
{
    // Transitive maybe-acquire/maybe-release masks per procedure: the
    // locks a call into it may take or drop before it returns. The
    // fixpoint runs over direct call edges, with every indirect site
    // feeding from the address-taken returning set — which is exactly
    // what the masks summarize, so the two converge together.
    const std::vector<Procedure> &procs = callgraph_.procedures();
    std::vector<uint32_t> may_acquire(procs.size(), 0);
    std::vector<uint32_t> may_release(procs.size(), 0);
    for (uint32_t pi = 0; pi < procs.size(); ++pi) {
        if (procs[pi].lockAcquire >= 0)
            may_acquire[pi] |= uint32_t{1} << procs[pi].lockAcquire;
        if (procs[pi].lockRelease >= 0)
            may_release[pi] |= uint32_t{1} << procs[pi].lockRelease;
    }

    bool changed = true;
    while (changed) {
        changed = false;
        indirectAcquire_ = 0;
        indirectRelease_ = 0;
        for (uint32_t pi = 0; pi < procs.size(); ++pi) {
            if (procs[pi].addressTaken && procs[pi].returns) {
                indirectAcquire_ |= may_acquire[pi];
                indirectRelease_ |= may_release[pi];
            }
        }
        for (const CallSite &site : callgraph_.callSites()) {
            uint32_t acq, rel;
            if (site.indirect) {
                acq = indirectAcquire_;
                rel = indirectRelease_;
            } else if (site.callee != CallGraph::noProc) {
                acq = may_acquire[site.callee];
                rel = may_release[site.callee];
            } else {
                continue;
            }
            const uint32_t na = may_acquire[site.caller] | acq;
            const uint32_t nr = may_release[site.caller] | rel;
            if (na != may_acquire[site.caller] ||
                nr != may_release[site.caller]) {
                may_acquire[site.caller] = na;
                may_release[site.caller] = nr;
                changed = true;
            }
        }
    }

    if (indirectAcquire_ == 0 && indirectRelease_ == 0)
        return;
    for (const CallSite &site : callgraph_.callSites()) {
        if (!site.indirect)
            continue;
        indirectSites_.push_back({site.address, site.line,
                                  indirectAcquire_,
                                  indirectRelease_});
    }
    std::sort(indirectSites_.begin(), indirectSites_.end(),
              [](const IndirectLockSite &a,
                 const IndirectLockSite &b) {
                  return a.address < b.address;
              });
}

void
LocksetAnalysis::runRoot(uint32_t rootIndex)
{
    const size_t num_blocks = cfg_.blocks().size();
    if (num_blocks == 0)
        return;

    // Return edges with the callee they return from (so the edge can
    // apply the callee's acquire/release effect) and the block that
    // issued the call. A shared callee has return edges to *every*
    // caller, but this walk is per root: an edge only fires once its
    // calling block is reached from this root, otherwise state would
    // leak between threads through common procedures.
    struct ReturnEdge
    {
        uint32_t to;
        uint32_t callee;
        uint32_t callBlock;
    };
    std::vector<std::vector<ReturnEdge>> return_edges(num_blocks);
    std::vector<uint32_t> callee_of_block(num_blocks,
                                          CallGraph::noProc);
    for (const CallSite &site : callgraph_.callSites()) {
        if (site.indirect || site.callee == CallGraph::noProc)
            continue;
        const uint32_t point = cfg_.blockAt(site.returnAddress);
        const uint32_t call_block = cfg_.blockAt(site.address);
        if (point == Cfg::noBlock || call_block == Cfg::noBlock)
            continue;
        callee_of_block[call_block] = site.callee;
        const Procedure &callee =
            callgraph_.procedures()[site.callee];
        for (const uint32_t from : callee.returnBlocks)
            return_edges[from].push_back(
                {point, site.callee, call_block});
    }

    std::vector<uint32_t> held(num_blocks, lockTop);
    const uint32_t entry_block = cfg_.blockAt(
        callgraph_.procedures()[roots_[rootIndex].proc].entry);
    rr_assert(entry_block != Cfg::noBlock,
              "thread root has no block");
    held[entry_block] = 0;

    std::deque<uint32_t> work{entry_block};
    std::vector<bool> queued(num_blocks, false);
    queued[entry_block] = true;
    while (!work.empty()) {
        const uint32_t id = work.front();
        work.pop_front();
        queued[id] = false;
        const BasicBlock &block = cfg_.blocks()[id];
        const uint32_t in = held[id];

        auto propagate = [&](uint32_t succ, uint32_t locks) {
            const uint32_t met =
                held[succ] == lockTop ? locks : (held[succ] & locks);
            if (met == held[succ])
                return;
            held[succ] = met;
            if (!queued[succ]) {
                work.push_back(succ);
                queued[succ] = true;
            }
        };

        // Locksets change only at procedure boundaries, and a call
        // can only be a block's last instruction, so `in` holds for
        // the whole block.
        const CfgInstruction &last = cfg_.at(block.end - 1);
        if (last.valid && last.inst.op == Opcode::JALR) {
            // Indirect call: any address-taken returning procedure
            // may run. The .lockdef contract is trusted through the
            // indirection — locks a possible callee may release
            // leave the must-hold set, locks one may acquire enter
            // it — and every site where this matters is reported as
            // an explicit lock-indirect-call finding (the masks are
            // a union over possible callees, so with several lock
            // procedures address-taken the approximation coarsens;
            // never silently, though).
            const uint32_t point = cfg_.blockAt(last.address + 1);
            if (point != Cfg::noBlock)
                propagate(point,
                          (in & ~indirectRelease_) |
                              indirectAcquire_);
            continue;
        }
        for (const uint32_t succ : block.succs)
            propagate(succ, in); // includes the JAL edge into callees
        for (const ReturnEdge &edge : return_edges[id]) {
            if (held[edge.callBlock] == lockTop)
                continue; // caller not reached from this root
            const Procedure &callee =
                callgraph_.procedures()[edge.callee];
            uint32_t out = in;
            if (callee.lockAcquire >= 0)
                out |= uint32_t{1} << callee.lockAcquire;
            if (callee.lockRelease >= 0)
                out &= ~(uint32_t{1} << callee.lockRelease);
            propagate(edge.to, out);
        }

        // This block just became (or stayed) reached; if it calls a
        // procedure whose return blocks already converged, their
        // return edges were evaluated before this caller was reached
        // — requeue them so the edge to our return point fires.
        if (callee_of_block[id] != CallGraph::noProc) {
            const Procedure &callee =
                callgraph_.procedures()[callee_of_block[id]];
            for (const uint32_t rb : callee.returnBlocks) {
                if (held[rb] != lockTop && !queued[rb]) {
                    work.push_back(rb);
                    queued[rb] = true;
                }
            }
        }
    }

    // Recording pass: classify every constant-address LD/ST reached
    // from this root, outside lock procedure bodies.
    for (const BasicBlock &block : cfg_.blocks()) {
        if (held[block.id] == lockTop || lockBody_[block.id])
            continue;
        for (uint32_t addr = block.begin; addr < block.end; ++addr) {
            const CfgInstruction &ci = cfg_.at(addr);
            if (!ci.valid || (ci.inst.op != Opcode::LD &&
                              ci.inst.op != Opcode::ST)) {
                continue;
            }
            const AbsVal mem = rrm_.memAddrBefore(addr);
            if (!mem.isConst())
                continue;
            Access access;
            access.address = addr;
            access.line = ci.line;
            access.mem = mem.value;
            access.write = ci.inst.op == Opcode::ST;
            access.held = held[block.id];
            access.root = rootIndex;
            accesses_.push_back(access);
        }
    }
}

void
LocksetAnalysis::findRaces()
{
    std::sort(accesses_.begin(), accesses_.end(),
              [](const Access &a, const Access &b) {
                  if (a.root != b.root)
                      return a.root < b.root;
                  return a.address < b.address;
              });

    std::map<uint32_t, std::vector<const Access *>> by_mem;
    for (const Access &access : accesses_)
        by_mem[access.mem].push_back(&access);

    for (auto &[mem, sites] : by_mem) {
        // Stable site pair: the first conflicting pair in
        // (address, root) order.
        std::sort(sites.begin(), sites.end(),
                  [](const Access *a, const Access *b) {
                      if (a->address != b->address)
                          return a->address < b->address;
                      return a->root < b->root;
                  });
        bool found = false;
        for (size_t i = 0; i < sites.size() && !found; ++i) {
            for (size_t j = i + 1; j < sites.size() && !found; ++j) {
                const Access &a = *sites[i];
                const Access &b = *sites[j];
                if (a.root == b.root)
                    continue;
                if (!a.write && !b.write)
                    continue;
                if ((a.held & b.held) != 0)
                    continue;
                races_.push_back({mem, a, b});
                found = true;
            }
        }
    }
}

} // namespace rr::lint
