#include "analysis/static/cfg.hh"

#include <algorithm>

#include "base/logging.hh"

namespace rr::lint {

using isa::Instruction;
using isa::Opcode;

Transfer
transferKind(const Instruction &inst)
{
    switch (inst.op) {
      case Opcode::BEQ:
        // The 'b' pseudo-instruction assembles to beq r0, r0: the
        // comparison is a tautology, so treat it as an unconditional
        // jump (no fallthrough edge).
        if (inst.rs1 == inst.rs2)
            return Transfer::Jump;
        return Transfer::Branch;
      case Opcode::BNE:
      case Opcode::BLT:
        if (inst.rs1 == inst.rs2)
            return Transfer::None; // never taken
        return Transfer::Branch;
      case Opcode::BGE:
        if (inst.rs1 == inst.rs2)
            return Transfer::Jump; // always taken
        return Transfer::Branch;
      case Opcode::JAL:
        return Transfer::Jump;
      case Opcode::JALR:
      case Opcode::JMP:
        return Transfer::Indirect;
      case Opcode::HALT:
        return Transfer::Halt;
      default:
        return Transfer::None;
    }
}

bool
isControlTransfer(const Instruction &inst)
{
    return transferKind(inst) != Transfer::None;
}

Cfg::Cfg(const assembler::Program &program)
    : program_(program)
{
    decodeAll();
    std::vector<bool> leader(instructions_.size(), false);
    findLeaders(leader);
    buildBlocks(leader);
    linkEdges();

    // Resolve the entry block.
    uint32_t entry_addr = program_.base;
    const auto it = program_.symbols.find("entry");
    if (it != program_.symbols.end())
        entry_addr = it->second;
    if (contains(entry_addr))
        entry_ = blockAt(entry_addr);
}

const CfgInstruction &
Cfg::at(uint32_t addr) const
{
    rr_assert(contains(addr), "address ", addr, " outside image");
    return instructions_[addr - program_.base];
}

uint32_t
Cfg::blockAt(uint32_t addr) const
{
    if (!contains(addr))
        return noBlock;
    return blockIndex_[addr - program_.base];
}

std::vector<uint32_t>
Cfg::roots() const
{
    std::vector<uint32_t> out;
    if (entry_ != noBlock)
        out.push_back(entry_);
    for (const BasicBlock &block : blocks_) {
        if (block.preds.empty() && block.id != entry_)
            out.push_back(block.id);
    }
    return out;
}

bool
Cfg::directTarget(const CfgInstruction &ci, uint32_t &target) const
{
    if (!ci.valid)
        return false;
    const Transfer kind = transferKind(ci.inst);
    if (kind != Transfer::Branch && kind != Transfer::Jump)
        return false;
    // Branch and JAL offsets are relative to the instruction's own
    // address (the assembler emits target - cursor; the CPU computes
    // pc + imm).
    target = ci.address + static_cast<uint32_t>(ci.inst.imm);
    return true;
}

void
Cfg::decodeAll()
{
    instructions_.resize(program_.words.size());
    for (size_t i = 0; i < program_.words.size(); ++i) {
        CfgInstruction &ci = instructions_[i];
        ci.address = program_.base + static_cast<uint32_t>(i);
        ci.line = program_.lineAt(ci.address);
        ci.word = program_.words[i];
        ci.valid = isa::decode(ci.word, ci.inst);
    }
}

void
Cfg::findLeaders(std::vector<bool> &leader) const
{
    if (instructions_.empty())
        return;
    leader[0] = true;

    for (const auto &[name, addr] : program_.symbols) {
        if (contains(addr))
            leader[addr - program_.base] = true;
    }

    for (size_t i = 0; i < instructions_.size(); ++i) {
        const CfgInstruction &ci = instructions_[i];
        if (!ci.valid) {
            // Data terminates a block; the next word (if code) starts
            // a new one.
            if (i + 1 < instructions_.size())
                leader[i + 1] = true;
            continue;
        }
        if (!isControlTransfer(ci.inst))
            continue;
        if (i + 1 < instructions_.size())
            leader[i + 1] = true;
        uint32_t target;
        if (directTarget(ci, target) && contains(target))
            leader[target - program_.base] = true;
    }
}

void
Cfg::buildBlocks(const std::vector<bool> &leader)
{
    blockIndex_.assign(instructions_.size(), noBlock);

    size_t i = 0;
    while (i < instructions_.size()) {
        if (!instructions_[i].valid) {
            ++i; // data word: belongs to no block
            continue;
        }
        BasicBlock block;
        block.id = static_cast<uint32_t>(blocks_.size());
        block.begin = instructions_[i].address;
        size_t j = i;
        while (j < instructions_.size() && instructions_[j].valid) {
            blockIndex_[j] = block.id;
            const bool ends = isControlTransfer(instructions_[j].inst);
            ++j;
            if (ends || (j < instructions_.size() && leader[j]))
                break;
        }
        block.end = program_.base + static_cast<uint32_t>(j);
        blocks_.push_back(block);
        i = j;
    }
}

void
Cfg::linkEdges()
{
    auto link = [&](uint32_t from, uint32_t to) {
        blocks_[from].succs.push_back(to);
        blocks_[to].preds.push_back(from);
    };

    for (BasicBlock &block : blocks_) {
        const CfgInstruction &last = at(block.end - 1);
        const Transfer kind =
            last.valid ? transferKind(last.inst) : Transfer::None;

        if (kind == Transfer::Indirect) {
            block.indirectExit = true;
            continue; // unknown targets: no edges
        }
        if (kind == Transfer::Halt)
            continue;

        uint32_t target;
        if ((kind == Transfer::Branch || kind == Transfer::Jump) &&
            directTarget(last, target)) {
            const uint32_t tb = blockAt(target);
            if (tb != noBlock)
                link(block.id, tb);
        }
        if (kind == Transfer::None || kind == Transfer::Branch) {
            const uint32_t fb = blockAt(block.end);
            if (fb != noBlock)
                link(block.id, fb);
        }
    }

    // Dedup edges (a branch whose target is also the fallthrough).
    for (BasicBlock &block : blocks_) {
        auto dedup = [](std::vector<uint32_t> &v) {
            std::sort(v.begin(), v.end());
            v.erase(std::unique(v.begin(), v.end()), v.end());
        };
        dedup(block.succs);
        dedup(block.preds);
    }
}

} // namespace rr::lint
