#include "analysis/static/callgraph.hh"

#include <algorithm>
#include <deque>
#include <map>

#include "base/bitops.hh"
#include "base/logging.hh"
#include "isa/instruction.hh"

namespace rr::lint {

using isa::Instruction;
using isa::Opcode;

namespace {

/** Context-relative register operands of @p inst (reads vs writes). */
void
operandBits(const Instruction &inst, uint64_t &read, uint64_t &written)
{
    const isa::FormatInfo info =
        isa::formatInfo(isa::formatOf(inst.op));
    if (info.hasRd) {
        // ST's slot A is read, not written (mirrors the CPU).
        if (inst.op == Opcode::ST)
            read |= uint64_t{1} << (inst.rd & 63);
        else
            written |= uint64_t{1} << (inst.rd & 63);
    }
    if (info.hasRs1)
        read |= uint64_t{1} << (inst.rs1 & 63);
    if (info.hasRs2)
        read |= uint64_t{1} << (inst.rs2 & 63);
}

} // namespace

CallGraph::CallGraph(const Cfg &cfg) : cfg_(cfg)
{
    blockOwner_.assign(cfg_.blocks().size(), noProc);
    collectEntries();
    discoverBodies();
    summarize();
    buildPaths();
}

uint32_t
CallGraph::procByEntry(uint32_t addr) const
{
    for (uint32_t i = 0; i < procs_.size(); ++i) {
        if (procs_[i].entry == addr)
            return i;
    }
    return noProc;
}

uint32_t
CallGraph::procOfBlock(uint32_t blockId) const
{
    return blockId < blockOwner_.size() ? blockOwner_[blockId]
                                        : noProc;
}

uint32_t
CallGraph::procOfAddress(uint32_t addr) const
{
    const uint32_t block = cfg_.blockAt(addr);
    return block == Cfg::noBlock ? noProc : procOfBlock(block);
}

void
CallGraph::collectEntries()
{
    const assembler::Program &program = cfg_.program();

    // Entry address -> flags, gathered before procedure creation so a
    // label can be entry, thread, and lock procedure at once.
    std::map<uint32_t, Procedure> entries;
    auto declare = [&](uint32_t addr) -> Procedure * {
        if (cfg_.blockAt(addr) == Cfg::noBlock)
            return nullptr; // data or outside the image
        auto [it, inserted] = entries.try_emplace(addr);
        if (inserted)
            it->second.entry = addr;
        return &it->second;
    };

    if (cfg_.entryBlock() != Cfg::noBlock) {
        const uint32_t addr =
            cfg_.blocks()[cfg_.entryBlock()].begin;
        if (Procedure *p = declare(addr))
            p->isEntry = true;
    }
    for (const assembler::ThreadDecl &decl : program.threads) {
        if (Procedure *p = declare(decl.address)) {
            p->isThread = true;
            if (decl.hasRrm) {
                p->hasThreadRrm = true;
                p->threadRrm = decl.rrm;
            }
        }
    }
    for (const uint32_t addr : program.addressTaken) {
        if (Procedure *p = declare(addr))
            p->addressTaken = true;
    }
    for (const assembler::LockDef &def : program.lockdefs) {
        if (locks_.size() >= 32)
            break; // lockset bitmasks are 32 bits wide
        const int lock = static_cast<int>(locks_.size());
        locks_.push_back(def.name);
        if (Procedure *p = declare(def.acquire))
            p->lockAcquire = lock;
        if (Procedure *p = declare(def.release))
            p->lockRelease = lock;
    }
    for (const CfgInstruction &ci : cfg_.instructions()) {
        if (!ci.valid || ci.inst.op != Opcode::JAL)
            continue;
        uint32_t target;
        if (cfg_.directTarget(ci, target))
            declare(target);
    }

    for (auto &[addr, proc] : entries) {
        const std::vector<std::string> labels =
            cfg_.program().labelsAt(addr);
        proc.name = labels.empty() ? "@" + std::to_string(addr)
                                   : labels.front();
        procs_.push_back(std::move(proc));
    }
}

void
CallGraph::discoverBodies()
{
    for (uint32_t pi = 0; pi < procs_.size(); ++pi) {
        Procedure &proc = procs_[pi];
        const uint32_t entry_block = cfg_.blockAt(proc.entry);
        rr_assert(entry_block != Cfg::noBlock,
                  "procedure entry has no block");

        std::deque<uint32_t> work{entry_block};
        std::vector<bool> seen(cfg_.blocks().size(), false);
        seen[entry_block] = true;
        while (!work.empty()) {
            const uint32_t id = work.front();
            work.pop_front();
            const BasicBlock &block = cfg_.blocks()[id];
            proc.blocks.push_back(id);
            if (blockOwner_[id] == noProc)
                blockOwner_[id] = pi;

            auto enqueue = [&](uint32_t next) {
                if (next != Cfg::noBlock && !seen[next]) {
                    seen[next] = true;
                    work.push_back(next);
                }
            };

            const CfgInstruction &last = cfg_.at(block.end - 1);
            if (last.valid && last.inst.op == Opcode::JAL) {
                // A call: record the site and resume at the return
                // address instead of descending into the callee.
                CallSite site;
                site.address = last.address;
                site.line = last.line;
                site.caller = pi;
                site.returnAddress = last.address + 1;
                uint32_t target;
                site.callee =
                    cfg_.directTarget(last, target)
                        ? procByEntry(target)
                        : noProc;
                site.indirect = false;
                proc.callSites.push_back(
                    static_cast<uint32_t>(sites_.size()));
                sites_.push_back(site);
                enqueue(cfg_.blockAt(site.returnAddress));
                continue;
            }
            if (last.valid && last.inst.op == Opcode::JALR) {
                CallSite site;
                site.address = last.address;
                site.line = last.line;
                site.caller = pi;
                site.callee = noProc;
                site.indirect = true;
                site.returnAddress = last.address + 1;
                proc.callSites.push_back(
                    static_cast<uint32_t>(sites_.size()));
                sites_.push_back(site);
                enqueue(cfg_.blockAt(site.returnAddress));
                continue;
            }
            if (last.valid && last.inst.op == Opcode::JMP) {
                // Return-by-convention: `jmp link` ends the body.
                proc.returnBlocks.push_back(id);
                proc.returns = true;
                continue;
            }
            for (const uint32_t succ : block.succs)
                enqueue(succ);
        }
    }

    // Callee -> caller back edges.
    for (uint32_t si = 0; si < sites_.size(); ++si) {
        const CallSite &site = sites_[si];
        if (!site.indirect && site.callee != noProc)
            procs_[site.callee].callers.push_back(si);
    }
}

void
CallGraph::summarize()
{
    for (Procedure &proc : procs_) {
        for (const uint32_t id : proc.blocks) {
            const BasicBlock &block = cfg_.blocks()[id];
            for (uint32_t addr = block.begin; addr < block.end;
                 ++addr) {
                const CfgInstruction &ci = cfg_.at(addr);
                if (!ci.valid)
                    continue;
                operandBits(ci.inst, proc.regsRead,
                            proc.regsWritten);
                if (ci.inst.op == Opcode::LDRRM ||
                    ci.inst.op == Opcode::LDRRMX) {
                    proc.switchesRrm = true;
                }
                if (ci.inst.op == Opcode::JALR)
                    proc.callsIndirect = true;
            }
        }
        proc.footprint = proc.regsRead | proc.regsWritten;
    }

    // Transitive closure over direct call edges, to a fixpoint (the
    // graph may be recursive).
    bool changed = true;
    while (changed) {
        changed = false;
        for (const CallSite &site : sites_) {
            if (site.indirect || site.callee == noProc)
                continue;
            Procedure &caller = procs_[site.caller];
            const Procedure &callee = procs_[site.callee];
            const uint64_t footprint =
                caller.footprint | callee.footprint;
            const bool switches =
                caller.switchesRrm || callee.switchesRrm;
            const bool indirect =
                caller.callsIndirect || callee.callsIndirect;
            if (footprint != caller.footprint ||
                switches != caller.switchesRrm ||
                indirect != caller.callsIndirect) {
                caller.footprint = footprint;
                caller.switchesRrm = switches;
                caller.callsIndirect = indirect;
                changed = true;
            }
        }
    }

    for (Procedure &proc : procs_) {
        if (proc.footprint != 0) {
            proc.registers =
                64 - static_cast<unsigned>(
                         std::countl_zero(proc.footprint));
        }
        proc.minContext = static_cast<unsigned>(
            roundUpPowerOfTwo(std::max(1u, proc.registers)));
    }
}

void
CallGraph::buildPaths()
{
    pathParent_.assign(procs_.size(), noProc);
    std::vector<bool> seen(procs_.size(), false);
    std::deque<uint32_t> work;

    // Roots in priority order: the program entry, declared threads,
    // address-taken procedures, then anything never called.
    auto seed = [&](uint32_t pi) {
        if (!seen[pi]) {
            seen[pi] = true;
            work.push_back(pi);
        }
    };
    for (uint32_t pi = 0; pi < procs_.size(); ++pi) {
        if (procs_[pi].isEntry)
            seed(pi);
    }
    for (uint32_t pi = 0; pi < procs_.size(); ++pi) {
        if (procs_[pi].isThread)
            seed(pi);
    }
    for (uint32_t pi = 0; pi < procs_.size(); ++pi) {
        if (procs_[pi].addressTaken)
            seed(pi);
    }
    for (uint32_t pi = 0; pi < procs_.size(); ++pi) {
        if (procs_[pi].callers.empty())
            seed(pi);
    }

    while (!work.empty()) {
        const uint32_t pi = work.front();
        work.pop_front();
        for (const uint32_t si : procs_[pi].callSites) {
            const CallSite &site = sites_[si];
            if (site.indirect || site.callee == noProc)
                continue;
            if (!seen[site.callee]) {
                seen[site.callee] = true;
                pathParent_[site.callee] = si;
                work.push_back(site.callee);
            }
        }
    }
}

std::vector<std::string>
CallGraph::callPath(uint32_t proc) const
{
    std::vector<std::string> path;
    if (proc >= procs_.size())
        return path;
    uint32_t cur = proc;
    path.push_back(procs_[cur].name);
    while (pathParent_[cur] != noProc) {
        const CallSite &site = sites_[pathParent_[cur]];
        cur = site.caller;
        path.push_back(procs_[cur].name);
        if (path.size() > procs_.size())
            break; // defensive: cyclic parents cannot happen
    }
    std::reverse(path.begin(), path.end());
    return path;
}

} // namespace rr::lint
