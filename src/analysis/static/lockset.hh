/**
 * @file
 * Eraser-style static lockset analysis over an assembled RRISC image.
 *
 * The paper's contexts make *registers* thread-private by
 * construction — the RRM relocates every operand into the thread's
 * own window — but memory stays shared, and the OS workloads
 * (spinlocks, semaphores, rings) the roadmap calls for synchronise
 * through it. This pass checks that discipline statically:
 *
 *  - thread roots are the program entry plus every `.thread` label;
 *  - lock acquire/release procedures are declared with `.lockdef
 *    NAME, ACQUIRE, RELEASE` (an annotation contract: the analysis
 *    trusts that calling ACQUIRE takes the lock and RELEASE drops
 *    it, and does not interpret the spin loop inside);
 *  - a forward must-hold dataflow runs per root over the call graph:
 *    the lockset is a bitmask, meet is intersection, a direct call's
 *    return edge applies the callee's acquire/release effect, and an
 *    indirect call (JALR) applies the transitive maybe-acquire /
 *    maybe-release effect of every address-taken returning procedure
 *    — the `.lockdef` trust contract holds through the indirection,
 *    and each such site is surfaced as an IndirectLockSite so the
 *    lint can report the approximation instead of staying silent;
 *  - memory accesses with a constant effective address (from the RRM
 *    analysis' constant propagation) are classified per root with
 *    the lockset held; accesses inside lock procedure bodies are
 *    exempt (they implement the lock itself);
 *  - a race is a pair of accesses to the same word from different
 *    roots, at least one a write, whose locksets do not intersect.
 *
 * Soundness caveats (see docs/LINT.md): accesses whose address never
 * folds to a constant are not classified, and the `.lockdef`
 * annotation is trusted, not verified.
 */

#ifndef RR_LINT_LOCKSET_HH
#define RR_LINT_LOCKSET_HH

#include <cstdint>
#include <string>
#include <vector>

#include "analysis/static/callgraph.hh"
#include "analysis/static/cfg.hh"
#include "analysis/static/rrm_state.hh"

namespace rr::lint {

/** One thread root the dataflow ran from. */
struct ThreadRoot
{
    uint32_t proc = 0; ///< procedure index in the call graph
    std::string name;  ///< procedure name ("entry", thread label)
};

/** One classified shared-memory access. */
struct Access
{
    uint32_t address = 0; ///< word address of the LD/ST
    int line = 0;         ///< 1-based source line (0 unknown)
    uint32_t mem = 0;     ///< constant effective address accessed
    bool write = false;   ///< ST (LD otherwise)
    uint32_t held = 0;    ///< must-hold lockset (bit i = lock i)
    uint32_t root = 0;    ///< index into roots()
};

/** A racing pair: same word, different roots, empty lock overlap. */
struct Race
{
    uint32_t mem = 0; ///< the contended word address
    Access first;
    Access second;
};

/**
 * One indirect call site the `.lockdef` trust contract was applied
 * through: some address-taken procedure may acquire or release a
 * lock, so the JALR's lockset effect is an approximation worth an
 * explicit finding. Recorded only when a lock procedure is actually
 * reachable indirectly — a plain helper called via JALR stays silent.
 */
struct IndirectLockSite
{
    uint32_t address = 0;  ///< word address of the JALR
    int line = 0;          ///< 1-based source line (0 unknown)
    uint32_t acquires = 0; ///< locks some possible callee may acquire
    uint32_t releases = 0; ///< locks some possible callee may release
};

/** The per-root must-hold lockset dataflow and race detector. */
class LocksetAnalysis
{
  public:
    LocksetAnalysis(const Cfg &cfg, const CallGraph &callgraph,
                    const RrmAnalysis &rrm);

    const std::vector<ThreadRoot> &roots() const { return roots_; }

    /** All classified accesses, ordered by (root, address). */
    const std::vector<Access> &accesses() const { return accesses_; }

    /** One race per contended word, ascending by address. */
    const std::vector<Race> &races() const { return races_; }

    /**
     * JALR sites whose possible callees include a lock procedure,
     * ascending by address; empty when no lock procedure is
     * address-taken.
     */
    const std::vector<IndirectLockSite> &indirectLockSites() const
    {
        return indirectSites_;
    }

    /** Lock names (bit i of a lockset = lockNames()[i]). */
    const std::vector<std::string> &lockNames() const
    {
        return callgraph_.lockNames();
    }

  private:
    void computeIndirectEffects();
    void runRoot(uint32_t rootIndex);
    void findRaces();

    const Cfg &cfg_;
    const CallGraph &callgraph_;
    const RrmAnalysis &rrm_;
    std::vector<ThreadRoot> roots_;
    std::vector<Access> accesses_;
    std::vector<Race> races_;
    std::vector<IndirectLockSite> indirectSites_;
    std::vector<bool> lockBody_; ///< block id -> inside a lock proc
    uint32_t indirectAcquire_ = 0; ///< maybe-acquired across a JALR
    uint32_t indirectRelease_ = 0; ///< maybe-released across a JALR
};

} // namespace rr::lint

#endif // RR_LINT_LOCKSET_HH
