#include "analysis/static/liveness.hh"

#include <deque>

#include "base/logging.hh"

namespace rr::lint {

using isa::Instruction;
using isa::Opcode;

UseDef
useDef(const Instruction &inst)
{
    UseDef ud;
    const isa::FormatInfo info = isa::formatInfo(isa::formatOf(inst.op));
    auto bit = [](unsigned r) { return uint64_t{1} << (r & 63); };
    if (info.hasRs1)
        ud.uses |= bit(inst.rs1);
    if (info.hasRs2)
        ud.uses |= bit(inst.rs2);
    if (info.hasRd) {
        // ST's slot A is the stored value — a source, not a
        // destination (mirrors Cpu::execute).
        if (inst.op == Opcode::ST)
            ud.uses |= bit(inst.rd);
        else
            ud.defs |= bit(inst.rd);
    }
    return ud;
}

Liveness::Liveness(const Cfg &cfg, const LivenessOptions &options)
    : cfg_(cfg), options_(options)
{
    const size_t num_blocks = cfg_.blocks().size();
    liveIn_.assign(num_blocks, 0);
    liveOut_.assign(num_blocks, 0);
    liveBefore_.assign(cfg_.instructions().size(), 0);

    // Backward fixpoint: liveOut(b) = union of liveIn(succ).
    std::deque<uint32_t> work;
    std::vector<bool> queued(num_blocks, false);
    for (uint32_t id = 0; id < num_blocks; ++id) {
        work.push_back(id);
        queued[id] = true;
    }
    while (!work.empty()) {
        const uint32_t id = work.front();
        work.pop_front();
        queued[id] = false;
        const BasicBlock &block = cfg_.blocks()[id];

        uint64_t out = 0;
        for (const uint32_t succ : block.succs)
            out |= liveIn_[succ];
        liveOut_[id] = out;
        const uint64_t in = transferBlock(block, out, false);
        if (in == liveIn_[id])
            continue;
        liveIn_[id] = in;
        for (const uint32_t pred : block.preds) {
            if (!queued[pred]) {
                work.push_back(pred);
                queued[pred] = true;
            }
        }
    }

    // Final recording pass for per-instruction live sets and window
    // entry requirements.
    for (const BasicBlock &block : cfg_.blocks())
        transferBlock(block, liveOut_[block.id], true);
}

uint64_t
Liveness::liveIn(uint32_t block_id) const
{
    rr_assert(block_id < liveIn_.size(), "bad block id");
    return liveIn_[block_id];
}

uint64_t
Liveness::liveOut(uint32_t block_id) const
{
    rr_assert(block_id < liveOut_.size(), "bad block id");
    return liveOut_[block_id];
}

uint64_t
Liveness::liveBefore(uint32_t addr) const
{
    rr_assert(cfg_.contains(addr), "address outside image");
    return liveBefore_[addr - cfg_.program().base];
}

std::vector<bool>
Liveness::effectPoints(const BasicBlock &block) const
{
    std::vector<bool> effect(block.size(), false);
    if (!options_.windowBarriers)
        return effect;
    for (uint32_t addr = block.begin; addr < block.end; ++addr) {
        const CfgInstruction &ci = cfg_.at(addr);
        const bool loads_bank0 =
            ci.inst.op == Opcode::LDRRM ||
            (ci.inst.op == Opcode::LDRRMX && ci.inst.imm == 0);
        if (!loads_bank0)
            continue;
        const uint32_t point = addr + options_.delaySlots + 1;
        if (point < block.end)
            effect[point - block.begin] = true;
        // A point at or past block.end straddles the block boundary;
        // the lint pass flags that hazard, liveness stays
        // conservative.
    }
    return effect;
}

uint64_t
Liveness::transferBlock(const BasicBlock &block, uint64_t live_out,
                        bool record)
{
    const std::vector<bool> effect = effectPoints(block);
    const uint32_t base = cfg_.program().base;

    uint64_t live = live_out;
    for (uint32_t addr = block.end; addr-- > block.begin;) {
        const UseDef ud = useDef(cfg_.at(addr).inst);
        live = ud.uses | (live & ~ud.defs);
        if (record)
            liveBefore_[addr - base] = live;
        if (effect[addr - block.begin]) {
            // The instruction at `addr` is the first of a new RRM
            // window: its live-before set is the new context's entry
            // requirement, and nothing propagates into the old
            // window (different physical registers).
            if (record)
                windowEntryLive_[addr] = live;
            live = 0;
        }
    }
    return live;
}

} // namespace rr::lint
