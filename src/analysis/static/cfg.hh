/**
 * @file
 * Control-flow graph construction over an assembled RRISC image.
 *
 * This is the backbone of the Section 2.4 static checking tool: the
 * seed's boundary checker looked at each instruction in isolation,
 * whereas the dataflow analyses (liveness, RRM tracking) need basic
 * blocks with explicit successor edges.
 *
 * Block leaders are: the image base, every label, every direct
 * branch/jump target, and the instruction following any control
 * transfer. Direct targets come from B-format branches (PC-relative)
 * and JAL; JALR and JMP are indirect — their targets are unknown to
 * the CFG, so the block is marked `indirectExit` and gets no successor
 * edges (the RRM analysis seeds every CFG root conservatively, so
 * code reachable only through indirect jumps is still analysed).
 *
 * Words that do not decode (data in the image) terminate the current
 * block and never join one.
 */

#ifndef RR_LINT_CFG_HH
#define RR_LINT_CFG_HH

#include <cstdint>
#include <vector>

#include "assembler/assembler.hh"
#include "isa/instruction.hh"

namespace rr::lint {

/** One decoded instruction plus its provenance. */
struct CfgInstruction
{
    uint32_t address = 0;  ///< word address
    int line = 0;          ///< 1-based source line (0 when unknown)
    uint32_t word = 0;     ///< raw encoding
    bool valid = false;    ///< decoded successfully
    isa::Instruction inst; ///< decoded form (valid only when `valid`)
};

/** Control-transfer classification of an instruction. */
enum class Transfer : uint8_t
{
    None,        ///< falls through
    Branch,      ///< conditional, direct target + fallthrough
    Jump,        ///< unconditional, direct target (JAL, b pseudo)
    Indirect,    ///< JALR / JMP: target unknown
    Halt,        ///< HALT: no successor
};

/** Classify @p inst (BEQ r0,r0 counts as an unconditional Jump). */
Transfer transferKind(const isa::Instruction &inst);

/** @return true when @p inst redirects control flow. */
bool isControlTransfer(const isa::Instruction &inst);

/** A maximal straight-line run of decodable instructions. */
struct BasicBlock
{
    uint32_t id = 0;       ///< index into Cfg::blocks()
    uint32_t begin = 0;    ///< first word address (inclusive)
    uint32_t end = 0;      ///< one past the last word address

    std::vector<uint32_t> succs; ///< successor block ids
    std::vector<uint32_t> preds; ///< predecessor block ids

    bool indirectExit = false; ///< ends in JALR/JMP (unknown target)

    uint32_t size() const { return end - begin; }
};

/** The control-flow graph of one assembled program. */
class Cfg
{
  public:
    /** Build the CFG of @p program. */
    explicit Cfg(const assembler::Program &program);

    const assembler::Program &program() const { return program_; }

    const std::vector<BasicBlock> &blocks() const { return blocks_; }

    /** All decoded (and undecodable) words, indexed by addr - base. */
    const std::vector<CfgInstruction> &instructions() const
    {
        return instructions_;
    }

    /** @return true when @p addr names a word of the image. */
    bool contains(uint32_t addr) const
    {
        return program_.contains(addr);
    }

    /** Instruction at @p addr; panics when outside the image. */
    const CfgInstruction &at(uint32_t addr) const;

    /**
     * Id of the block containing @p addr, or `noBlock` when the word
     * is data or outside the image.
     */
    static constexpr uint32_t noBlock = ~uint32_t{0};
    uint32_t blockAt(uint32_t addr) const;

    /**
     * Entry block: the 'entry' label when defined, else the image
     * base; `noBlock` for an empty image.
     */
    uint32_t entryBlock() const { return entry_; }

    /**
     * Roots: the entry block plus every block without predecessors
     * (reachable only via labels or indirect jumps). Analyses seed
     * their work lists from here so no code goes unexamined.
     */
    std::vector<uint32_t> roots() const;

    /**
     * Direct target address of the control transfer ending the block,
     * when it has one (Branch/Jump with a decoded PC-relative
     * offset).
     * @return true and sets @p target on success.
     */
    bool directTarget(const CfgInstruction &ci, uint32_t &target) const;

  private:
    void decodeAll();
    void findLeaders(std::vector<bool> &leader) const;
    void buildBlocks(const std::vector<bool> &leader);
    void linkEdges();

    const assembler::Program &program_;
    std::vector<CfgInstruction> instructions_;
    std::vector<BasicBlock> blocks_;
    std::vector<uint32_t> blockIndex_; ///< addr - base -> block id
    uint32_t entry_ = noBlock;
};

} // namespace rr::lint

#endif // RR_LINT_CFG_HH
