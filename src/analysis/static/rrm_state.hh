/**
 * @file
 * Forward abstract interpretation of the register relocation mask.
 *
 * The seed's boundary checker required hand-declared `Region`s saying
 * which context size governs which code. This analysis makes the
 * check flow-sensitive instead: it tracks the RRM through `LDRRM`
 * (including its delay slots) by propagating constants through the
 * register file, so `li r10, 0x20; ldrrm r10` is understood to open
 * the context window at physical register 0x20.
 *
 * Abstract domain, per program point:
 *   - the RRM (bank 0): unreachable / known constant / unknown;
 *   - a pending LDRRM (value + remaining delay slots), mirroring the
 *     CPU's delay-slot state machine;
 *   - known constants in *physical* registers. Keying by physical
 *     register is what makes the two_threads.s idiom analysable: the
 *     values written under one window survive a window switch.
 *
 * The pass also reports the paper-specific delay-slot hazards:
 *   - a control transfer executing inside an LDRRM delay window (the
 *     mask lands at the target, which rarely expects it);
 *   - an LDRRM issued while another LDRRM is still pending;
 *   - with a call graph: an LDRRM whose delay window is still open
 *     when a procedure returns, so the mask lands in the caller.
 *
 * When constructed with a CallGraph the analysis additionally:
 *   - adds return edges (a callee's `jmp` exit state flows to every
 *     direct call site's return point, pending LDRRM included), so
 *     the instruction after a call is no longer a conservative Top
 *     root but sees the mask the callee actually left behind;
 *   - seeds `.thread` entry points with their declared entry mask
 *     (default: the initial RRM) instead of Top, which keeps constant
 *     tracking alive inside thread bodies;
 *   - records the abstract effective address of every LD/ST, the
 *     input the lockset race detector classifies accesses with.
 */

#ifndef RR_LINT_RRM_STATE_HH
#define RR_LINT_RRM_STATE_HH

#include <cstdint>
#include <map>
#include <vector>

#include "analysis/static/cfg.hh"

namespace rr::lint {

/** Decode-stage combining operation (mirrors machine::RelocationMode
 *  without dragging the machine library into the linter). */
enum class RelocMode : uint8_t
{
    Or,  ///< physical = rrm | operand (the paper's mechanism)
    Mux, ///< per-bit select; needs a declared context size
    Add, ///< physical = rrm + operand (Am29000 comparison)
};

/** A three-point lattice value: bottom / constant / top. */
struct AbsVal
{
    enum Kind : uint8_t { Bottom, Const, Top };

    Kind kind = Bottom;
    uint32_t value = 0;

    static AbsVal bottom() { return {}; }
    static AbsVal top() { return {Top, 0}; }
    static AbsVal constant(uint32_t v) { return {Const, v}; }

    bool isConst() const { return kind == Const; }
    bool isTop() const { return kind == Top; }

    bool operator==(const AbsVal &other) const
    {
        return kind == other.kind &&
               (kind != Const || value == other.value);
    }

    /** Lattice join. */
    static AbsVal join(const AbsVal &a, const AbsVal &b);
};

/** Options for the RRM abstract interpretation. */
struct RrmOptions
{
    unsigned delaySlots = 1;   ///< LDRRM delay slots
    uint32_t initialRrm = 0;   ///< RRM at the entry point
    RelocMode mode = RelocMode::Or;
    unsigned banks = 1;        ///< >1: top operand bits select a bank
    unsigned operandWidth = 6; ///< operand field width w

    /**
     * Context size for Mux-mode relocation (0 = unknown: Mux reads
     * become top). Ignored by Or/Add.
     */
    unsigned muxContextSize = 0;
};

/** One delay-slot hazard found during interpretation. */
struct RrmHazard
{
    enum Kind : uint8_t
    {
        ControlInDelay, ///< control transfer inside an LDRRM window
        LdrrmInDelay,   ///< LDRRM while another LDRRM is pending
        PendingAcrossReturn, ///< LDRRM window still open at a `jmp`
                             ///< return: the mask lands in the caller
    };

    Kind kind = ControlInDelay;
    uint32_t address = 0;
    int line = 0;
};

class CallGraph;

/** Forward RRM/constant analysis over a Cfg. */
class RrmAnalysis
{
  public:
    /**
     * @param callgraph optional: enables interprocedural return-edge
     *                  propagation, `.thread` seeding, and the
     *                  PendingAcrossReturn hazard. Must outlive the
     *                  analysis.
     */
    RrmAnalysis(const Cfg &cfg, const RrmOptions &options = {},
                const CallGraph *callgraph = nullptr);

    /**
     * The RRM in effect when the instruction at @p addr decodes
     * (delay slots accounted for). Bottom = unreachable.
     */
    const AbsVal &rrmBefore(uint32_t addr) const;

    /**
     * Abstract effective address of the LD/ST at @p addr: constant
     * when base register + displacement fold, Top when unknown,
     * Bottom when unreachable or not a memory access.
     */
    const AbsVal &memAddrBefore(uint32_t addr) const;

    /** Delay-slot hazards, in address order. */
    const std::vector<RrmHazard> &hazards() const { return hazards_; }

    /**
     * Distinct constant RRM values observed at reachable
     * instructions, sorted ascending — the program's context
     * windows.
     */
    const std::vector<uint32_t> &observedWindows() const
    {
        return windows_;
    }

    /**
     * Relocate context-relative @p reg under constant mask @p rrm
     * according to the configured mode.
     * @return true and sets @p physical when the mapping is known.
     */
    bool relocate(uint32_t rrm, unsigned reg, uint32_t &physical) const;

  private:
    struct Pending
    {
        bool active = false;
        AbsVal value;
        unsigned remaining = 0;

        bool operator==(const Pending &other) const
        {
            return active == other.active &&
                   (!active || (value == other.value &&
                                remaining == other.remaining));
        }
    };

    struct State
    {
        bool reachable = false;
        AbsVal rrm;
        Pending pending;
        std::map<uint32_t, uint32_t> phys; ///< known phys-reg consts

        bool operator==(const State &other) const
        {
            return reachable == other.reachable &&
                   rrm == other.rrm && pending == other.pending &&
                   phys == other.phys;
        }
    };

    static State joinStates(const State &a, const State &b);

    /** Abstract read of context-relative @p reg under @p state. */
    AbsVal readReg(const State &state, unsigned reg) const;

    /** Abstract write of context-relative @p reg. */
    void writeReg(State &state, unsigned reg, const AbsVal &v) const;

    /** One instruction; returns hazards via hazards_ when @p record. */
    void transferInstruction(State &state, const CfgInstruction &ci,
                             bool record);

    /**
     * Run @p block; returns the raw exit state (no exit adjustment),
     * so callers choose per-edge what survives a control transfer.
     */
    State transferBlock(const BasicBlock &block, State state,
                        bool record);

    /** Kill a pending LDRRM surviving a control-transfer exit. */
    void clearPendingAtExit(const BasicBlock &block,
                            State &state) const;

    const Cfg &cfg_;
    RrmOptions options_;
    const CallGraph *callgraph_ = nullptr;
    std::vector<State> inStates_;
    std::vector<AbsVal> rrmBefore_;     ///< indexed by addr - base
    std::vector<AbsVal> memAddrBefore_; ///< indexed by addr - base
    std::vector<RrmHazard> hazards_;
    std::vector<uint32_t> windows_;
};

} // namespace rr::lint

#endif // RR_LINT_RRM_STATE_HH
