#include "analysis/static/lint.hh"

#include <algorithm>
#include <map>
#include <optional>
#include <sstream>

#include "analysis/static/callgraph.hh"
#include "analysis/static/lockset.hh"
#include "base/bitops.hh"
#include "base/logging.hh"

namespace rr::lint {

using isa::Instruction;
using isa::Opcode;

const char *
severityName(Severity severity)
{
    switch (severity) {
      case Severity::Error:
        return "error";
      case Severity::Warning:
        return "warning";
      case Severity::Note:
        return "note";
    }
    return "?";
}

std::string
Finding::str() const
{
    std::ostringstream os;
    if (line > 0)
        os << "line " << line << ": ";
    os << severityName(severity) << ": [" << code << "] " << message
       << " (addr " << address << ")";
    if (!path.empty()) {
        os << " [via ";
        for (size_t i = 0; i < path.size(); ++i)
            os << (i ? " -> " : "") << path[i];
        os << "]";
    }
    return os.str();
}

namespace {

/** Offset bits of @p reg under the bank-select interpretation. */
unsigned
bankOffset(unsigned reg, const LintOptions &options)
{
    if (options.banks <= 1)
        return reg;
    const unsigned bank_bits = log2Ceil(options.banks);
    const unsigned offset_bits = options.operandWidth - bank_bits;
    return reg & static_cast<unsigned>(lowMask(offset_bits));
}

/** @return true when @p reg addresses a non-default RRM bank. */
bool
selectsOtherBank(unsigned reg, const LintOptions &options)
{
    if (options.banks <= 1)
        return false;
    const unsigned bank_bits = log2Ceil(options.banks);
    return (reg >> (options.operandWidth - bank_bits)) != 0;
}

/** Register operands of @p inst with their slot names. */
struct Operand
{
    const char *slot;
    unsigned reg;
    bool isWrite;
};

std::vector<Operand>
operandsOf(const Instruction &inst)
{
    std::vector<Operand> out;
    const isa::FormatInfo info = isa::formatInfo(isa::formatOf(inst.op));
    if (info.hasRd) {
        // ST's slot A is read, not written (mirrors the CPU).
        out.push_back({"rd", inst.rd, inst.op != Opcode::ST});
    }
    if (info.hasRs1)
        out.push_back({"rs1", inst.rs1, false});
    if (info.hasRs2)
        out.push_back({"rs2", inst.rs2, false});
    return out;
}

class Linter
{
  public:
    Linter(const assembler::Program &program,
           const LintOptions &options)
        : program_(program), options_(options)
    {
    }

    LintResult run();

  private:
    void add(const std::string &code, Severity severity,
             uint32_t address, const std::string &message)
    {
        Finding f;
        f.code = code;
        f.severity = severity;
        f.address = address;
        f.line = program_.lineAt(address);
        f.message = message;
        result_.findings.push_back(std::move(f));
    }

    void flatCheck();
    void flowChecks(const Cfg &cfg, const RrmAnalysis &rrm,
                    const Liveness &liveness);
    void buildThreadReports(const Cfg &cfg, const RrmAnalysis &rrm,
                            const Liveness &liveness);
    void crossContextChecks(const Cfg &cfg, const RrmAnalysis &rrm);
    void interprocChecks(const CallGraph &cg, const RrmAnalysis &rrm);
    void locksetChecks(const Cfg &cfg, const CallGraph &cg,
                       const RrmAnalysis &rrm);
    void attachPaths(const CallGraph &cg);

    const assembler::Program &program_;
    const LintOptions &options_;
    LintResult result_;
};

void
Linter::flatCheck()
{
    for (size_t i = 0; i < program_.words.size(); ++i) {
        const uint32_t addr =
            program_.base + static_cast<uint32_t>(i);
        Instruction inst;
        if (!isa::decode(program_.words[i], inst)) {
            if (options_.flagInvalidWords) {
                add("invalid-word", Severity::Error, addr,
                    "word does not decode to any instruction");
            }
            continue;
        }
        if (options_.declaredContext == 0)
            continue;
        for (const Operand &op : operandsOf(inst)) {
            const unsigned offset = bankOffset(op.reg, options_);
            if (offset < options_.declaredContext)
                continue;
            std::ostringstream os;
            os << isa::disassemble(inst) << ": " << op.slot << " r"
               << op.reg << " outside declared context of "
               << options_.declaredContext << " registers";
            add("boundary", Severity::Error, addr, os.str());
        }
    }
}

void
Linter::flowChecks(const Cfg &cfg, const RrmAnalysis &rrm,
                   const Liveness &liveness)
{
    (void)liveness;

    // Delay-slot hazards found by the abstract interpreter.
    for (const RrmHazard &hazard : rrm.hazards()) {
        switch (hazard.kind) {
          case RrmHazard::ControlInDelay:
            add("delay-slot-control", Severity::Error, hazard.address,
                "control transfer inside an LDRRM delay window: the "
                "new mask takes effect at the transfer target");
            break;
          case RrmHazard::LdrrmInDelay:
            add("ldrrm-in-delay-slot", Severity::Error, hazard.address,
                "LDRRM issued while a previous LDRRM is still in its "
                "delay slots");
            break;
          case RrmHazard::PendingAcrossReturn:
            add("ldrrm-across-call", Severity::Error, hazard.address,
                "LDRRM delay window still open at procedure return: "
                "the new mask lands in the caller, which continues "
                "under an unexpected context window");
            break;
        }
    }

    // Flow-sensitive boundary check: under OR relocation, an operand
    // sharing bits with the known mask escapes its context window.
    if (options_.mode != RelocMode::Or)
        return;
    for (const CfgInstruction &ci : cfg.instructions()) {
        if (!ci.valid)
            continue;
        const AbsVal mask = rrm.rrmBefore(ci.address);
        if (!mask.isConst() || mask.value == 0)
            continue;
        for (const Operand &op : operandsOf(ci.inst)) {
            if (selectsOtherBank(op.reg, options_))
                continue;
            const unsigned offset = bankOffset(op.reg, options_);
            if ((mask.value & offset) == 0)
                continue;
            std::ostringstream os;
            os << isa::disassemble(ci.inst) << ": " << op.slot << " r"
               << op.reg << " overlaps RRM 0x" << std::hex
               << mask.value << std::dec
               << " — the access escapes its context window (max "
               << (1u << findFirstSet(mask.value))
               << " registers here)";
            add("rrm-overlap", Severity::Error, ci.address, os.str());
        }
    }
}

void
Linter::buildThreadReports(const Cfg &cfg, const RrmAnalysis &rrm,
                           const Liveness &liveness)
{
    std::map<uint32_t, ThreadReport> reports;
    for (const uint32_t window : rrm.observedWindows()) {
        ThreadReport report;
        report.rrm = window;
        reports.emplace(window, report);
    }

    // Footprints: registers referenced while the window is active.
    for (const CfgInstruction &ci : cfg.instructions()) {
        if (!ci.valid)
            continue;
        const AbsVal mask = rrm.rrmBefore(ci.address);
        if (!mask.isConst())
            continue;
        ThreadReport &report = reports[mask.value];
        for (const Operand &op : operandsOf(ci.inst)) {
            if (selectsOtherBank(op.reg, options_))
                continue;
            report.footprint |= uint64_t{1}
                                << (bankOffset(op.reg, options_) & 63);
        }
    }

    // Entry requirements: the liveness barrier recorded the live set
    // at every LDRRM effect point; attribute it to the window that
    // takes effect there. The program entry belongs to the initial
    // window.
    for (const auto &[addr, live] : liveness.windowEntryLive()) {
        const AbsVal mask = rrm.rrmBefore(addr);
        if (mask.isConst())
            reports[mask.value].liveIn |= live;
    }
    if (cfg.entryBlock() != Cfg::noBlock) {
        const AbsVal entry_mask =
            rrm.rrmBefore(cfg.blocks()[cfg.entryBlock()].begin);
        if (entry_mask.isConst()) {
            reports[entry_mask.value].liveIn |=
                liveness.liveIn(cfg.entryBlock());
        }
    }

    for (auto &[window, report] : reports) {
        if (report.footprint != 0) {
            const unsigned max_reg =
                63 - static_cast<unsigned>(
                         std::countl_zero(report.footprint));
            report.registers = max_reg + 1;
        }
        report.minContext = static_cast<unsigned>(
            roundUpPowerOfTwo(std::max(1u, report.registers)));
        result_.threads.push_back(report);
    }
}

void
Linter::crossContextChecks(const Cfg &cfg, const RrmAnalysis &rrm)
{
    if (options_.mode == RelocMode::Mux)
        return; // Mux hardware bounds-checks; nothing can escape.

    // Physical span of every window, from the thread reports.
    struct Span
    {
        uint32_t rrm;
        uint32_t begin;
        uint32_t end;
        uint64_t liveIn;
    };
    std::vector<Span> spans;
    for (const ThreadReport &report : result_.threads) {
        if (report.registers == 0)
            continue;
        uint32_t begin;
        if (!rrm.relocate(report.rrm, 0, begin))
            continue;
        spans.push_back({report.rrm, begin, begin + report.registers,
                         report.liveIn});
    }

    for (const CfgInstruction &ci : cfg.instructions()) {
        if (!ci.valid)
            continue;
        const AbsVal mask = rrm.rrmBefore(ci.address);
        if (!mask.isConst())
            continue;
        for (const Operand &op : operandsOf(ci.inst)) {
            if (!op.isWrite || selectsOtherBank(op.reg, options_))
                continue;
            uint32_t physical;
            if (!rrm.relocate(mask.value,
                              bankOffset(op.reg, options_), physical)) {
                continue;
            }
            for (const Span &span : spans) {
                if (span.rrm == mask.value)
                    continue;
                if (physical < span.begin || physical >= span.end)
                    continue;
                const unsigned other_reg = physical - span.begin;
                if ((span.liveIn & (uint64_t{1} << other_reg)) == 0)
                    continue;
                std::ostringstream os;
                os << isa::disassemble(ci.inst) << ": write to r"
                   << unsigned{op.reg} << " under RRM 0x" << std::hex
                   << mask.value << " hits physical register 0x"
                   << physical << " = r" << std::dec << other_reg
                   << " of context window 0x" << std::hex << span.rrm
                   << std::dec << ", which is live when that context "
                   << "is entered";
                add("cross-context-write", Severity::Warning,
                    ci.address, os.str());
            }
        }
    }
}

void
Linter::interprocChecks(const CallGraph &cg, const RrmAnalysis &rrm)
{
    for (uint32_t pi = 0; pi < cg.procedures().size(); ++pi) {
        const Procedure &proc = cg.procedures()[pi];
        ProcedureReport report;
        report.name = proc.name;
        report.entry = proc.entry;
        report.registers = proc.registers;
        report.minContext = proc.minContext;
        report.regsRead = proc.regsRead;
        report.regsWritten = proc.regsWritten;
        report.switchesRrm = proc.switchesRrm;
        report.returns = proc.returns;
        report.callPath = cg.callPath(pi);
        result_.procedures.push_back(std::move(report));
    }

    // Summary-level undersized-context check: the per-instruction
    // rrm-overlap findings show *where* a callee escapes its window;
    // this one indicts the call site that entered the callee with too
    // small a window, with the call path as witness.
    if (options_.mode != RelocMode::Or)
        return;
    for (const CallSite &site : cg.callSites()) {
        if (site.indirect || site.callee == CallGraph::noProc)
            continue;
        const AbsVal mask = rrm.rrmBefore(site.address);
        if (!mask.isConst() || mask.value == 0)
            continue;
        const Procedure &callee = cg.procedures()[site.callee];
        if (callee.switchesRrm || callee.callsIndirect)
            continue; // the subtree picks its own windows
        const unsigned capacity =
            1u << findFirstSet(mask.value);
        if (callee.registers <= capacity)
            continue;
        std::ostringstream os;
        os << "call to '" << callee.name << "' needs "
           << callee.registers << " register(s) (minimal context "
           << callee.minContext << ") but the window open here (RRM "
           << "0x" << std::hex << mask.value << std::dec
           << ") holds only " << capacity;
        add("call-undersized-context", Severity::Error, site.address,
            os.str());
        result_.findings.back().path = cg.callPath(site.callee);
    }
}

void
Linter::locksetChecks(const Cfg &cfg, const CallGraph &cg,
                      const RrmAnalysis &rrm)
{
    const LocksetAnalysis lockset(cfg, cg, rrm);

    auto lock_names = [&](uint32_t held) {
        std::vector<std::string> names;
        for (unsigned i = 0; i < lockset.lockNames().size(); ++i) {
            if ((held >> i) & 1)
                names.push_back(lockset.lockNames()[i]);
        }
        return names;
    };
    auto lock_text = [&](uint32_t held) {
        const std::vector<std::string> names = lock_names(held);
        if (names.empty())
            return std::string("none");
        std::string out;
        for (const std::string &name : names)
            out += (out.empty() ? "" : "+") + name;
        return out;
    };
    auto site_of = [&](const Access &access) {
        RaceSite site;
        site.address = access.address;
        site.line = access.line;
        site.write = access.write;
        site.thread = lockset.roots()[access.root].name;
        site.locks = lock_names(access.held);
        return site;
    };

    for (const Race &race : lockset.races()) {
        RaceReport report;
        report.mem = race.mem;
        const std::vector<std::string> labels =
            program_.labelsAt(race.mem);
        if (!labels.empty())
            report.symbol = labels.front();
        report.first = site_of(race.first);
        report.second = site_of(race.second);

        std::ostringstream os;
        os << "shared word 0x" << std::hex << race.mem << std::dec;
        if (!report.symbol.empty())
            os << " ('" << report.symbol << "')";
        os << ": " << (race.first.write ? "write" : "read")
           << " at addr " << race.first.address << " (thread '"
           << report.first.thread << "', locks "
           << lock_text(race.first.held) << ") races with "
           << (race.second.write ? "write" : "read") << " at addr "
           << race.second.address << " (thread '"
           << report.second.thread << "', locks "
           << lock_text(race.second.held) << ")";
        add("race", Severity::Error, race.first.address, os.str());

        result_.races.push_back(std::move(report));
    }

    // Every JALR that may reach a lock procedure: the .lockdef trust
    // contract was applied through an indirection the analysis cannot
    // resolve, so say so instead of silently approximating.
    for (const IndirectLockSite &site : lockset.indirectLockSites()) {
        std::ostringstream os;
        os << "indirect call may reach a lock procedure (acquires "
           << lock_text(site.acquires) << ", releases "
           << lock_text(site.releases)
           << "): the .lockdef contract is applied through the jalr "
              "but the actual target is unverified";
        add("lock-indirect-call", Severity::Warning, site.address,
            os.str());
    }
}

void
Linter::attachPaths(const CallGraph &cg)
{
    for (Finding &f : result_.findings) {
        if (!f.path.empty())
            continue;
        const uint32_t proc = cg.procOfAddress(f.address);
        if (proc == CallGraph::noProc)
            continue;
        std::vector<std::string> path = cg.callPath(proc);
        if (path.size() >= 2)
            f.path = std::move(path);
    }
}

LintResult
Linter::run()
{
    flatCheck();

    if (options_.flowSensitive && !program_.words.empty()) {
        Cfg cfg(program_);

        LivenessOptions live_options;
        live_options.delaySlots = options_.delaySlots;
        Liveness liveness(cfg, live_options);

        std::optional<CallGraph> cg;
        if (options_.interprocedural || options_.lockset)
            cg.emplace(cfg);

        RrmOptions rrm_options;
        rrm_options.delaySlots = options_.delaySlots;
        rrm_options.initialRrm = options_.initialRrm;
        rrm_options.mode = options_.mode;
        rrm_options.banks = options_.banks;
        rrm_options.operandWidth = options_.operandWidth;
        rrm_options.muxContextSize = options_.declaredContext;
        RrmAnalysis rrm(cfg, rrm_options, cg ? &*cg : nullptr);

        flowChecks(cfg, rrm, liveness);
        buildThreadReports(cfg, rrm, liveness);
        crossContextChecks(cfg, rrm);
        if (cg && options_.interprocedural)
            interprocChecks(*cg, rrm);
        if (cg && options_.lockset)
            locksetChecks(cfg, *cg, rrm);
        if (cg && options_.interprocedural)
            attachPaths(*cg);
    }

    std::sort(result_.findings.begin(), result_.findings.end(),
              [](const Finding &a, const Finding &b) {
                  if (a.address != b.address)
                      return a.address < b.address;
                  return a.code < b.code;
              });
    for (const Finding &f : result_.findings) {
        if (f.severity == Severity::Error)
            ++result_.errors;
        else if (f.severity == Severity::Warning)
            ++result_.warnings;
        else
            ++result_.notes;
    }
    return std::move(result_);
}

/** Registers in @p mask rendered as "r0 r1 r5" (or "none"). */
std::string
regList(uint64_t mask)
{
    if (mask == 0)
        return "none";
    std::ostringstream os;
    bool first = true;
    for (unsigned r = 0; r < 64; ++r) {
        if ((mask >> r) & 1) {
            os << (first ? "" : " ") << "r" << r;
            first = false;
        }
    }
    return os.str();
}

std::string
jsonEscape(const std::string &text)
{
    std::string out;
    out.reserve(text.size());
    for (const char c : text) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\t':
            out += "\\t";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buffer[8];
                std::snprintf(buffer, sizeof(buffer), "\\u%04x", c);
                out += buffer;
            } else {
                out += c;
            }
        }
    }
    return out;
}

} // namespace

LintResult
lintProgram(const assembler::Program &program,
            const LintOptions &options)
{
    rr_assert(options.operandWidth >= 1 && options.operandWidth <= 6,
              "operand width must be in [1, 6]");
    Linter linter(program, options);
    return linter.run();
}

std::string
renderText(const LintResult &result, const std::string &filename)
{
    std::ostringstream os;
    for (const Finding &finding : result.findings)
        os << filename << ": " << finding.str() << "\n";
    for (const ThreadReport &report : result.threads) {
        os << filename << ": context window 0x" << std::hex
           << report.rrm << std::dec << ": " << report.registers
           << " register(s) referenced, minimal context "
           << report.minContext << ", live-in "
           << regList(report.liveIn) << "\n";
    }
    for (const ProcedureReport &proc : result.procedures) {
        os << filename << ": procedure '" << proc.name << "' @"
           << proc.entry << ": " << proc.registers
           << " register(s) in its call subtree, minimal context "
           << proc.minContext
           << (proc.switchesRrm ? ", switches rrm" : "")
           << (proc.returns ? ", returns" : "") << "\n";
    }
    os << filename << ": " << result.errors << " error(s), "
       << result.warnings << " warning(s)\n";
    return os.str();
}

std::string
renderJson(const LintResult &result, const std::string &filename)
{
    std::ostringstream os;
    os << "{\n  \"file\": \"" << jsonEscape(filename) << "\",\n";

    os << "  \"findings\": [";
    for (size_t i = 0; i < result.findings.size(); ++i) {
        const Finding &f = result.findings[i];
        os << (i ? "," : "") << "\n    {\"code\": \""
           << jsonEscape(f.code) << "\", \"severity\": \""
           << severityName(f.severity) << "\", \"address\": "
           << f.address << ", \"line\": " << f.line
           << ", \"message\": \"" << jsonEscape(f.message) << "\"";
        if (!f.path.empty()) {
            os << ", \"path\": [";
            for (size_t j = 0; j < f.path.size(); ++j) {
                os << (j ? ", " : "") << "\"" << jsonEscape(f.path[j])
                   << "\"";
            }
            os << "]";
        }
        os << "}";
    }
    os << (result.findings.empty() ? "" : "\n  ") << "],\n";

    os << "  \"threads\": [";
    for (size_t i = 0; i < result.threads.size(); ++i) {
        const ThreadReport &t = result.threads[i];
        auto reg_array = [&os](uint64_t mask) {
            os << "[";
            bool first = true;
            for (unsigned r = 0; r < 64; ++r) {
                if ((mask >> r) & 1) {
                    os << (first ? "" : ", ") << r;
                    first = false;
                }
            }
            os << "]";
        };
        os << (i ? "," : "") << "\n    {\"rrm\": " << t.rrm
           << ", \"registers\": " << t.registers
           << ", \"min_context\": " << t.minContext
           << ", \"footprint\": ";
        reg_array(t.footprint);
        os << ", \"live_in\": ";
        reg_array(t.liveIn);
        os << "}";
    }
    os << (result.threads.empty() ? "" : "\n  ") << "],\n";

    os << "  \"summary\": {\"errors\": " << result.errors
       << ", \"warnings\": " << result.warnings << "}\n}\n";
    return os.str();
}

namespace {

/** Write a JSON string array inline: ["a", "b"]. */
void
writeStringArray(std::ostringstream &os,
                 const std::vector<std::string> &items)
{
    os << "[";
    for (size_t i = 0; i < items.size(); ++i)
        os << (i ? ", " : "") << "\"" << jsonEscape(items[i]) << "\"";
    os << "]";
}

/** Write a register bitmask as an index array: [0, 1, 5]. */
void
writeRegArray(std::ostringstream &os, uint64_t mask)
{
    os << "[";
    bool first = true;
    for (unsigned r = 0; r < 64; ++r) {
        if ((mask >> r) & 1) {
            os << (first ? "" : ", ") << r;
            first = false;
        }
    }
    os << "]";
}

void
writeFinding(std::ostringstream &os, const Finding &f)
{
    os << "{\"code\": \"" << jsonEscape(f.code)
       << "\", \"severity\": \"" << severityName(f.severity)
       << "\", \"address\": " << f.address << ", \"line\": " << f.line
       << ", \"message\": \"" << jsonEscape(f.message) << "\"";
    if (!f.path.empty()) {
        os << ", \"path\": ";
        writeStringArray(os, f.path);
    }
    os << "}";
}

void
writeRaceSite(std::ostringstream &os, const RaceSite &site)
{
    os << "{\"address\": " << site.address << ", \"line\": "
       << site.line << ", \"write\": "
       << (site.write ? "true" : "false") << ", \"thread\": \""
       << jsonEscape(site.thread) << "\", \"locks\": ";
    writeStringArray(os, site.locks);
    os << "}";
}

} // namespace

std::string
renderJsonDocument(const std::vector<FileReport> &files,
                   const std::string &toolVersion, int exitCode)
{
    std::ostringstream os;
    unsigned errors = 0, warnings = 0, notes = 0;

    os << "{\n  \"schema\": \"rr.lint.v1\",\n";
    os << "  \"tool\": {\"name\": \"rrlint\", \"version\": \""
       << jsonEscape(toolVersion) << "\"},\n";
    os << "  \"files\": [";
    for (size_t fi = 0; fi < files.size(); ++fi) {
        const FileReport &file = files[fi];
        os << (fi ? "," : "") << "\n    {\n      \"file\": \""
           << jsonEscape(file.file) << "\",\n      \"readable\": "
           << (file.readable ? "true" : "false") << ",\n";

        unsigned file_errors = file.result.errors;
        os << "      \"findings\": [";
        bool first = true;
        for (const assembler::Diagnostic &diag : file.assemblyErrors) {
            Finding f;
            f.code = "assembly-error";
            f.severity = Severity::Error;
            f.line = diag.line;
            f.message = diag.message;
            os << (first ? "" : ",") << "\n        ";
            writeFinding(os, f);
            first = false;
            ++file_errors;
        }
        for (const Finding &f : file.result.findings) {
            os << (first ? "" : ",") << "\n        ";
            writeFinding(os, f);
            first = false;
        }
        os << (first ? "" : "\n      ") << "],\n";

        os << "      \"threads\": [";
        for (size_t i = 0; i < file.result.threads.size(); ++i) {
            const ThreadReport &t = file.result.threads[i];
            os << (i ? "," : "") << "\n        {\"rrm\": " << t.rrm
               << ", \"registers\": " << t.registers
               << ", \"min_context\": " << t.minContext
               << ", \"footprint\": ";
            writeRegArray(os, t.footprint);
            os << ", \"live_in\": ";
            writeRegArray(os, t.liveIn);
            os << "}";
        }
        os << (file.result.threads.empty() ? "" : "\n      ")
           << "],\n";

        os << "      \"procedures\": [";
        for (size_t i = 0; i < file.result.procedures.size(); ++i) {
            const ProcedureReport &p = file.result.procedures[i];
            os << (i ? "," : "") << "\n        {\"name\": \""
               << jsonEscape(p.name) << "\", \"entry\": " << p.entry
               << ", \"registers\": " << p.registers
               << ", \"min_context\": " << p.minContext
               << ", \"reads\": ";
            writeRegArray(os, p.regsRead);
            os << ", \"writes\": ";
            writeRegArray(os, p.regsWritten);
            os << ", \"switches_rrm\": "
               << (p.switchesRrm ? "true" : "false")
               << ", \"returns\": " << (p.returns ? "true" : "false")
               << ", \"call_path\": ";
            writeStringArray(os, p.callPath);
            os << "}";
        }
        os << (file.result.procedures.empty() ? "" : "\n      ")
           << "],\n";

        os << "      \"races\": [";
        for (size_t i = 0; i < file.result.races.size(); ++i) {
            const RaceReport &race = file.result.races[i];
            os << (i ? "," : "") << "\n        {\"mem\": " << race.mem
               << ", \"symbol\": \"" << jsonEscape(race.symbol)
               << "\", \"sites\": [";
            writeRaceSite(os, race.first);
            os << ", ";
            writeRaceSite(os, race.second);
            os << "]}";
        }
        os << (file.result.races.empty() ? "" : "\n      ") << "],\n";

        os << "      \"summary\": {\"errors\": " << file_errors
           << ", \"warnings\": " << file.result.warnings
           << ", \"notes\": " << file.result.notes << "}\n    }";
        errors += file_errors;
        warnings += file.result.warnings;
        notes += file.result.notes;
    }
    os << (files.empty() ? "" : "\n  ") << "],\n";

    os << "  \"summary\": {\"files\": " << files.size()
       << ", \"errors\": " << errors << ", \"warnings\": " << warnings
       << ", \"notes\": " << notes << ", \"exit\": " << exitCode
       << "}\n}\n";
    return os.str();
}

} // namespace rr::lint
