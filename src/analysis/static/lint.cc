#include "analysis/static/lint.hh"

#include <algorithm>
#include <map>
#include <sstream>

#include "base/bitops.hh"
#include "base/logging.hh"

namespace rr::lint {

using isa::Instruction;
using isa::Opcode;

const char *
severityName(Severity severity)
{
    switch (severity) {
      case Severity::Error:
        return "error";
      case Severity::Warning:
        return "warning";
      case Severity::Note:
        return "note";
    }
    return "?";
}

std::string
Finding::str() const
{
    std::ostringstream os;
    if (line > 0)
        os << "line " << line << ": ";
    os << severityName(severity) << ": [" << code << "] " << message
       << " (addr " << address << ")";
    return os.str();
}

namespace {

/** Offset bits of @p reg under the bank-select interpretation. */
unsigned
bankOffset(unsigned reg, const LintOptions &options)
{
    if (options.banks <= 1)
        return reg;
    const unsigned bank_bits = log2Ceil(options.banks);
    const unsigned offset_bits = options.operandWidth - bank_bits;
    return reg & static_cast<unsigned>(lowMask(offset_bits));
}

/** @return true when @p reg addresses a non-default RRM bank. */
bool
selectsOtherBank(unsigned reg, const LintOptions &options)
{
    if (options.banks <= 1)
        return false;
    const unsigned bank_bits = log2Ceil(options.banks);
    return (reg >> (options.operandWidth - bank_bits)) != 0;
}

/** Register operands of @p inst with their slot names. */
struct Operand
{
    const char *slot;
    unsigned reg;
    bool isWrite;
};

std::vector<Operand>
operandsOf(const Instruction &inst)
{
    std::vector<Operand> out;
    const isa::FormatInfo info = isa::formatInfo(isa::formatOf(inst.op));
    if (info.hasRd) {
        // ST's slot A is read, not written (mirrors the CPU).
        out.push_back({"rd", inst.rd, inst.op != Opcode::ST});
    }
    if (info.hasRs1)
        out.push_back({"rs1", inst.rs1, false});
    if (info.hasRs2)
        out.push_back({"rs2", inst.rs2, false});
    return out;
}

class Linter
{
  public:
    Linter(const assembler::Program &program,
           const LintOptions &options)
        : program_(program), options_(options)
    {
    }

    LintResult run();

  private:
    void add(const std::string &code, Severity severity,
             uint32_t address, const std::string &message)
    {
        Finding f;
        f.code = code;
        f.severity = severity;
        f.address = address;
        f.line = program_.lineAt(address);
        f.message = message;
        result_.findings.push_back(std::move(f));
    }

    void flatCheck();
    void flowChecks(const Cfg &cfg, const RrmAnalysis &rrm,
                    const Liveness &liveness);
    void buildThreadReports(const Cfg &cfg, const RrmAnalysis &rrm,
                            const Liveness &liveness);
    void crossContextChecks(const Cfg &cfg, const RrmAnalysis &rrm);

    const assembler::Program &program_;
    const LintOptions &options_;
    LintResult result_;
};

void
Linter::flatCheck()
{
    for (size_t i = 0; i < program_.words.size(); ++i) {
        const uint32_t addr =
            program_.base + static_cast<uint32_t>(i);
        Instruction inst;
        if (!isa::decode(program_.words[i], inst)) {
            if (options_.flagInvalidWords) {
                add("invalid-word", Severity::Error, addr,
                    "word does not decode to any instruction");
            }
            continue;
        }
        if (options_.declaredContext == 0)
            continue;
        for (const Operand &op : operandsOf(inst)) {
            const unsigned offset = bankOffset(op.reg, options_);
            if (offset < options_.declaredContext)
                continue;
            std::ostringstream os;
            os << isa::disassemble(inst) << ": " << op.slot << " r"
               << op.reg << " outside declared context of "
               << options_.declaredContext << " registers";
            add("boundary", Severity::Error, addr, os.str());
        }
    }
}

void
Linter::flowChecks(const Cfg &cfg, const RrmAnalysis &rrm,
                   const Liveness &liveness)
{
    (void)liveness;

    // Delay-slot hazards found by the abstract interpreter.
    for (const RrmHazard &hazard : rrm.hazards()) {
        switch (hazard.kind) {
          case RrmHazard::ControlInDelay:
            add("delay-slot-control", Severity::Error, hazard.address,
                "control transfer inside an LDRRM delay window: the "
                "new mask takes effect at the transfer target");
            break;
          case RrmHazard::LdrrmInDelay:
            add("ldrrm-in-delay-slot", Severity::Error, hazard.address,
                "LDRRM issued while a previous LDRRM is still in its "
                "delay slots");
            break;
        }
    }

    // Flow-sensitive boundary check: under OR relocation, an operand
    // sharing bits with the known mask escapes its context window.
    if (options_.mode != RelocMode::Or)
        return;
    for (const CfgInstruction &ci : cfg.instructions()) {
        if (!ci.valid)
            continue;
        const AbsVal mask = rrm.rrmBefore(ci.address);
        if (!mask.isConst() || mask.value == 0)
            continue;
        for (const Operand &op : operandsOf(ci.inst)) {
            if (selectsOtherBank(op.reg, options_))
                continue;
            const unsigned offset = bankOffset(op.reg, options_);
            if ((mask.value & offset) == 0)
                continue;
            std::ostringstream os;
            os << isa::disassemble(ci.inst) << ": " << op.slot << " r"
               << op.reg << " overlaps RRM 0x" << std::hex
               << mask.value << std::dec
               << " — the access escapes its context window (max "
               << (1u << findFirstSet(mask.value))
               << " registers here)";
            add("rrm-overlap", Severity::Error, ci.address, os.str());
        }
    }
}

void
Linter::buildThreadReports(const Cfg &cfg, const RrmAnalysis &rrm,
                           const Liveness &liveness)
{
    std::map<uint32_t, ThreadReport> reports;
    for (const uint32_t window : rrm.observedWindows()) {
        ThreadReport report;
        report.rrm = window;
        reports.emplace(window, report);
    }

    // Footprints: registers referenced while the window is active.
    for (const CfgInstruction &ci : cfg.instructions()) {
        if (!ci.valid)
            continue;
        const AbsVal mask = rrm.rrmBefore(ci.address);
        if (!mask.isConst())
            continue;
        ThreadReport &report = reports[mask.value];
        for (const Operand &op : operandsOf(ci.inst)) {
            if (selectsOtherBank(op.reg, options_))
                continue;
            report.footprint |= uint64_t{1}
                                << (bankOffset(op.reg, options_) & 63);
        }
    }

    // Entry requirements: the liveness barrier recorded the live set
    // at every LDRRM effect point; attribute it to the window that
    // takes effect there. The program entry belongs to the initial
    // window.
    for (const auto &[addr, live] : liveness.windowEntryLive()) {
        const AbsVal mask = rrm.rrmBefore(addr);
        if (mask.isConst())
            reports[mask.value].liveIn |= live;
    }
    if (cfg.entryBlock() != Cfg::noBlock) {
        const AbsVal entry_mask =
            rrm.rrmBefore(cfg.blocks()[cfg.entryBlock()].begin);
        if (entry_mask.isConst()) {
            reports[entry_mask.value].liveIn |=
                liveness.liveIn(cfg.entryBlock());
        }
    }

    for (auto &[window, report] : reports) {
        if (report.footprint != 0) {
            const unsigned max_reg =
                63 - static_cast<unsigned>(
                         std::countl_zero(report.footprint));
            report.registers = max_reg + 1;
        }
        report.minContext = static_cast<unsigned>(
            roundUpPowerOfTwo(std::max(1u, report.registers)));
        result_.threads.push_back(report);
    }
}

void
Linter::crossContextChecks(const Cfg &cfg, const RrmAnalysis &rrm)
{
    if (options_.mode == RelocMode::Mux)
        return; // Mux hardware bounds-checks; nothing can escape.

    // Physical span of every window, from the thread reports.
    struct Span
    {
        uint32_t rrm;
        uint32_t begin;
        uint32_t end;
        uint64_t liveIn;
    };
    std::vector<Span> spans;
    for (const ThreadReport &report : result_.threads) {
        if (report.registers == 0)
            continue;
        uint32_t begin;
        if (!rrm.relocate(report.rrm, 0, begin))
            continue;
        spans.push_back({report.rrm, begin, begin + report.registers,
                         report.liveIn});
    }

    for (const CfgInstruction &ci : cfg.instructions()) {
        if (!ci.valid)
            continue;
        const AbsVal mask = rrm.rrmBefore(ci.address);
        if (!mask.isConst())
            continue;
        for (const Operand &op : operandsOf(ci.inst)) {
            if (!op.isWrite || selectsOtherBank(op.reg, options_))
                continue;
            uint32_t physical;
            if (!rrm.relocate(mask.value,
                              bankOffset(op.reg, options_), physical)) {
                continue;
            }
            for (const Span &span : spans) {
                if (span.rrm == mask.value)
                    continue;
                if (physical < span.begin || physical >= span.end)
                    continue;
                const unsigned other_reg = physical - span.begin;
                if ((span.liveIn & (uint64_t{1} << other_reg)) == 0)
                    continue;
                std::ostringstream os;
                os << isa::disassemble(ci.inst) << ": write to r"
                   << unsigned{op.reg} << " under RRM 0x" << std::hex
                   << mask.value << " hits physical register 0x"
                   << physical << " = r" << std::dec << other_reg
                   << " of context window 0x" << std::hex << span.rrm
                   << std::dec << ", which is live when that context "
                   << "is entered";
                add("cross-context-write", Severity::Warning,
                    ci.address, os.str());
            }
        }
    }
}

LintResult
Linter::run()
{
    flatCheck();

    if (options_.flowSensitive && !program_.words.empty()) {
        Cfg cfg(program_);

        LivenessOptions live_options;
        live_options.delaySlots = options_.delaySlots;
        Liveness liveness(cfg, live_options);

        RrmOptions rrm_options;
        rrm_options.delaySlots = options_.delaySlots;
        rrm_options.initialRrm = options_.initialRrm;
        rrm_options.mode = options_.mode;
        rrm_options.banks = options_.banks;
        rrm_options.operandWidth = options_.operandWidth;
        rrm_options.muxContextSize = options_.declaredContext;
        RrmAnalysis rrm(cfg, rrm_options);

        flowChecks(cfg, rrm, liveness);
        buildThreadReports(cfg, rrm, liveness);
        crossContextChecks(cfg, rrm);
    }

    std::sort(result_.findings.begin(), result_.findings.end(),
              [](const Finding &a, const Finding &b) {
                  if (a.address != b.address)
                      return a.address < b.address;
                  return a.code < b.code;
              });
    for (const Finding &f : result_.findings) {
        if (f.severity == Severity::Error)
            ++result_.errors;
        else if (f.severity == Severity::Warning)
            ++result_.warnings;
    }
    return std::move(result_);
}

/** Registers in @p mask rendered as "r0 r1 r5" (or "none"). */
std::string
regList(uint64_t mask)
{
    if (mask == 0)
        return "none";
    std::ostringstream os;
    bool first = true;
    for (unsigned r = 0; r < 64; ++r) {
        if ((mask >> r) & 1) {
            os << (first ? "" : " ") << "r" << r;
            first = false;
        }
    }
    return os.str();
}

std::string
jsonEscape(const std::string &text)
{
    std::string out;
    out.reserve(text.size());
    for (const char c : text) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\t':
            out += "\\t";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buffer[8];
                std::snprintf(buffer, sizeof(buffer), "\\u%04x", c);
                out += buffer;
            } else {
                out += c;
            }
        }
    }
    return out;
}

} // namespace

LintResult
lintProgram(const assembler::Program &program,
            const LintOptions &options)
{
    rr_assert(options.operandWidth >= 1 && options.operandWidth <= 6,
              "operand width must be in [1, 6]");
    Linter linter(program, options);
    return linter.run();
}

std::string
renderText(const LintResult &result, const std::string &filename)
{
    std::ostringstream os;
    for (const Finding &finding : result.findings)
        os << filename << ": " << finding.str() << "\n";
    for (const ThreadReport &report : result.threads) {
        os << filename << ": context window 0x" << std::hex
           << report.rrm << std::dec << ": " << report.registers
           << " register(s) referenced, minimal context "
           << report.minContext << ", live-in "
           << regList(report.liveIn) << "\n";
    }
    os << filename << ": " << result.errors << " error(s), "
       << result.warnings << " warning(s)\n";
    return os.str();
}

std::string
renderJson(const LintResult &result, const std::string &filename)
{
    std::ostringstream os;
    os << "{\n  \"file\": \"" << jsonEscape(filename) << "\",\n";

    os << "  \"findings\": [";
    for (size_t i = 0; i < result.findings.size(); ++i) {
        const Finding &f = result.findings[i];
        os << (i ? "," : "") << "\n    {\"code\": \""
           << jsonEscape(f.code) << "\", \"severity\": \""
           << severityName(f.severity) << "\", \"address\": "
           << f.address << ", \"line\": " << f.line
           << ", \"message\": \"" << jsonEscape(f.message) << "\"}";
    }
    os << (result.findings.empty() ? "" : "\n  ") << "],\n";

    os << "  \"threads\": [";
    for (size_t i = 0; i < result.threads.size(); ++i) {
        const ThreadReport &t = result.threads[i];
        auto reg_array = [&os](uint64_t mask) {
            os << "[";
            bool first = true;
            for (unsigned r = 0; r < 64; ++r) {
                if ((mask >> r) & 1) {
                    os << (first ? "" : ", ") << r;
                    first = false;
                }
            }
            os << "]";
        };
        os << (i ? "," : "") << "\n    {\"rrm\": " << t.rrm
           << ", \"registers\": " << t.registers
           << ", \"min_context\": " << t.minContext
           << ", \"footprint\": ";
        reg_array(t.footprint);
        os << ", \"live_in\": ";
        reg_array(t.liveIn);
        os << "}";
    }
    os << (result.threads.empty() ? "" : "\n  ") << "],\n";

    os << "  \"summary\": {\"errors\": " << result.errors
       << ", \"warnings\": " << result.warnings << "}\n}\n";
    return os.str();
}

} // namespace rr::lint
