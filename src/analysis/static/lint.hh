/**
 * @file
 * rrlint — CFG + dataflow static analysis of RRISC images.
 *
 * This is the Section 2.4 tool grown up: where the seed's
 * `checker::checkProgram` did a flat per-instruction operand check
 * against a hand-declared context size, this pass:
 *
 *  - builds a control-flow graph (cfg.hh);
 *  - runs backward liveness with LDRRM window barriers (liveness.hh)
 *    to find each context's entry requirements;
 *  - runs a forward abstract interpretation of the RRM
 *    (rrm_state.hh) so context-boundary checking is flow-sensitive:
 *    no hand-declared regions needed;
 *  - reports each discovered context window's *minimal viable
 *    context size* (max register referenced, rounded to the next
 *    power of two) — the number software needs to pick the smallest
 *    context, which is the paper's whole performance argument.
 *
 * Findings:
 *   boundary             operand >= the declared context size
 *   invalid-word         undecodable word (only with flagInvalidWords)
 *   rrm-overlap          operand bits collide with the known RRM: in
 *                        OR relocation the access escapes its window
 *   delay-slot-control   control transfer inside an LDRRM window
 *   ldrrm-in-delay-slot  LDRRM while another LDRRM is pending
 *   cross-context-write  write lands on a register live in another
 *                        context window
 */

#ifndef RR_LINT_LINT_HH
#define RR_LINT_LINT_HH

#include <cstdint>
#include <string>
#include <vector>

#include "analysis/static/cfg.hh"
#include "analysis/static/liveness.hh"
#include "analysis/static/rrm_state.hh"
#include "assembler/assembler.hh"

namespace rr::lint {

/** Diagnostic severity. Errors and warnings fail the lint. */
enum class Severity : uint8_t
{
    Error,
    Warning,
    Note,
};

/** @return printable severity name. */
const char *severityName(Severity severity);

/** One diagnostic. */
struct Finding
{
    std::string code;    ///< stable kebab-case id (see file header)
    Severity severity = Severity::Error;
    uint32_t address = 0; ///< word address
    int line = 0;         ///< 1-based source line (0 when unknown)
    std::string message;  ///< human-readable description

    /** Render as "line L: severity: [code] message (addr A)". */
    std::string str() const;
};

/** Per-context-window report (one per discovered RRM value). */
struct ThreadReport
{
    uint32_t rrm = 0;       ///< window base mask
    uint64_t footprint = 0; ///< context-relative regs referenced
    unsigned registers = 0; ///< max referenced register + 1
    unsigned minContext = 1; ///< registers rounded up to a power of 2
    uint64_t liveIn = 0;    ///< regs that must be live when entered
};

/** Lint configuration. */
struct LintOptions
{
    /**
     * Declared context size for the flat check (what `rrasm --check
     * N` passes). 0 disables the flat check; the flow-sensitive
     * analyses run regardless.
     */
    unsigned declaredContext = 0;

    unsigned delaySlots = 1;   ///< LDRRM delay slots
    uint32_t initialRrm = 0;   ///< RRM at the entry point
    RelocMode mode = RelocMode::Or;
    unsigned banks = 1;        ///< RRM banks (>1: Section 5.3)
    unsigned operandWidth = 6; ///< operand field width w

    /** Treat undecodable words as findings. */
    bool flagInvalidWords = false;

    /** Disable the CFG/dataflow passes (flat check only). */
    bool flowSensitive = true;
};

/** The result of linting one program. */
struct LintResult
{
    std::vector<Finding> findings;
    std::vector<ThreadReport> threads;

    unsigned errors = 0;
    unsigned warnings = 0;

    /** @return true when no error- or warning-level findings exist. */
    bool clean() const { return errors == 0 && warnings == 0; }
};

/** Run every analysis over @p program. */
LintResult lintProgram(const assembler::Program &program,
                       const LintOptions &options = {});

/** Render @p result as human-readable text (one finding per line). */
std::string renderText(const LintResult &result,
                       const std::string &filename);

/** Render @p result as a JSON document. */
std::string renderJson(const LintResult &result,
                       const std::string &filename);

} // namespace rr::lint

#endif // RR_LINT_LINT_HH
