/**
 * @file
 * rrlint — CFG + dataflow static analysis of RRISC images.
 *
 * This is the Section 2.4 tool grown up: where the seed's
 * `checker::checkProgram` did a flat per-instruction operand check
 * against a hand-declared context size, this pass:
 *
 *  - builds a control-flow graph (cfg.hh);
 *  - runs backward liveness with LDRRM window barriers (liveness.hh)
 *    to find each context's entry requirements;
 *  - runs a forward abstract interpretation of the RRM
 *    (rrm_state.hh) so context-boundary checking is flow-sensitive:
 *    no hand-declared regions needed;
 *  - reports each discovered context window's *minimal viable
 *    context size* (max register referenced, rounded to the next
 *    power of two) — the number software needs to pick the smallest
 *    context, which is the paper's whole performance argument.
 *
 * With the interprocedural option it additionally builds a call
 * graph (callgraph.hh), propagates RRM state across call boundaries,
 * and attaches call-path witnesses to findings inside callees; with
 * the lockset option it runs the Eraser-style race detector
 * (lockset.hh) over every `.thread` entry point.
 *
 * Findings:
 *   boundary             operand >= the declared context size
 *   invalid-word         undecodable word (only with flagInvalidWords)
 *   rrm-overlap          operand bits collide with the known RRM: in
 *                        OR relocation the access escapes its window
 *   delay-slot-control   control transfer inside an LDRRM window
 *   ldrrm-in-delay-slot  LDRRM while another LDRRM is pending
 *   cross-context-write  write lands on a register live in another
 *                        context window
 *   ldrrm-across-call    (interprocedural) LDRRM delay window still
 *                        open when a procedure returns: the mask
 *                        lands in the caller
 *   call-undersized-context
 *                        (interprocedural) the callee subtree needs
 *                        more registers than the window open at the
 *                        call site provides
 *   race                 (lockset) two thread roots access a shared
 *                        word with no common lock held
 *   lock-indirect-call   (lockset) a JALR may reach a lock
 *                        procedure: the .lockdef contract is applied
 *                        through the indirection, flagged because the
 *                        actual target cannot be verified statically
 */

#ifndef RR_LINT_LINT_HH
#define RR_LINT_LINT_HH

#include <cstdint>
#include <string>
#include <vector>

#include "analysis/static/cfg.hh"
#include "analysis/static/liveness.hh"
#include "analysis/static/rrm_state.hh"
#include "assembler/assembler.hh"

namespace rr::lint {

/** Diagnostic severity. Errors and warnings fail the lint. */
enum class Severity : uint8_t
{
    Error,
    Warning,
    Note,
};

/** @return printable severity name. */
const char *severityName(Severity severity);

/** One diagnostic. */
struct Finding
{
    std::string code;    ///< stable kebab-case id (see file header)
    Severity severity = Severity::Error;
    uint32_t address = 0; ///< word address
    int line = 0;         ///< 1-based source line (0 when unknown)
    std::string message;  ///< human-readable description

    /**
     * Call-path witness (procedure names, root first) when the
     * finding sits inside a called procedure; empty otherwise.
     */
    std::vector<std::string> path;

    /** Render as "line L: severity: [code] message (addr A)". */
    std::string str() const;
};

/** Per-context-window report (one per discovered RRM value). */
struct ThreadReport
{
    uint32_t rrm = 0;       ///< window base mask
    uint64_t footprint = 0; ///< context-relative regs referenced
    unsigned registers = 0; ///< max referenced register + 1
    unsigned minContext = 1; ///< registers rounded up to a power of 2
    uint64_t liveIn = 0;    ///< regs that must be live when entered
};

/** Per-procedure summary report (interprocedural mode). */
struct ProcedureReport
{
    std::string name;     ///< best label at the entry
    uint32_t entry = 0;   ///< entry word address
    unsigned registers = 0; ///< transitive max register + 1
    unsigned minContext = 1; ///< registers rounded to a power of 2
    uint64_t regsRead = 0;   ///< directly read (context-relative)
    uint64_t regsWritten = 0; ///< directly written
    bool switchesRrm = false; ///< subtree executes LDRRM
    bool returns = false;     ///< has a `jmp` return
    std::vector<std::string> callPath; ///< root -> ... -> this
};

/** One racing access site (lockset mode). */
struct RaceSite
{
    uint32_t address = 0; ///< word address of the LD/ST
    int line = 0;         ///< 1-based source line
    bool write = false;   ///< ST (LD otherwise)
    std::string thread;   ///< thread root name
    std::vector<std::string> locks; ///< lock names held
};

/** One reported race (lockset mode). */
struct RaceReport
{
    uint32_t mem = 0;   ///< the contended word address
    std::string symbol; ///< a label at that address, when any
    RaceSite first;
    RaceSite second;
};

/** Lint configuration. */
struct LintOptions
{
    /**
     * Declared context size for the flat check (what `rrasm --check
     * N` passes). 0 disables the flat check; the flow-sensitive
     * analyses run regardless.
     */
    unsigned declaredContext = 0;

    unsigned delaySlots = 1;   ///< LDRRM delay slots
    uint32_t initialRrm = 0;   ///< RRM at the entry point
    RelocMode mode = RelocMode::Or;
    unsigned banks = 1;        ///< RRM banks (>1: Section 5.3)
    unsigned operandWidth = 6; ///< operand field width w

    /** Treat undecodable words as findings. */
    bool flagInvalidWords = false;

    /** Disable the CFG/dataflow passes (flat check only). */
    bool flowSensitive = true;

    /**
     * Build the call graph: procedure summaries, return-edge RRM
     * propagation, call-path witnesses, ldrrm-across-call and
     * call-undersized-context findings (rrlint --calls).
     */
    bool interprocedural = false;

    /** Run the lockset race detector (rrlint --races). */
    bool lockset = false;
};

/** The result of linting one program. */
struct LintResult
{
    std::vector<Finding> findings;
    std::vector<ThreadReport> threads;
    std::vector<ProcedureReport> procedures; ///< interprocedural mode
    std::vector<RaceReport> races;           ///< lockset mode

    unsigned errors = 0;
    unsigned warnings = 0;
    unsigned notes = 0;

    /** @return true when no error- or warning-level findings exist. */
    bool clean() const { return errors == 0 && warnings == 0; }
};

/** Run every analysis over @p program. */
LintResult lintProgram(const assembler::Program &program,
                       const LintOptions &options = {});

/** Render @p result as human-readable text (one finding per line). */
std::string renderText(const LintResult &result,
                       const std::string &filename);

/** Render @p result as a JSON document. */
std::string renderJson(const LintResult &result,
                       const std::string &filename);

/**
 * One input file's contribution to an `rr.lint.v1` document.
 * Exactly one of three shapes: unreadable (readable == false),
 * unassembled (assemblyErrors non-empty), or linted (result valid).
 */
struct FileReport
{
    std::string file;
    bool readable = true;
    std::vector<assembler::Diagnostic> assemblyErrors;
    LintResult result;
};

/**
 * Render one versioned `rr.lint.v1` JSON document covering all
 * @p files (the multi-image `--json` output; docs/LINT.md documents
 * the schema). Assembly errors appear as `assembly-error` findings.
 * @param exitCode the exit status the tool will return, recorded in
 *                 the document's summary.
 */
std::string renderJsonDocument(const std::vector<FileReport> &files,
                               const std::string &toolVersion,
                               int exitCode);

} // namespace rr::lint

#endif // RR_LINT_LINT_HH
