/**
 * @file
 * The closed-form multithreading efficiency model quoted in
 * Section 3.4 of the paper (after Saavedra-Barrera, Culler &
 * von Eicken): for deterministic run length R, fault latency L, and
 * context switch cost S,
 *
 *   saturated:  E_sat = R / (R + S)
 *   linear:     E_lin(N) = N * R / (R + S + L)
 *   boundary:   N* = 1 + L / (R + S)
 *
 * Efficiency grows linearly in the number of resident contexts N
 * until the saturation point N*, after which it is constant.
 */

#ifndef RR_ANALYSIS_EFFICIENCY_MODEL_HH
#define RR_ANALYSIS_EFFICIENCY_MODEL_HH

namespace rr::analysis {

/** The deterministic-case processor efficiency model. */
class EfficiencyModel
{
  public:
    /**
     * @param run_length run length between faults, R (cycles)
     * @param latency    fault service latency, L (cycles)
     * @param switch_cost context switch cost, S (cycles)
     */
    EfficiencyModel(double run_length, double latency,
                    double switch_cost);

    double runLength() const { return r_; }
    double latency() const { return l_; }
    double switchCost() const { return s_; }

    /** E_sat: efficiency when a ready context is always resident. */
    double saturated() const;

    /** E_lin(N): efficiency with N resident contexts, pre-saturation. */
    double linear(double n) const;

    /** min(E_lin(N), E_sat): the model's efficiency at N contexts. */
    double efficiency(double n) const;

    /** N*: number of contexts at which the processor saturates. */
    double saturationPoint() const;

    /**
     * @return true when N contexts leave the processor in the linear
     * (sub-saturated) regime.
     */
    bool inLinearRegime(double n) const;

  private:
    double r_;
    double l_;
    double s_;
};

} // namespace rr::analysis

#endif // RR_ANALYSIS_EFFICIENCY_MODEL_HH
