#include "isa/opcodes.hh"

#include <array>
#include <unordered_map>

#include "base/logging.hh"

namespace rr::isa {

namespace {

struct OpcodeEntry
{
    const char *mnemonic;
    Format format;
};

// Table indexed by opcode value; order must match the Opcode enum.
constexpr std::array<OpcodeEntry, numOpcodes> opcodeTable = {{
    {"nop", Format::None},
    {"halt", Format::None},

    {"add", Format::R3},
    {"sub", Format::R3},
    {"and", Format::R3},
    {"or", Format::R3},
    {"xor", Format::R3},
    {"sll", Format::R3},
    {"srl", Format::R3},
    {"sra", Format::R3},
    {"slt", Format::R3},
    {"sltu", Format::R3},

    {"addi", Format::I},
    {"andi", Format::I},
    {"ori", Format::I},
    {"xori", Format::I},
    {"slti", Format::I},
    {"slli", Format::I},
    {"srli", Format::I},
    {"srai", Format::I},

    {"lui", Format::UI},

    {"ld", Format::I},
    {"st", Format::I},

    {"beq", Format::B},
    {"bne", Format::B},
    {"blt", Format::B},
    {"bge", Format::B},

    {"jal", Format::J},
    {"jalr", Format::I},
    {"jmp", Format::R1S},

    {"ldrrm", Format::R1S},
    {"rdrrm", Format::R1D},
    {"ldrrmx", Format::Rs1Imm},

    {"mfpsw", Format::R1D},
    {"mtpsw", Format::R1S},

    {"ff1", Format::R2},

    {"fault", Format::Imm},
}};

} // namespace

Format
formatOf(Opcode op)
{
    const auto idx = static_cast<unsigned>(op);
    rr_assert(idx < numOpcodes, "bad opcode value ", idx);
    return opcodeTable[idx].format;
}

const char *
mnemonicOf(Opcode op)
{
    const auto idx = static_cast<unsigned>(op);
    rr_assert(idx < numOpcodes, "bad opcode value ", idx);
    return opcodeTable[idx].mnemonic;
}

bool
opcodeFromMnemonic(const std::string &mnemonic, Opcode &out)
{
    static const auto lookup = [] {
        std::unordered_map<std::string, Opcode> m;
        for (unsigned i = 0; i < numOpcodes; ++i)
            m.emplace(opcodeTable[i].mnemonic, static_cast<Opcode>(i));
        return m;
    }();
    const auto it = lookup.find(mnemonic);
    if (it == lookup.end())
        return false;
    out = it->second;
    return true;
}

FormatInfo
formatInfo(Format fmt)
{
    switch (fmt) {
      case Format::None:
        return {false, false, false, false, 0, false};
      case Format::R3:
        return {true, true, true, false, 0, false};
      case Format::R2:
        return {true, true, false, false, 0, false};
      case Format::R1D:
        return {true, false, false, false, 0, false};
      case Format::R1S:
        return {false, true, false, false, 0, false};
      case Format::I:
        return {true, true, false, true, 12, true};
      case Format::B:
        return {false, true, true, true, 12, true};
      case Format::J:
        return {true, false, false, true, 18, true};
      case Format::UI:
        return {true, false, false, true, 18, false};
      case Format::Imm:
        return {false, false, false, true, 12, false};
      case Format::Rs1Imm:
        return {false, true, false, true, 12, false};
    }
    rr_panic("unhandled format");
}

} // namespace rr::isa
