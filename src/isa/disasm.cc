#include "isa/instruction.hh"

#include <sstream>

namespace rr::isa {

namespace {

std::string
reg(unsigned r)
{
    // Built via insert-free concatenation: the "literal + rvalue
    // string" overload trips GCC 12's -Wrestrict false positive
    // (GCC PR105651) under -O2.
    std::string out = "r";
    out += std::to_string(r);
    return out;
}

} // namespace

std::string
disassemble(const Instruction &inst)
{
    std::ostringstream os;
    os << mnemonicOf(inst.op);

    switch (inst.format()) {
      case Format::None:
        break;
      case Format::R3:
        os << " " << reg(inst.rd) << ", " << reg(inst.rs1) << ", "
           << reg(inst.rs2);
        break;
      case Format::R2:
        os << " " << reg(inst.rd) << ", " << reg(inst.rs1);
        break;
      case Format::R1D:
        os << " " << reg(inst.rd);
        break;
      case Format::R1S:
        os << " " << reg(inst.rs1);
        break;
      case Format::I:
        if (inst.op == Opcode::LD || inst.op == Opcode::ST) {
            os << " " << reg(inst.rd) << ", " << inst.imm << "("
               << reg(inst.rs1) << ")";
        } else {
            os << " " << reg(inst.rd) << ", " << reg(inst.rs1) << ", "
               << inst.imm;
        }
        break;
      case Format::B:
        os << " " << reg(inst.rs1) << ", " << reg(inst.rs2) << ", "
           << inst.imm;
        break;
      case Format::J:
      case Format::UI:
        os << " " << reg(inst.rd) << ", " << inst.imm;
        break;
      case Format::Imm:
        os << " " << inst.imm;
        break;
      case Format::Rs1Imm:
        os << " " << reg(inst.rs1) << ", " << inst.imm;
        break;
    }
    return os.str();
}

std::string
disassemble(uint32_t word)
{
    Instruction inst;
    if (!decode(word, inst))
        return "<invalid>";
    return disassemble(inst);
}

} // namespace rr::isa
