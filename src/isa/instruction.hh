/**
 * @file
 * Decoded instruction representation and the raw 32-bit word layout.
 *
 * Encoding layout (fixed-field, Section 2.1 of the paper):
 *
 *   [31:24] opcode
 *   [23:18] operand slot A (rd, or rs1 for B-format)
 *   [17:12] operand slot B (rs1, or rs2 for B-format)
 *   [11:6]  operand slot C (rs2)
 *   [11:0]  imm12 (I/B/Imm/Rs1Imm formats)
 *   [17:0]  imm18 (J/UI formats)
 *
 * Register operand fields are 6 bits wide, so a single context may
 * address at most 2^6 = 64 context-relative registers; the machine
 * configuration may restrict this further (operand width w, paper
 * Section 2.1).
 */

#ifndef RR_ISA_INSTRUCTION_HH
#define RR_ISA_INSTRUCTION_HH

#include <cstdint>
#include <string>

#include "isa/opcodes.hh"

namespace rr::isa {

/** Width in bits of a register operand field in the encoding. */
constexpr unsigned operandFieldBits = 6;

/** Maximum context-relative register number (exclusive). */
constexpr unsigned maxOperandRegs = 1u << operandFieldBits;

/** A decoded RRISC instruction. */
struct Instruction
{
    Opcode op = Opcode::NOP;
    uint8_t rd = 0;   ///< destination register (context-relative)
    uint8_t rs1 = 0;  ///< first source register (context-relative)
    uint8_t rs2 = 0;  ///< second source register (context-relative)
    int32_t imm = 0;  ///< sign- or zero-extended immediate

    /** @return the encoding format of this instruction's opcode. */
    Format format() const { return formatOf(op); }

    bool operator==(const Instruction &other) const = default;
};

/**
 * Encode @p inst into a 32-bit word.
 * Panics if an operand or immediate does not fit its field.
 */
uint32_t encode(const Instruction &inst);

/**
 * Decode the 32-bit word @p word.
 * @param word the instruction word
 * @param out  receives the decoded instruction
 * @return false when the opcode field is invalid
 */
bool decode(uint32_t word, Instruction &out);

/** Render @p inst as assembly text. */
std::string disassemble(const Instruction &inst);

/** Decode and render @p word; "<invalid>" for bad opcodes. */
std::string disassemble(uint32_t word);

// Convenience constructors used by tests and the runtime's embedded
// code generators.

/** Make an R3-format instruction (rd, rs1, rs2). */
Instruction makeR3(Opcode op, unsigned rd, unsigned rs1, unsigned rs2);

/** Make an I-format instruction (rd, rs1, imm). */
Instruction makeI(Opcode op, unsigned rd, unsigned rs1, int32_t imm);

/** Make a B-format instruction (rs1, rs2, imm). */
Instruction makeB(Opcode op, unsigned rs1, unsigned rs2, int32_t imm);

/** Make a J- or UI-format instruction (rd, imm). */
Instruction makeJ(Opcode op, unsigned rd, int32_t imm);

} // namespace rr::isa

#endif // RR_ISA_INSTRUCTION_HH
