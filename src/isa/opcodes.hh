/**
 * @file
 * Opcode and instruction-format definitions for RRISC, the small RISC
 * instruction set used by the cycle-level machine.
 *
 * RRISC is the minimal architecture the paper assumes: a fixed-field
 * RISC encoding (Section 2.1) with up to 64 addressable context-
 * relative registers per operand field, plus the paper's special
 * instructions:
 *
 *  - LDRRM  rs1        set the register relocation mask (Section 2.1)
 *  - RDRRM  rd         read the current mask (for runtime bookkeeping)
 *  - LDRRMX rs1, idx   load RRM bank entry idx (Section 5.3 extension)
 *  - MFPSW / MTPSW     move the processor status word (Figure 3)
 *  - FF1    rd, rs1    find-first-one (MC88000-style, Section 2.3)
 *  - FAULT  imm        raise a long-latency fault of class imm
 */

#ifndef RR_ISA_OPCODES_HH
#define RR_ISA_OPCODES_HH

#include <cstdint>
#include <string>

namespace rr::isa {

/**
 * Instruction formats. The encoding uses three fixed 6-bit operand
 * slots (A at [23:18], B at [17:12], C at [11:6]) so that the decode
 * stage can relocate register operands at fixed field positions, as
 * required by the paper's fixed-field decoding assumption.
 */
enum class Format : uint8_t
{
    None,    ///< no operands (NOP, HALT)
    R3,      ///< rd, rs1, rs2
    R2,      ///< rd, rs1
    R1D,     ///< rd only
    R1S,     ///< rs1 only
    I,       ///< rd, rs1, imm12 (signed)
    B,       ///< rs1, rs2, imm12 (signed, PC-relative words)
    J,       ///< rd, imm18 (signed, PC-relative words)
    UI,      ///< rd, imm18 (upper immediate)
    Imm,     ///< imm12 only
    Rs1Imm,  ///< rs1, imm12
};

/** RRISC opcodes. Values are the 8-bit primary opcode field. */
enum class Opcode : uint8_t
{
    NOP = 0,
    HALT,

    // ALU register-register.
    ADD, SUB, AND, OR, XOR, SLL, SRL, SRA, SLT, SLTU,

    // ALU register-immediate.
    ADDI, ANDI, ORI, XORI, SLTI, SLLI, SRLI, SRAI,

    // Upper immediate: rd = imm18 << 12.
    LUI,

    // Memory (word-addressed): LD rd, imm(rs1); ST rd, imm(rs1).
    LD, ST,

    // Branches: compare rs1, rs2; PC-relative word offset.
    BEQ, BNE, BLT, BGE,

    // Jumps.
    JAL,   ///< rd <- PC+1; PC += imm18
    JALR,  ///< rd <- PC+1; PC = rs1 + imm12
    JMP,   ///< PC = rs1

    // Register relocation.
    LDRRM,   ///< RRM <- low bits of rs1 (after delay slots)
    RDRRM,   ///< rd <- RRM
    LDRRMX,  ///< RRM bank[imm12] <- low bits of rs1 (extension)

    // Processor status word.
    MFPSW,  ///< rd <- PSW
    MTPSW,  ///< PSW <- rs1

    // Bit manipulation.
    FF1,  ///< rd <- index of least-significant set bit of rs1, or -1

    // Long-latency fault of class imm12 (cache miss, sync, ...).
    FAULT,

    NumOpcodes
};

/** Number of defined opcodes. */
constexpr unsigned numOpcodes =
    static_cast<unsigned>(Opcode::NumOpcodes);

/** @return the encoding format of @p op. */
Format formatOf(Opcode op);

/** @return the lower-case mnemonic of @p op. */
const char *mnemonicOf(Opcode op);

/**
 * Look up an opcode by lower-case mnemonic.
 * @return true and sets @p out when found.
 */
bool opcodeFromMnemonic(const std::string &mnemonic, Opcode &out);

/** Operand-slot usage for a format (for relocation and disassembly). */
struct FormatInfo
{
    bool hasRd;       ///< slot A is a destination register
    bool hasRs1;      ///< a source register is present (slot A or B)
    bool hasRs2;      ///< a second source register is present
    bool hasImm;      ///< an immediate is present
    unsigned immBits; ///< immediate width (12 or 18), 0 when none
    bool immSigned;   ///< immediate is sign-extended
};

/** @return slot usage for @p fmt. */
FormatInfo formatInfo(Format fmt);

} // namespace rr::isa

#endif // RR_ISA_OPCODES_HH
