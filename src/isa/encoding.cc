#include "isa/instruction.hh"

#include "base/bitops.hh"
#include "base/logging.hh"

namespace rr::isa {

namespace {

constexpr unsigned opcodeShift = 24;
constexpr unsigned slotAShift = 18;
constexpr unsigned slotBShift = 12;
constexpr unsigned slotCShift = 6;
constexpr uint32_t slotMask = 0x3f;
constexpr uint32_t imm12Mask = 0xfff;
constexpr uint32_t imm18Mask = 0x3ffff;

int32_t
signExtend(uint32_t value, unsigned bits)
{
    const uint32_t sign = 1u << (bits - 1);
    return static_cast<int32_t>((value ^ sign) - sign);
}

void
checkReg(unsigned r, const char *what)
{
    rr_assert(r < maxOperandRegs, what, " register ", r,
              " exceeds operand field (max ", maxOperandRegs - 1, ")");
}

void
checkImm(int32_t imm, unsigned bits, bool is_signed)
{
    if (is_signed) {
        const int32_t lo = -(1 << (bits - 1));
        const int32_t hi = (1 << (bits - 1)) - 1;
        rr_assert(imm >= lo && imm <= hi,
                  "immediate ", imm, " out of signed ", bits,
                  "-bit range");
    } else {
        rr_assert(imm >= 0 && static_cast<uint32_t>(imm) <
                                  (1u << bits),
                  "immediate ", imm, " out of unsigned ", bits,
                  "-bit range");
    }
}

} // namespace

uint32_t
encode(const Instruction &inst)
{
    const Format fmt = inst.format();
    const FormatInfo info = formatInfo(fmt);
    uint32_t word = static_cast<uint32_t>(inst.op) << opcodeShift;

    switch (fmt) {
      case Format::None:
        break;
      case Format::R3:
        checkReg(inst.rd, "rd");
        checkReg(inst.rs1, "rs1");
        checkReg(inst.rs2, "rs2");
        word |= (inst.rd & slotMask) << slotAShift;
        word |= (inst.rs1 & slotMask) << slotBShift;
        word |= (inst.rs2 & slotMask) << slotCShift;
        break;
      case Format::R2:
        checkReg(inst.rd, "rd");
        checkReg(inst.rs1, "rs1");
        word |= (inst.rd & slotMask) << slotAShift;
        word |= (inst.rs1 & slotMask) << slotBShift;
        break;
      case Format::R1D:
        checkReg(inst.rd, "rd");
        word |= (inst.rd & slotMask) << slotAShift;
        break;
      case Format::R1S:
        checkReg(inst.rs1, "rs1");
        word |= (inst.rs1 & slotMask) << slotBShift;
        break;
      case Format::I:
        checkReg(inst.rd, "rd");
        checkReg(inst.rs1, "rs1");
        checkImm(inst.imm, info.immBits, info.immSigned);
        word |= (inst.rd & slotMask) << slotAShift;
        word |= (inst.rs1 & slotMask) << slotBShift;
        word |= static_cast<uint32_t>(inst.imm) & imm12Mask;
        break;
      case Format::B:
        checkReg(inst.rs1, "rs1");
        checkReg(inst.rs2, "rs2");
        checkImm(inst.imm, info.immBits, info.immSigned);
        word |= (inst.rs1 & slotMask) << slotAShift;
        word |= (inst.rs2 & slotMask) << slotBShift;
        word |= static_cast<uint32_t>(inst.imm) & imm12Mask;
        break;
      case Format::J:
      case Format::UI:
        checkReg(inst.rd, "rd");
        checkImm(inst.imm, info.immBits, info.immSigned);
        word |= (inst.rd & slotMask) << slotAShift;
        word |= static_cast<uint32_t>(inst.imm) & imm18Mask;
        break;
      case Format::Imm:
        checkImm(inst.imm, info.immBits, info.immSigned);
        word |= static_cast<uint32_t>(inst.imm) & imm12Mask;
        break;
      case Format::Rs1Imm:
        checkReg(inst.rs1, "rs1");
        checkImm(inst.imm, info.immBits, info.immSigned);
        word |= (inst.rs1 & slotMask) << slotBShift;
        word |= static_cast<uint32_t>(inst.imm) & imm12Mask;
        break;
    }
    return word;
}

bool
decode(uint32_t word, Instruction &out)
{
    const uint32_t opfield = word >> opcodeShift;
    if (opfield >= numOpcodes)
        return false;

    out = Instruction{};
    out.op = static_cast<Opcode>(opfield);

    const Format fmt = formatOf(out.op);
    const FormatInfo info = formatInfo(fmt);
    const auto slotA = static_cast<uint8_t>((word >> slotAShift) &
                                            slotMask);
    const auto slotB = static_cast<uint8_t>((word >> slotBShift) &
                                            slotMask);
    const auto slotC = static_cast<uint8_t>((word >> slotCShift) &
                                            slotMask);

    switch (fmt) {
      case Format::None:
        break;
      case Format::R3:
        out.rd = slotA;
        out.rs1 = slotB;
        out.rs2 = slotC;
        break;
      case Format::R2:
        out.rd = slotA;
        out.rs1 = slotB;
        break;
      case Format::R1D:
        out.rd = slotA;
        break;
      case Format::R1S:
        out.rs1 = slotB;
        break;
      case Format::I:
        out.rd = slotA;
        out.rs1 = slotB;
        break;
      case Format::B:
        out.rs1 = slotA;
        out.rs2 = slotB;
        break;
      case Format::J:
      case Format::UI:
        out.rd = slotA;
        break;
      case Format::Imm:
        break;
      case Format::Rs1Imm:
        out.rs1 = slotB;
        break;
    }

    if (info.hasImm) {
        const uint32_t raw = info.immBits == 18 ? (word & imm18Mask)
                                                : (word & imm12Mask);
        out.imm = info.immSigned ? signExtend(raw, info.immBits)
                                 : static_cast<int32_t>(raw);
    }
    return true;
}

Instruction
makeR3(Opcode op, unsigned rd, unsigned rs1, unsigned rs2)
{
    Instruction inst;
    inst.op = op;
    inst.rd = static_cast<uint8_t>(rd);
    inst.rs1 = static_cast<uint8_t>(rs1);
    inst.rs2 = static_cast<uint8_t>(rs2);
    return inst;
}

Instruction
makeI(Opcode op, unsigned rd, unsigned rs1, int32_t imm)
{
    Instruction inst;
    inst.op = op;
    inst.rd = static_cast<uint8_t>(rd);
    inst.rs1 = static_cast<uint8_t>(rs1);
    inst.imm = imm;
    return inst;
}

Instruction
makeB(Opcode op, unsigned rs1, unsigned rs2, int32_t imm)
{
    Instruction inst;
    inst.op = op;
    inst.rs1 = static_cast<uint8_t>(rs1);
    inst.rs2 = static_cast<uint8_t>(rs2);
    inst.imm = imm;
    return inst;
}

Instruction
makeJ(Opcode op, unsigned rd, int32_t imm)
{
    Instruction inst;
    inst.op = op;
    inst.rd = static_cast<uint8_t>(rd);
    inst.imm = imm;
    return inst;
}

} // namespace rr::isa
