/**
 * @file
 * Delta-debugging shrinker. Every accepted mutation must keep the
 * oracle failing, so the final sample fails for the same class of
 * reason as the original while being as small as the step budget
 * allows. Two mutation families:
 *
 *  - list reduction (ddmin-style): remove progressively smaller
 *    chunks of an op/byte/word list; for programs, first overwrite
 *    chunks with NOP (layout-preserving, keeps branch targets
 *    meaningful) and only then truncate the tail;
 *  - scalar ladders: walk each numeric field of a spec-like sample
 *    down through a fixed sequence of simpler values.
 *
 * The shrinker is deterministic (no randomness), so a repro file
 * shrunk twice yields byte-identical output — part of the rrfuzz
 * determinism contract.
 */

#include "fuzz/fuzz.hh"

#include <algorithm>
#include <cstddef>

#include "isa/instruction.hh"

namespace rr::fuzz {

namespace {

/** Oracle budget shared across one shrinkSample call. */
struct Budget
{
    unsigned used = 0;
    unsigned max = 0;

    bool spent() const { return used >= max; }
};

/** @return true when @p candidate still fails (and budget allows). */
bool
fails(const AnySample &candidate, Budget &budget)
{
    if (budget.spent())
        return false;
    ++budget.used;
    return !checkSample(candidate).empty();
}

/**
 * Greedy ddmin over a list: for chunk sizes n/2, n/4, ..., 1, try
 * deleting each chunk; keep deletions that preserve the failure.
 * @p apply installs a candidate list into a sample copy.
 */
template <typename Elem, typename Apply>
void
shrinkList(std::vector<Elem> &list, Budget &budget,
           const Apply &apply)
{
    for (size_t chunk = std::max<size_t>(list.size() / 2, 1);
         chunk >= 1; chunk /= 2) {
        bool any = true;
        while (any && !budget.spent()) {
            any = false;
            for (size_t at = 0; at + chunk <= list.size();
                 at += chunk) {
                std::vector<Elem> candidate;
                candidate.reserve(list.size() - chunk);
                candidate.insert(candidate.end(), list.begin(),
                                 list.begin() +
                                     static_cast<std::ptrdiff_t>(at));
                candidate.insert(
                    candidate.end(),
                    list.begin() +
                        static_cast<std::ptrdiff_t>(at + chunk),
                    list.end());
                if (fails(apply(candidate), budget)) {
                    list = std::move(candidate);
                    any = true;
                    break;
                }
                if (budget.spent())
                    break;
            }
        }
        if (chunk == 1)
            break;
    }
}

/**
 * Scalar ladder: try each of @p values (simplest first) for a field;
 * keep the first one that preserves the failure.
 */
template <typename T, typename Sample>
void
shrinkScalar(Sample &sample, T Sample::*field,
             std::initializer_list<T> values, Budget &budget)
{
    for (const T v : values) {
        if (sample.*field == v)
            continue;
        Sample candidate = sample;
        candidate.*field = v;
        if (fails(AnySample{candidate}, budget)) {
            sample = candidate;
            return;
        }
        if (budget.spent())
            return;
    }
}

// ---------------------------------------------------------------------

AnySample
shrinkReloc(RelocSample s, Budget &budget)
{
    shrinkList(s.ops, budget, [&](const std::vector<RelocOp> &ops) {
        RelocSample candidate = s;
        candidate.ops = ops;
        return AnySample{candidate};
    });
    return s;
}

AnySample
shrinkHeap(HeapSample s, Budget &budget)
{
    shrinkList(s.ops, budget, [&](const std::vector<HeapOp> &ops) {
        HeapSample candidate = s;
        candidate.ops = ops;
        return AnySample{candidate};
    });
    return s;
}

AnySample
shrinkJson(JsonSample s, Budget &budget)
{
    std::vector<char> bytes(s.text.begin(), s.text.end());
    shrinkList(bytes, budget, [&](const std::vector<char> &b) {
        return AnySample{JsonSample{std::string(b.begin(), b.end())}};
    });
    s.text.assign(bytes.begin(), bytes.end());
    return s;
}

AnySample
shrinkNum(NumSample s, Budget &budget)
{
    std::vector<char> bytes(s.text.begin(), s.text.end());
    shrinkList(bytes, budget, [&](const std::vector<char> &b) {
        NumSample candidate = s;
        candidate.text.assign(b.begin(), b.end());
        return AnySample{candidate};
    });
    s.text.assign(bytes.begin(), bytes.end());
    shrinkScalar(s, &NumSample::max, {uint64_t{0} - 1}, budget);
    return s;
}

AnySample
shrinkPhase(PhaseSample s, Budget &budget)
{
    shrinkScalar(s, &PhaseSample::threads, {1u, 2u, 4u}, budget);
    shrinkScalar(s, &PhaseSample::phase0Faults,
                 {uint64_t{1}, uint64_t{2}}, budget);
    shrinkScalar(s, &PhaseSample::workPerThread,
                 {uint64_t{64}, uint64_t{256}, uint64_t{1024}},
                 budget);
    shrinkScalar(s, &PhaseSample::meanRun, {8.0, 16.0}, budget);
    shrinkScalar(s, &PhaseSample::latency1,
                 {uint64_t{100}, uint64_t{1000}}, budget);
    shrinkScalar(s, &PhaseSample::latency0, {uint64_t{10}}, budget);
    shrinkScalar(s, &PhaseSample::seed, {uint64_t{1}}, budget);
    return s;
}

AnySample
shrinkProgram(ProgramSample s, Budget &budget)
{
    const uint32_t nop = isa::encode(isa::Instruction{});

    // Pass 1: layout-preserving chunk NOP-out.
    for (size_t chunk = std::max<size_t>(s.words.size() / 2, 1);
         chunk >= 1; chunk /= 2) {
        bool any = true;
        while (any && !budget.spent()) {
            any = false;
            for (size_t at = 0; at + chunk <= s.words.size();
                 at += chunk) {
                ProgramSample candidate = s;
                bool changed = false;
                for (size_t i = at; i < at + chunk; ++i) {
                    if (candidate.words[i] != nop) {
                        candidate.words[i] = nop;
                        changed = true;
                    }
                }
                if (!changed)
                    continue;
                if (fails(AnySample{candidate}, budget)) {
                    s = candidate;
                    any = true;
                    break;
                }
                if (budget.spent())
                    break;
            }
        }
        if (chunk == 1)
            break;
    }

    // Pass 2: drop the (now mostly NOP) tail.
    while (!s.words.empty() && !budget.spent()) {
        ProgramSample candidate = s;
        const size_t cut = std::max<size_t>(candidate.words.size() / 8,
                                            1);
        candidate.words.resize(candidate.words.size() - cut);
        if (fails(AnySample{candidate}, budget))
            s = candidate;
        else if (cut == 1)
            break;
        else {
            // Fine-grained retry at the smallest cut before giving up.
            ProgramSample one = s;
            one.words.pop_back();
            if (!one.words.empty() &&
                fails(AnySample{one}, budget))
                s = one;
            else
                break;
        }
    }

    // Pass 3: simplify timing knobs (often irrelevant to a failure).
    shrinkScalar(s, &ProgramSample::takenBranchPenalty, {0u}, budget);
    shrinkScalar(s, &ProgramSample::loadUsePenalty, {0u}, budget);
    shrinkScalar(s, &ProgramSample::ldrrmPenalty, {0u}, budget);
    shrinkScalar(s, &ProgramSample::maxSteps,
                 {uint64_t{200}, uint64_t{1000}}, budget);
    return s;
}

AnySample
shrinkMt(MtSample s, Budget &budget)
{
    shrinkScalar(s, &MtSample::threads, {1u, 2u, 4u, 16u}, budget);
    shrinkScalar(s, &MtSample::work,
                 {uint64_t{100}, uint64_t{400}}, budget);
    shrinkScalar(s, &MtSample::priorityLevels, {1u}, budget);
    shrinkScalar(s, &MtSample::residencyCap, {0u}, budget);
    shrinkScalar(s, &MtSample::unload, {uint8_t{0}}, budget);
    shrinkScalar(s, &MtSample::regsLo, {6u}, budget);
    shrinkScalar(s, &MtSample::regsHi, {6u, 24u}, budget);
    shrinkScalar(s, &MtSample::param0, {8.0, 32.0}, budget);
    shrinkScalar(s, &MtSample::param1, {10.0, 100.0}, budget);
    shrinkScalar(s, &MtSample::seed, {uint64_t{1}}, budget);
    return s;
}

/** Scalar ladder over a field of a ckpt sample's embedded spec. */
template <typename T>
void
shrinkCkptSpecScalar(CkptSample &sample, T MtSample::*field,
                     std::initializer_list<T> values, Budget &budget)
{
    for (const T v : values) {
        if (sample.spec.*field == v)
            continue;
        CkptSample candidate = sample;
        candidate.spec.*field = v;
        if (fails(AnySample{candidate}, budget)) {
            sample = candidate;
            return;
        }
        if (budget.spent())
            return;
    }
}

AnySample
shrinkCkpt(CkptSample s, Budget &budget)
{
    // Simplify the simulation first (cheapest big wins), then walk
    // the snapshot point toward the run's start.
    shrinkCkptSpecScalar(s, &MtSample::threads, {1u, 2u, 4u}, budget);
    shrinkCkptSpecScalar(s, &MtSample::work,
                         {uint64_t{100}, uint64_t{400}}, budget);
    shrinkCkptSpecScalar(s, &MtSample::priorityLevels, {1u}, budget);
    shrinkCkptSpecScalar(s, &MtSample::residencyCap, {0u}, budget);
    shrinkCkptSpecScalar(s, &MtSample::unload, {uint8_t{0}}, budget);
    shrinkCkptSpecScalar(s, &MtSample::regsLo, {6u}, budget);
    shrinkCkptSpecScalar(s, &MtSample::regsHi, {6u, 24u}, budget);
    shrinkCkptSpecScalar(s, &MtSample::seed, {uint64_t{1}}, budget);
    shrinkScalar(s, &CkptSample::splitEvents,
                 {uint64_t{0}, uint64_t{1}, uint64_t{10},
                  uint64_t{100}},
                 budget);
    shrinkScalar(s, &CkptSample::corruptPos, {uint64_t{0}}, budget);
    shrinkScalar(s, &CkptSample::corruptBit, {uint8_t{0}}, budget);
    return s;
}

AnySample
shrinkXsim(XsimSample s, Budget &budget)
{
    if (s.script.size() > 1) {
        shrinkList(s.script, budget,
                   [&](const std::vector<uint64_t> &script) {
                       XsimSample candidate = s;
                       candidate.script = script;
                       if (candidate.script.empty())
                           candidate.script.push_back(1);
                       return AnySample{candidate};
                   });
        if (s.script.empty())
            s.script.push_back(1);
    }
    shrinkScalar(s, &XsimSample::threads, {1u, 2u}, budget);
    shrinkScalar(s, &XsimSample::segments, {4u, 8u}, budget);
    shrinkScalar(s, &XsimSample::latency,
                 {uint64_t{50}, uint64_t{200}}, budget);
    shrinkScalar(s, &XsimSample::seed, {uint64_t{1}}, budget);
    return s;
}

/** @return true when procedure @p index has a caller or a root call. */
bool
cgReferenced(const CallgraphSample &s, uint32_t index)
{
    for (const CgProc &p : s.procs) {
        for (const uint32_t callee : p.calls) {
            if (callee == index)
                return true;
        }
    }
    for (const CgRoot &r : s.roots) {
        for (const uint32_t callee : r.calls) {
            if (callee == index)
                return true;
        }
    }
    return false;
}

AnySample
shrinkCallgraph(CallgraphSample s, Budget &budget)
{
    // Fewer roots first: each root costs a full Cpu run per check.
    if (s.roots.size() > 1) {
        shrinkList(s.roots, budget,
                   [&](const std::vector<CgRoot> &roots) {
                       CallgraphSample candidate = s;
                       candidate.roots = roots;
                       if (candidate.roots.empty())
                           candidate.roots.push_back(CgRoot{});
                       return AnySample{candidate};
                   });
        if (s.roots.empty())
            s.roots.push_back(CgRoot{});
    }
    for (size_t r = 0; r < s.roots.size(); ++r) {
        shrinkList(s.roots[r].calls, budget,
                   [&](const std::vector<uint32_t> &calls) {
                       CallgraphSample candidate = s;
                       candidate.roots[r].calls = calls;
                       return AnySample{candidate};
                   });
    }
    for (size_t i = 0; i < s.procs.size(); ++i) {
        shrinkList(s.procs[i].calls, budget,
                   [&](const std::vector<uint32_t> &calls) {
                       CallgraphSample candidate = s;
                       candidate.procs[i].calls = calls;
                       return AnySample{candidate};
                   });
    }

    // Drop now-unreferenced trailing procedures (indices of earlier
    // procedures are unaffected, so the candidate stays well formed).
    while (s.procs.size() > 1 && !budget.spent() &&
           !cgReferenced(s, static_cast<uint32_t>(s.procs.size() - 1))) {
        CallgraphSample candidate = s;
        candidate.procs.pop_back();
        if (!fails(AnySample{candidate}, budget))
            break;
        s = candidate;
    }

    // Simplify per-procedure bodies, one aspect at a time.
    for (size_t i = 0; i < s.procs.size() && !budget.spent(); ++i) {
        if (s.procs[i].touch != 0) {
            CallgraphSample candidate = s;
            candidate.procs[i].touch = 0;
            if (fails(AnySample{candidate}, budget))
                s = candidate;
        }
        if (s.procs[i].lock >= 0 && !budget.spent()) {
            CallgraphSample candidate = s;
            candidate.procs[i].lock = -1;
            if (fails(AnySample{candidate}, budget))
                s = candidate;
        }
        if (s.procs[i].cell >= 0 && !budget.spent()) {
            CallgraphSample candidate = s;
            candidate.procs[i].cell = -1;
            candidate.procs[i].write = false;
            if (fails(AnySample{candidate}, budget))
                s = candidate;
        }
    }

    // Shed unused cell/lock declarations (keeps repro files small and
    // the emitted data segment honest about what the sample needs).
    if (!budget.spent()) {
        CallgraphSample candidate = s;
        int maxCell = 0, maxLock = -1;
        for (const CgProc &p : candidate.procs) {
            maxCell = std::max(maxCell, p.cell);
            maxLock = std::max(maxLock, p.lock);
        }
        candidate.numCells = static_cast<unsigned>(maxCell + 1);
        candidate.numLocks = static_cast<unsigned>(maxLock + 1);
        if ((candidate.numCells != s.numCells ||
             candidate.numLocks != s.numLocks) &&
            fails(AnySample{candidate}, budget))
            s = candidate;
    }

    shrinkScalar(s, &CallgraphSample::maxSteps,
                 {uint64_t{2000}, uint64_t{20000}}, budget);
    return s;
}

} // namespace

AnySample
shrinkSample(const AnySample &sample, unsigned maxSteps,
             unsigned &stepsUsed)
{
    Budget budget{0, maxSteps};
    stepsUsed = 0;
    // Only shrink genuine failures; a passing sample is returned
    // unchanged (the caller should not have asked).
    if (!fails(sample, budget)) {
        stepsUsed = budget.used;
        return sample;
    }

    AnySample result = std::visit(
        [&](const auto &s) -> AnySample {
            using T = std::decay_t<decltype(s)>;
            if constexpr (std::is_same_v<T, RelocSample>)
                return shrinkReloc(s, budget);
            else if constexpr (std::is_same_v<T, HeapSample>)
                return shrinkHeap(s, budget);
            else if constexpr (std::is_same_v<T, JsonSample>)
                return shrinkJson(s, budget);
            else if constexpr (std::is_same_v<T, NumSample>)
                return shrinkNum(s, budget);
            else if constexpr (std::is_same_v<T, PhaseSample>)
                return shrinkPhase(s, budget);
            else if constexpr (std::is_same_v<T, ProgramSample>)
                return shrinkProgram(s, budget);
            else if constexpr (std::is_same_v<T, MtSample>)
                return shrinkMt(s, budget);
            else if constexpr (std::is_same_v<T, XsimSample>)
                return shrinkXsim(s, budget);
            else if constexpr (std::is_same_v<T, CallgraphSample>)
                return shrinkCallgraph(s, budget);
            else
                return shrinkCkpt(s, budget);
        },
        sample);
    stepsUsed = budget.used;
    return result;
}

} // namespace rr::fuzz
