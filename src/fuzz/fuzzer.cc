/**
 * @file
 * The fuzzing driver. Determinism contract: the per-sample seed is
 * the i-th output of one master xoshiro stream seeded with
 * FuzzOptions::seed, the kind is seed-independent round-robin, and
 * generation/checking/shrinking are pure functions of the sample —
 * so the same (seed, samples, kinds) always produces the same
 * verdicts and byte-identical repro files, regardless of which
 * earlier samples failed.
 */

#include "fuzz/fuzz.hh"

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <ostream>

namespace rr::fuzz {

FuzzReport
runFuzz(const FuzzOptions &options, std::ostream *log)
{
    std::vector<SampleKind> kinds = options.kinds;
    if (kinds.empty()) {
        for (unsigned i = 0; i < numSampleKinds; ++i)
            kinds.push_back(static_cast<SampleKind>(i));
    }

    if (!options.outDir.empty()) {
        // Create the repro directory up front: losing every repro of
        // a long run to a typoed --out-dir is far worse than the
        // stray directory an all-clean run leaves behind.
        std::error_code ec;
        std::filesystem::create_directories(options.outDir, ec);
        if (ec && log)
            *log << "rrfuzz: cannot create " << options.outDir << ": "
                 << ec.message() << '\n';
    }

    Rng master(options.seed);
    FuzzReport report;
    for (uint64_t i = 0; i < options.samples; ++i) {
        // Exactly one master draw per sample, before any work, so
        // sample i's seed does not depend on the kind mix or on how
        // previous samples behaved.
        const uint64_t sampleSeed = master.next();
        const SampleKind kind = kinds[i % kinds.size()];

        Rng rng(sampleSeed);
        const AnySample sample = generateSample(kind, rng);
        ++report.samplesRun;
        ++report.perKind[static_cast<unsigned>(kind)];

        Problems problems = checkSample(sample);
        if (problems.empty())
            continue;

        Failure failure;
        failure.kind = kind;
        failure.index = i;
        failure.sampleSeed = sampleSeed;
        failure.sample = sample;
        if (options.shrink) {
            failure.sample = shrinkSample(
                sample, options.maxShrinkSteps, failure.shrinkSteps);
            problems = checkSample(failure.sample);
        }
        failure.problems = problems;
        failure.repro = serializeRepro(failure.sample);

        if (!options.outDir.empty()) {
            char name[64];
            std::snprintf(name, sizeof name, "%s-%016llx.repro",
                          kindName(kind),
                          static_cast<unsigned long long>(sampleSeed));
            failure.reproPath = options.outDir + "/" + name;
            std::ofstream out(failure.reproPath,
                              std::ios::binary | std::ios::trunc);
            out << failure.repro;
            if (!out && log)
                *log << "rrfuzz: cannot write " << failure.reproPath
                     << '\n';
        }

        if (log) {
            *log << "FAIL " << kindName(kind) << " sample " << i
                 << " seed 0x" << std::hex << sampleSeed << std::dec
                 << " (" << failure.shrinkSteps << " shrink steps)\n";
            for (const std::string &p : failure.problems)
                *log << "  " << p << '\n';
            if (!failure.reproPath.empty())
                *log << "  repro: " << failure.reproPath << '\n';
        }

        report.failures.push_back(std::move(failure));
        if (options.maxFailures != 0 &&
            report.failures.size() >= options.maxFailures)
            break;
    }
    return report;
}

} // namespace rr::fuzz
