/**
 * @file
 * rr::fuzz — seeded, deterministic property testing and differential
 * fuzzing across the repo's redundant implementations.
 *
 * The subsystem is four orthogonal pieces, all pure functions of
 * their inputs so the whole pipeline is replayable from a seed:
 *
 *   generate   (gen.cc)     seed -> sample, per SampleKind
 *   check      (check.cc)   sample -> Problems (empty = pass)
 *   shrink     (shrink.cc)  failing sample -> minimal failing sample
 *   repro      (repro.cc)   sample <-> self-contained text file
 *
 * runFuzz() ties them together: draw per-sample seeds from a master
 * xoshiro stream, round-robin over the enabled kinds, check every
 * sample, and on failure shrink + serialize a repro. The same
 * (seed, samples, kinds) always yields the same samples, the same
 * verdicts, and byte-identical repro files; see docs/FUZZ.md.
 */

#ifndef RR_FUZZ_FUZZ_HH
#define RR_FUZZ_FUZZ_HH

#include <array>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "base/rng.hh"
#include "fuzz/samples.hh"

namespace rr::fuzz {

/** Draw one sample of @p kind from @p rng. Deterministic. */
AnySample generateSample(SampleKind kind, Rng &rng);

/**
 * Run every applicable oracle on @p sample.
 *
 * @return problem descriptions; empty means the sample passed (or
 * was vacuous, e.g. a json sample whose text does not parse).
 */
Problems checkSample(const AnySample &sample);

/** Callgraph-sample geometry (fixed; the sample varies structure). */
constexpr unsigned kCgNumRegs = 64;   ///< register file size
constexpr unsigned kCgMemWords = 1024; ///< memory size (words)
constexpr uint32_t kCgCellBase = 0x200; ///< first shared cell
constexpr uint32_t kCgLockBase = 0x240; ///< first lock word

/**
 * Expand @p sample into RRISC assembly (pure and deterministic: the
 * same sample always yields byte-identical source). The layout is
 * roots first (entry at address 0), then procedures in index order,
 * then one spinlock acquire/release pair per declared lock.
 */
std::string callgraphSource(const CallgraphSample &sample);

/**
 * Delta-debug @p sample (which must fail checkSample) to a smaller
 * sample that still fails. Spends at most @p maxSteps oracle
 * evaluations; @p stepsUsed reports how many were spent. If the
 * sample does not actually fail, it is returned unchanged.
 */
AnySample shrinkSample(const AnySample &sample, unsigned maxSteps,
                       unsigned &stepsUsed);

/**
 * Serialize @p sample as a self-contained repro file (format
 * `rrfuzz.repro.v1`, line oriented, byte-stable). parseRepro() is
 * the exact inverse: parse(serialize(s)) == s for every sample.
 */
std::string serializeRepro(const AnySample &sample);

/** Parse a repro file. @return false and set @p error on failure. */
bool parseRepro(const std::string &text, AnySample &out,
                std::string &error);

/** Configuration for one fuzzing run. */
struct FuzzOptions
{
    uint64_t seed = 1;
    uint64_t samples = 100;

    /** Kinds to draw from (round-robin). Empty = all kinds. */
    std::vector<SampleKind> kinds;

    /** Directory for repro files; empty = do not write files. */
    std::string outDir;

    bool shrink = true;
    unsigned maxShrinkSteps = 400;

    /** Stop after this many failures (0 = no limit). */
    uint64_t maxFailures = 0;
};

/** One oracle violation, minimized and ready to pin. */
struct Failure
{
    SampleKind kind = SampleKind::Reloc;
    uint64_t index = 0;      ///< sample index within the run
    uint64_t sampleSeed = 0; ///< per-sample generator seed
    Problems problems;       ///< oracle output for the final sample
    unsigned shrinkSteps = 0;
    AnySample sample;        ///< minimized failing sample
    std::string repro;       ///< serializeRepro(sample)
    std::string reproPath;   ///< file written, empty if none
};

/** Result of a fuzzing run. */
struct FuzzReport
{
    uint64_t samplesRun = 0;
    std::array<uint64_t, numSampleKinds> perKind{};
    std::vector<Failure> failures;

    bool clean() const { return failures.empty(); }
};

/**
 * Run the pipeline. @p log, when non-null, receives one line per
 * failure and occasional progress notes (the lines are part of no
 * contract; the report is).
 */
FuzzReport runFuzz(const FuzzOptions &options,
                   std::ostream *log = nullptr);

} // namespace rr::fuzz

#endif // RR_FUZZ_FUZZ_HH
