/**
 * @file
 * Self-contained repro files (`rrfuzz.repro.v1`): the pinning format
 * committed under tests/fuzz/corpus/ and replayed by ctest.
 *
 * Line oriented and byte stable:
 *
 *     rrfuzz.repro.v1
 *     kind <name>
 *     <key> <value>...        # fixed order per kind
 *     end
 *
 * Arbitrary byte strings (json/num samples) are written with a
 * deterministic escape (\\, \n, \r, \t, \xHH for other bytes outside
 * printable ASCII), so serialize/parse are exact inverses and
 * serializing twice yields identical bytes. Doubles use %.17g, which
 * round-trips IEEE doubles exactly.
 */

#include "fuzz/fuzz.hh"

#include <cctype>
#include <cmath>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <sstream>

#include "base/parse_num.hh"

namespace rr::fuzz {

namespace {

constexpr const char *kMagic = "rrfuzz.repro.v1";

std::string
escapeText(const std::string &text)
{
    std::string out;
    out.reserve(text.size());
    for (const char c : text) {
        const auto u = static_cast<unsigned char>(c);
        switch (c) {
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\r':
            out += "\\r";
            break;
          case '\t':
            out += "\\t";
            break;
          default:
            if (u >= 0x20 && u < 0x7f) {
                out += c;
            } else {
                char buf[5];
                std::snprintf(buf, sizeof buf, "\\x%02x", u);
                out += buf;
            }
        }
    }
    return out;
}

bool
unescapeText(const std::string &in, std::string &out)
{
    out.clear();
    out.reserve(in.size());
    for (size_t i = 0; i < in.size(); ++i) {
        if (in[i] != '\\') {
            out += in[i];
            continue;
        }
        if (i + 1 >= in.size())
            return false;
        const char e = in[++i];
        switch (e) {
          case '\\':
            out += '\\';
            break;
          case 'n':
            out += '\n';
            break;
          case 'r':
            out += '\r';
            break;
          case 't':
            out += '\t';
            break;
          case 'x': {
            if (i + 2 >= in.size())
                return false;
            const auto hex = [](char c) -> int {
                if (c >= '0' && c <= '9')
                    return c - '0';
                if (c >= 'a' && c <= 'f')
                    return c - 'a' + 10;
                return -1;
            };
            const int hi = hex(in[i + 1]);
            const int lo = hex(in[i + 2]);
            if (hi < 0 || lo < 0)
                return false;
            out += static_cast<char>(hi * 16 + lo);
            i += 2;
            break;
          }
          default:
            return false;
        }
    }
    return true;
}

std::string
fmtDouble(double v)
{
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.17g", v);
    return buf;
}

// ---------------------------------------------------------------------
// writers

void
writeReloc(const RelocSample &s, std::ostringstream &out)
{
    out << "numRegs " << s.numRegs << '\n';
    out << "operandWidth " << s.operandWidth << '\n';
    out << "banks " << s.banks << '\n';
    out << "mode " << unsigned{s.mode} << '\n';
    for (const RelocOp &op : s.ops) {
        if (op.kind == RelocOp::SetMask)
            out << "op mask " << op.value << ' '
                << unsigned{op.bank} << '\n';
        else
            out << "op size " << op.value << '\n';
    }
}

void
writeHeap(const HeapSample &s, std::ostringstream &out)
{
    out << "numThreads " << s.numThreads << '\n';
    for (const HeapOp &op : s.ops) {
        switch (op.kind) {
          case HeapOp::Push:
            out << "op push " << op.time << ' ' << op.tid << '\n';
            break;
          case HeapOp::Pop:
            out << "op pop\n";
            break;
          case HeapOp::Invalidate:
            out << "op inval " << op.tid << '\n';
            break;
        }
    }
}

void
writeJson(const JsonSample &s, std::ostringstream &out)
{
    out << "text " << escapeText(s.text) << '\n';
}

void
writeNum(const NumSample &s, std::ostringstream &out)
{
    out << "text " << escapeText(s.text) << '\n';
    out << "max " << s.max << '\n';
}

void
writePhase(const PhaseSample &s, std::ostringstream &out)
{
    out << "threads " << s.threads << '\n';
    out << "workPerThread " << s.workPerThread << '\n';
    out << "phase0Faults " << s.phase0Faults << '\n';
    out << "meanRun " << fmtDouble(s.meanRun) << '\n';
    out << "latency0 " << s.latency0 << '\n';
    out << "latency1 " << s.latency1 << '\n';
    out << "numRegs " << s.numRegs << '\n';
    out << "seed " << s.seed << '\n';
}

void
writeProgram(const ProgramSample &s, std::ostringstream &out)
{
    out << "numRegs " << s.numRegs << '\n';
    out << "operandWidth " << s.operandWidth << '\n';
    out << "delaySlots " << s.delaySlots << '\n';
    out << "banks " << s.banks << '\n';
    out << "mode " << unsigned{s.mode} << '\n';
    out << "memWords " << s.memWords << '\n';
    out << "maxSteps " << s.maxSteps << '\n';
    out << "takenBranchPenalty " << s.takenBranchPenalty << '\n';
    out << "loadUsePenalty " << s.loadUsePenalty << '\n';
    out << "ldrrmPenalty " << s.ldrrmPenalty << '\n';
    out << "lintChecked " << (s.lintChecked ? 1 : 0) << '\n';
    for (const uint32_t word : s.words) {
        char buf[16];
        std::snprintf(buf, sizeof buf, "%08x", word);
        out << "word " << buf << '\n';
    }
}

void
writeMt(const MtSample &s, std::ostringstream &out)
{
    out << "threads " << s.threads << '\n';
    out << "regsLo " << s.regsLo << '\n';
    out << "regsHi " << s.regsHi << '\n';
    out << "work " << s.work << '\n';
    out << "family " << unsigned{s.family} << '\n';
    out << "param0 " << fmtDouble(s.param0) << '\n';
    out << "param1 " << fmtDouble(s.param1) << '\n';
    out << "param2 " << fmtDouble(s.param2) << '\n';
    out << "param3 " << fmtDouble(s.param3) << '\n';
    out << "phase0Faults " << s.phase0Faults << '\n';
    out << "phase1Faults " << s.phase1Faults << '\n';
    out << "arch " << unsigned{s.arch} << '\n';
    out << "numRegs " << s.numRegs << '\n';
    out << "operandWidth " << s.operandWidth << '\n';
    out << "minContextSize " << s.minContextSize << '\n';
    out << "fixedContextRegs " << s.fixedContextRegs << '\n';
    out << "unload " << unsigned{s.unload} << '\n';
    out << "residencyCap " << s.residencyCap << '\n';
    out << "priorityLevels " << s.priorityLevels << '\n';
    out << "seed " << s.seed << '\n';
}

void
writeCallgraph(const CallgraphSample &s, std::ostringstream &out)
{
    out << "numCells " << s.numCells << '\n';
    out << "numLocks " << s.numLocks << '\n';
    out << "maxSteps " << s.maxSteps << '\n';
    // One line per procedure: touch mask, cell+1 (0 = none), write
    // flag, lock+1 (0 = none), then the child indices.
    for (const CgProc &proc : s.procs) {
        out << "proc " << proc.touch << ' ' << proc.cell + 1 << ' '
            << (proc.write ? 1 : 0) << ' ' << proc.lock + 1;
        for (const uint32_t callee : proc.calls)
            out << ' ' << callee;
        out << '\n';
    }
    for (const CgRoot &root : s.roots) {
        out << "root";
        for (const uint32_t callee : root.calls)
            out << ' ' << callee;
        out << '\n';
    }
}

void
writeCkpt(const CkptSample &s, std::ostringstream &out)
{
    // The embedded MtSample uses the mt field names verbatim; the
    // three ckpt-only fields follow.
    writeMt(s.spec, out);
    out << "splitEvents " << s.splitEvents << '\n';
    out << "corruptPos " << s.corruptPos << '\n';
    out << "corruptBit " << unsigned{s.corruptBit} << '\n';
}

void
writeXsim(const XsimSample &s, std::ostringstream &out)
{
    out << "threads " << s.threads << '\n';
    out << "regsUsed " << s.regsUsed << '\n';
    out << "latency " << s.latency << '\n';
    out << "segments " << s.segments << '\n';
    out << "seed " << s.seed << '\n';
    out << "tolerance " << fmtDouble(s.tolerance) << '\n';
    out << "script";
    for (const uint64_t v : s.script)
        out << ' ' << v;
    out << '\n';
}

// ---------------------------------------------------------------------
// parsing

/** One key-value line, already split at the first space. */
struct Field
{
    std::string key;
    std::string rest;
};

bool
parseU64(const std::string &text, uint64_t &out)
{
    // The strict shared grammar: digits only, no sign/whitespace.
    return parseUnsigned(text.c_str(), out);
}

bool
parseDouble(const std::string &text, double &out)
{
    if (text.empty())
        return false;
    char *end = nullptr;
    const double v = std::strtod(text.c_str(), &end);
    if (end != text.c_str() + text.size())
        return false;
    out = v;
    return true;
}

std::vector<std::string>
splitWords(const std::string &text)
{
    std::vector<std::string> words;
    std::istringstream in(text);
    std::string w;
    while (in >> w)
        words.push_back(w);
    return words;
}

/** Field dispatcher: returns false (setting @p error) on bad input. */
template <typename Setter>
bool
applyFields(const std::vector<Field> &fields, std::string &error,
            const Setter &set)
{
    for (const Field &f : fields) {
        if (!set(f)) {
            error = "bad or unknown field: " + f.key;
            return false;
        }
    }
    return true;
}

/** Helpers binding one key to one destination. */
template <typename T>
bool
bindU(const Field &f, const char *key, T &dst)
{
    if (f.key != key)
        return false;
    uint64_t v = 0;
    if (!parseU64(f.rest, v))
        return false;
    dst = static_cast<T>(v);
    return true;
}

bool
bindD(const Field &f, const char *key, double &dst)
{
    if (f.key != key)
        return false;
    return parseDouble(f.rest, dst);
}

bool
parseRelocFields(const std::vector<Field> &fields, RelocSample &s,
                 std::string &error)
{
    return applyFields(fields, error, [&](const Field &f) {
        if (bindU(f, "numRegs", s.numRegs) ||
            bindU(f, "operandWidth", s.operandWidth) ||
            bindU(f, "banks", s.banks) || bindU(f, "mode", s.mode))
            return true;
        if (f.key == "op") {
            const std::vector<std::string> w = splitWords(f.rest);
            RelocOp op;
            uint64_t value = 0;
            if (w.size() == 3 && w[0] == "mask") {
                uint64_t bank = 0;
                if (!parseU64(w[1], value) || !parseU64(w[2], bank))
                    return false;
                op.kind = RelocOp::SetMask;
                op.value = static_cast<uint32_t>(value);
                op.bank = static_cast<uint8_t>(bank);
            } else if (w.size() == 2 && w[0] == "size") {
                if (!parseU64(w[1], value))
                    return false;
                op.kind = RelocOp::SetSize;
                op.value = static_cast<uint32_t>(value);
            } else {
                return false;
            }
            s.ops.push_back(op);
            return true;
        }
        return false;
    });
}

bool
parseHeapFields(const std::vector<Field> &fields, HeapSample &s,
                std::string &error)
{
    return applyFields(fields, error, [&](const Field &f) {
        if (bindU(f, "numThreads", s.numThreads))
            return true;
        if (f.key == "op") {
            const std::vector<std::string> w = splitWords(f.rest);
            HeapOp op;
            if (w.size() == 3 && w[0] == "push") {
                uint64_t tid = 0;
                if (!parseU64(w[1], op.time) || !parseU64(w[2], tid))
                    return false;
                op.kind = HeapOp::Push;
                op.tid = static_cast<uint32_t>(tid);
            } else if (w.size() == 1 && w[0] == "pop") {
                op.kind = HeapOp::Pop;
            } else if (w.size() == 2 && w[0] == "inval") {
                uint64_t tid = 0;
                if (!parseU64(w[1], tid))
                    return false;
                op.kind = HeapOp::Invalidate;
                op.tid = static_cast<uint32_t>(tid);
            } else {
                return false;
            }
            s.ops.push_back(op);
            return true;
        }
        return false;
    });
}

bool
parseJsonFields(const std::vector<Field> &fields, JsonSample &s,
                std::string &error)
{
    return applyFields(fields, error, [&](const Field &f) {
        if (f.key == "text")
            return unescapeText(f.rest, s.text);
        return false;
    });
}

bool
parseNumFields(const std::vector<Field> &fields, NumSample &s,
               std::string &error)
{
    return applyFields(fields, error, [&](const Field &f) {
        if (f.key == "text")
            return unescapeText(f.rest, s.text);
        return bindU(f, "max", s.max);
    });
}

bool
parsePhaseFields(const std::vector<Field> &fields, PhaseSample &s,
                 std::string &error)
{
    return applyFields(fields, error, [&](const Field &f) {
        return bindU(f, "threads", s.threads) ||
               bindU(f, "workPerThread", s.workPerThread) ||
               bindU(f, "phase0Faults", s.phase0Faults) ||
               bindD(f, "meanRun", s.meanRun) ||
               bindU(f, "latency0", s.latency0) ||
               bindU(f, "latency1", s.latency1) ||
               bindU(f, "numRegs", s.numRegs) ||
               bindU(f, "seed", s.seed);
    });
}

bool
parseProgramFields(const std::vector<Field> &fields, ProgramSample &s,
                   std::string &error)
{
    return applyFields(fields, error, [&](const Field &f) {
        if (bindU(f, "numRegs", s.numRegs) ||
            bindU(f, "operandWidth", s.operandWidth) ||
            bindU(f, "delaySlots", s.delaySlots) ||
            bindU(f, "banks", s.banks) || bindU(f, "mode", s.mode) ||
            bindU(f, "memWords", s.memWords) ||
            bindU(f, "maxSteps", s.maxSteps) ||
            bindU(f, "takenBranchPenalty", s.takenBranchPenalty) ||
            bindU(f, "loadUsePenalty", s.loadUsePenalty) ||
            bindU(f, "ldrrmPenalty", s.ldrrmPenalty))
            return true;
        if (f.key == "lintChecked") {
            uint64_t v = 0;
            if (!parseU64(f.rest, v) || v > 1)
                return false;
            s.lintChecked = v != 0;
            return true;
        }
        if (f.key == "word") {
            if (f.rest.size() != 8)
                return false;
            uint32_t word = 0;
            for (const char c : f.rest) {
                unsigned digit;
                if (c >= '0' && c <= '9')
                    digit = static_cast<unsigned>(c - '0');
                else if (c >= 'a' && c <= 'f')
                    digit = static_cast<unsigned>(c - 'a') + 10;
                else
                    return false;
                word = word << 4 | digit;
            }
            s.words.push_back(word);
            return true;
        }
        return false;
    });
}

bool
bindMtField(const Field &f, MtSample &s)
{
    return bindU(f, "threads", s.threads) ||
           bindU(f, "regsLo", s.regsLo) ||
           bindU(f, "regsHi", s.regsHi) ||
           bindU(f, "work", s.work) ||
           bindU(f, "family", s.family) ||
           bindD(f, "param0", s.param0) ||
           bindD(f, "param1", s.param1) ||
           bindD(f, "param2", s.param2) ||
           bindD(f, "param3", s.param3) ||
           bindU(f, "phase0Faults", s.phase0Faults) ||
           bindU(f, "phase1Faults", s.phase1Faults) ||
           bindU(f, "arch", s.arch) ||
           bindU(f, "numRegs", s.numRegs) ||
           bindU(f, "operandWidth", s.operandWidth) ||
           bindU(f, "minContextSize", s.minContextSize) ||
           bindU(f, "fixedContextRegs", s.fixedContextRegs) ||
           bindU(f, "unload", s.unload) ||
           bindU(f, "residencyCap", s.residencyCap) ||
           bindU(f, "priorityLevels", s.priorityLevels) ||
           bindU(f, "seed", s.seed);
}

bool
parseMtFields(const std::vector<Field> &fields, MtSample &s,
              std::string &error)
{
    return applyFields(fields, error, [&](const Field &f) {
        return bindMtField(f, s);
    });
}

bool
parseCkptFields(const std::vector<Field> &fields, CkptSample &s,
                std::string &error)
{
    return applyFields(fields, error, [&](const Field &f) {
        return bindMtField(f, s.spec) ||
               bindU(f, "splitEvents", s.splitEvents) ||
               bindU(f, "corruptPos", s.corruptPos) ||
               bindU(f, "corruptBit", s.corruptBit);
    });
}

bool
parseXsimFields(const std::vector<Field> &fields, XsimSample &s,
                std::string &error)
{
    return applyFields(fields, error, [&](const Field &f) {
        if (bindU(f, "threads", s.threads) ||
            bindU(f, "regsUsed", s.regsUsed) ||
            bindU(f, "latency", s.latency) ||
            bindU(f, "segments", s.segments) ||
            bindU(f, "seed", s.seed) ||
            bindD(f, "tolerance", s.tolerance))
            return true;
        if (f.key == "script") {
            s.script.clear();
            for (const std::string &w : splitWords(f.rest)) {
                uint64_t v = 0;
                if (!parseU64(w, v))
                    return false;
                s.script.push_back(v);
            }
            return !s.script.empty();
        }
        return false;
    });
}

bool
parseCallgraphFields(const std::vector<Field> &fields,
                     CallgraphSample &s, std::string &error)
{
    return applyFields(fields, error, [&](const Field &f) {
        if (bindU(f, "numCells", s.numCells) ||
            bindU(f, "numLocks", s.numLocks) ||
            bindU(f, "maxSteps", s.maxSteps))
            return true;
        if (f.key == "proc") {
            const std::vector<std::string> words =
                splitWords(f.rest);
            if (words.size() < 4)
                return false;
            uint64_t v[4];
            for (size_t i = 0; i < 4; ++i) {
                // Narrow-cast guard: validation happens later, but
                // the cast below must not wrap a huge value into a
                // plausible one.
                if (!parseU64(words[i], v[i]) || v[i] > 100000)
                    return false;
            }
            CgProc proc;
            proc.touch = static_cast<uint32_t>(v[0]);
            proc.cell = static_cast<int>(v[1]) - 1;
            if (v[2] > 1)
                return false;
            proc.write = v[2] != 0;
            proc.lock = static_cast<int>(v[3]) - 1;
            for (size_t i = 4; i < words.size(); ++i) {
                uint64_t callee = 0;
                if (!parseU64(words[i], callee) || callee > 100000)
                    return false;
                proc.calls.push_back(
                    static_cast<uint32_t>(callee));
            }
            s.procs.push_back(std::move(proc));
            return true;
        }
        if (f.key == "root") {
            CgRoot root;
            for (const std::string &w : splitWords(f.rest)) {
                uint64_t callee = 0;
                if (!parseU64(w, callee) || callee > 100000)
                    return false;
                root.calls.push_back(
                    static_cast<uint32_t>(callee));
            }
            s.roots.push_back(std::move(root));
            return true;
        }
        return false;
    });
}

} // namespace

std::string
serializeRepro(const AnySample &sample)
{
    std::ostringstream out;
    out << kMagic << '\n';
    out << "kind " << kindName(kindOf(sample)) << '\n';
    std::visit(
        [&](const auto &s) {
            using T = std::decay_t<decltype(s)>;
            if constexpr (std::is_same_v<T, RelocSample>)
                writeReloc(s, out);
            else if constexpr (std::is_same_v<T, HeapSample>)
                writeHeap(s, out);
            else if constexpr (std::is_same_v<T, JsonSample>)
                writeJson(s, out);
            else if constexpr (std::is_same_v<T, NumSample>)
                writeNum(s, out);
            else if constexpr (std::is_same_v<T, PhaseSample>)
                writePhase(s, out);
            else if constexpr (std::is_same_v<T, ProgramSample>)
                writeProgram(s, out);
            else if constexpr (std::is_same_v<T, MtSample>)
                writeMt(s, out);
            else if constexpr (std::is_same_v<T, XsimSample>)
                writeXsim(s, out);
            else if constexpr (std::is_same_v<T, CallgraphSample>)
                writeCallgraph(s, out);
            else
                writeCkpt(s, out);
        },
        sample);
    out << "end\n";
    return out.str();
}


// ---------------------------------------------------------------------
// Domain validation. Repro files come from disk and may be
// hand-edited (or hostile); a value outside the generator's domain
// must be a parse error (replay exit 2), not an rr_assert abort or a
// multi-hour simulation deep inside the checked subsystem.

bool
inRange(uint64_t v, uint64_t lo, uint64_t hi, const char *what,
        std::string &error)
{
    if (v >= lo && v <= hi)
        return true;
    error = std::string(what) + " out of range";
    return false;
}

bool
finiteIn(double v, double lo, double hi, const char *what,
         std::string &error)
{
    if (std::isfinite(v) && v >= lo && v <= hi)
        return true;
    error = std::string(what) + " out of range";
    return false;
}

bool
pow2(uint64_t v)
{
    return v != 0 && (v & (v - 1)) == 0;
}

bool
validateReloc(const RelocSample &s, std::string &error)
{
    if (!inRange(s.numRegs, 2, 1024, "numRegs", error) ||
        !inRange(s.operandWidth, 1, 6, "operandWidth", error) ||
        !inRange(s.banks, 1, 8, "banks", error) ||
        !inRange(s.mode, 0, 2, "mode", error) ||
        !inRange(s.ops.size(), 0, 100000, "op count", error))
        return false;
    if (!pow2(s.numRegs) || !pow2(s.banks) ||
        (1u << s.operandWidth) > s.numRegs) {
        error = "inconsistent relocation geometry";
        return false;
    }
    unsigned bank_bits = 0;
    while ((1u << bank_bits) < s.banks)
        ++bank_bits;
    if (bank_bits >= s.operandWidth) {
        error = "banks do not fit the operand width";
        return false;
    }
    for (const RelocOp &op : s.ops) {
        if (op.kind == RelocOp::SetMask) {
            if (op.bank >= s.banks) {
                error = "op bank out of range";
                return false;
            }
        } else if (!pow2(op.value) ||
                   op.value > (1u << s.operandWidth)) {
            error = "context size not a power of two within 2^w";
            return false;
        }
    }
    return true;
}

bool
validateHeap(const HeapSample &s, std::string &error)
{
    if (!inRange(s.numThreads, 1, 1024, "numThreads", error) ||
        !inRange(s.ops.size(), 0, 1000000, "op count", error))
        return false;
    for (const HeapOp &op : s.ops) {
        if (op.kind != HeapOp::Pop && op.tid >= s.numThreads) {
            error = "op tid out of range";
            return false;
        }
    }
    return true;
}

bool
validatePhase(const PhaseSample &s, std::string &error)
{
    return inRange(s.threads, 1, 1024, "threads", error) &&
           inRange(s.workPerThread, 1, 100000000, "workPerThread",
                   error) &&
           inRange(s.phase0Faults, 1, 1000000, "phase0Faults",
                   error) &&
           finiteIn(s.meanRun, 1.0, 1e6, "meanRun", error) &&
           inRange(s.latency0, 0, 10000000, "latency0", error) &&
           inRange(s.latency1, 0, 10000000, "latency1", error) &&
           inRange(s.numRegs, 12, 65536, "numRegs", error);
}

bool
validateProgram(const ProgramSample &s, std::string &error)
{
    if (!inRange(s.numRegs, 16, 1024, "numRegs", error) ||
        !inRange(s.operandWidth, 1, 6, "operandWidth", error) ||
        !inRange(s.banks, 1, 8, "banks", error) ||
        !inRange(s.mode, 0, 2, "mode", error) ||
        !inRange(s.delaySlots, 0, 4, "delaySlots", error) ||
        !inRange(s.memWords, 64, 1u << 20, "memWords", error) ||
        !inRange(s.maxSteps, 1, 100000000, "maxSteps", error) ||
        !inRange(s.takenBranchPenalty, 0, 100, "takenBranchPenalty",
                 error) ||
        !inRange(s.loadUsePenalty, 0, 100, "loadUsePenalty", error) ||
        !inRange(s.ldrrmPenalty, 0, 100, "ldrrmPenalty", error) ||
        !inRange(s.words.size(), 0, s.memWords, "program size",
                 error))
        return false;
    if (!pow2(s.numRegs) || !pow2(s.banks) ||
        (1u << s.operandWidth) > s.numRegs) {
        error = "inconsistent relocation geometry";
        return false;
    }
    unsigned bank_bits = 0;
    while ((1u << bank_bits) < s.banks)
        ++bank_bits;
    if (bank_bits >= s.operandWidth) {
        error = "banks do not fit the operand width";
        return false;
    }
    return true;
}

bool
validateMt(const MtSample &s, std::string &error)
{
    return inRange(s.threads, 1, 4096, "threads", error) &&
           inRange(s.regsLo, 0, 65536, "regsLo", error) &&
           inRange(s.regsHi, 0, 65536, "regsHi", error) &&
           inRange(s.work, 0, 100000000, "work", error) &&
           inRange(s.family, 0, 4, "family", error) &&
           finiteIn(s.param0, -1e12, 1e12, "param0", error) &&
           finiteIn(s.param1, -1e12, 1e12, "param1", error) &&
           finiteIn(s.param2, -1e12, 1e12, "param2", error) &&
           finiteIn(s.param3, -1e12, 1e12, "param3", error) &&
           inRange(s.phase0Faults, 0, 1000000, "phase0Faults",
                   error) &&
           inRange(s.phase1Faults, 0, 1000000, "phase1Faults",
                   error) &&
           inRange(s.arch, 0, 2, "arch", error) &&
           inRange(s.numRegs, 1, 65536, "numRegs", error) &&
           inRange(s.operandWidth, 1, 16, "operandWidth", error) &&
           inRange(s.minContextSize, 0, 65536, "minContextSize",
                   error) &&
           inRange(s.fixedContextRegs, 0, 65536, "fixedContextRegs",
                   error) &&
           inRange(s.unload, 0, 1, "unload", error) &&
           inRange(s.residencyCap, 0, 1000000, "residencyCap",
                   error) &&
           inRange(s.priorityLevels, 1, 64, "priorityLevels", error);
}

bool
validateCkpt(const CkptSample &s, std::string &error)
{
    // splitEvents and corruptPos are arbitrary u64s by design (the
    // oracle clamps both); only the embedded spec and the bit index
    // carry domain constraints.
    return validateMt(s.spec, error) &&
           inRange(s.corruptBit, 0, 7, "corruptBit", error);
}

bool
validateXsim(const XsimSample &s, std::string &error)
{
    if (!inRange(s.threads, 1, 8, "threads", error) ||
        !inRange(s.regsUsed, 12, 16, "regsUsed", error) ||
        !inRange(s.segments, 1, 512, "segments", error) ||
        !inRange(s.latency, 1, 10000000, "latency", error) ||
        !inRange(s.script.size(), 1, 1024, "script length", error) ||
        !finiteIn(s.tolerance, 0.0, 10.0, "tolerance", error))
        return false;
    for (const uint64_t units : s.script) {
        if (!inRange(units, 1, 1000000, "script entry", error))
            return false;
    }
    // All contexts (power-of-two covering regsUsed, at least 16 for
    // the r0..r11 body plus headroom) must fit the 128-register file
    // the oracle configures, or the kernel refuses to start.
    unsigned context = 16;
    while (context < s.regsUsed)
        context <<= 1;
    if (static_cast<uint64_t>(s.threads) * context > 128) {
        error = "threads do not fit the register file";
        return false;
    }
    return true;
}

bool
validateCallgraph(const CallgraphSample &s, std::string &error)
{
    if (!inRange(s.procs.size(), 1, 16, "procs", error) ||
        !inRange(s.roots.size(), 1, 6, "roots", error) ||
        !inRange(s.numCells, 1, 8, "numCells", error) ||
        !inRange(s.numLocks, 0, 4, "numLocks", error) ||
        !inRange(s.maxSteps, 1, 10000000, "maxSteps", error))
        return false;

    // Establish the forest shape first (at most one parent each),
    // then check depth and lock nesting along parent chains.
    const uint32_t none = ~0u;
    std::vector<uint32_t> parent(s.procs.size(), none);
    for (size_t i = 0; i < s.procs.size(); ++i) {
        const CgProc &p = s.procs[i];
        if ((p.touch & ~0xFFEu) != 0) {
            error = "proc touch outside r1..r11";
            return false;
        }
        if (p.cell < -1 || p.cell >= static_cast<int>(s.numCells)) {
            error = "proc cell out of range";
            return false;
        }
        if (p.cell < 0 && p.write) {
            error = "write without a cell";
            return false;
        }
        if (p.lock < -1 || p.lock >= static_cast<int>(s.numLocks)) {
            error = "proc lock out of range";
            return false;
        }
        if (p.calls.size() > 4) {
            error = "proc calls too many children";
            return false;
        }
        uint32_t prev = 0;
        bool first = true;
        for (const uint32_t callee : p.calls) {
            if (callee <= i || callee >= s.procs.size()) {
                error = "proc call target out of range";
                return false;
            }
            if (!first && callee <= prev) {
                error = "proc calls not strictly increasing";
                return false;
            }
            first = false;
            prev = callee;
            if (parent[callee] != none) {
                error = "procedure has two callers";
                return false;
            }
            parent[callee] = static_cast<uint32_t>(i);
        }
    }
    for (size_t i = 0; i < s.procs.size(); ++i) {
        unsigned depth = 1;
        for (uint32_t a = parent[i]; a != none; a = parent[a]) {
            ++depth;
            if (depth > 3) {
                error = "call forest deeper than three";
                return false;
            }
            if (s.procs[i].lock >= 0 &&
                s.procs[a].lock == s.procs[i].lock) {
                error = "lock repeated along an ancestor path";
                return false;
            }
        }
    }
    for (const CgRoot &r : s.roots) {
        if (r.calls.size() > 4) {
            error = "root calls too many procedures";
            return false;
        }
        for (size_t i = 0; i < r.calls.size(); ++i) {
            const uint32_t callee = r.calls[i];
            if (callee >= s.procs.size()) {
                error = "root call target out of range";
                return false;
            }
            if (parent[callee] != none) {
                error = "root calls a non-root procedure";
                return false;
            }
            for (size_t j = 0; j < i; ++j) {
                if (r.calls[j] == callee) {
                    error = "root calls a procedure twice";
                    return false;
                }
            }
        }
    }
    return true;
}

bool
validateText(const std::string &text, std::string &error)
{
    if (text.size() <= 1u << 20)
        return true;
    error = "text too long";
    return false;
}

bool
parseRepro(const std::string &text, AnySample &out, std::string &error)
{
    std::vector<std::string> lines;
    {
        std::string cur;
        for (const char c : text) {
            if (c == '\n') {
                lines.push_back(cur);
                cur.clear();
            } else {
                cur += c;
            }
        }
        if (!cur.empty())
            lines.push_back(cur);
    }

    size_t at = 0;
    // Skip blank / comment lines before the magic (hand-edited files).
    while (at < lines.size() &&
           (lines[at].empty() || lines[at][0] == '#'))
        ++at;
    if (at >= lines.size() || lines[at] != kMagic) {
        error = "missing rrfuzz.repro.v1 header";
        return false;
    }
    ++at;

    SampleKind kind = SampleKind::Reloc;
    bool haveKind = false;
    std::vector<Field> fields;
    bool ended = false;
    for (; at < lines.size(); ++at) {
        const std::string &line = lines[at];
        if (line.empty() || line[0] == '#')
            continue;
        if (line == "end") {
            ended = true;
            ++at;
            break;
        }
        const size_t space = line.find(' ');
        Field f;
        f.key = line.substr(0, space);
        f.rest = space == std::string::npos ? std::string()
                                            : line.substr(space + 1);
        if (f.key == "kind") {
            if (haveKind || !kindFromName(f.rest, kind)) {
                error = "bad kind line";
                return false;
            }
            haveKind = true;
            continue;
        }
        if (!haveKind) {
            error = "field before kind line";
            return false;
        }
        fields.push_back(std::move(f));
    }
    if (!ended) {
        error = "missing end line";
        return false;
    }
    for (; at < lines.size(); ++at) {
        if (!lines[at].empty() && lines[at][0] != '#') {
            error = "trailing garbage after end";
            return false;
        }
    }
    if (!haveKind) {
        error = "missing kind line";
        return false;
    }

    switch (kind) {
      case SampleKind::Reloc: {
        RelocSample s;
        if (!parseRelocFields(fields, s, error) ||
            !validateReloc(s, error))
            return false;
        out = s;
        return true;
      }
      case SampleKind::Heap: {
        HeapSample s;
        if (!parseHeapFields(fields, s, error) ||
            !validateHeap(s, error))
            return false;
        out = s;
        return true;
      }
      case SampleKind::Json: {
        JsonSample s;
        if (!parseJsonFields(fields, s, error) ||
            !validateText(s.text, error))
            return false;
        out = s;
        return true;
      }
      case SampleKind::Num: {
        NumSample s;
        if (!parseNumFields(fields, s, error) ||
            !validateText(s.text, error))
            return false;
        out = s;
        return true;
      }
      case SampleKind::Phase: {
        PhaseSample s;
        if (!parsePhaseFields(fields, s, error) ||
            !validatePhase(s, error))
            return false;
        out = s;
        return true;
      }
      case SampleKind::Program: {
        ProgramSample s;
        if (!parseProgramFields(fields, s, error) ||
            !validateProgram(s, error))
            return false;
        out = s;
        return true;
      }
      case SampleKind::Mt: {
        MtSample s;
        if (!parseMtFields(fields, s, error) ||
            !validateMt(s, error))
            return false;
        out = s;
        return true;
      }
      case SampleKind::Xsim: {
        XsimSample s;
        if (!parseXsimFields(fields, s, error) ||
            !validateXsim(s, error))
            return false;
        out = s;
        return true;
      }
      case SampleKind::Callgraph: {
        CallgraphSample s;
        if (!parseCallgraphFields(fields, s, error) ||
            !validateCallgraph(s, error))
            return false;
        out = s;
        return true;
      }
      case SampleKind::Ckpt: {
        CkptSample s;
        if (!parseCkptFields(fields, s, error) ||
            !validateCkpt(s, error))
            return false;
        out = s;
        return true;
      }
    }
    error = "unreachable kind";
    return false;
}

} // namespace rr::fuzz
