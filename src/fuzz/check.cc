/**
 * @file
 * The oracles. checkSample() runs every applicable property on one
 * sample and returns human-readable problem descriptions; an empty
 * list is a pass. Oracles are deterministic: a failing sample fails
 * identically on replay, which is what makes the corpus pinning
 * under tests/fuzz/corpus/ meaningful.
 *
 * The properties per kind are specified in docs/FUZZ.md; comments
 * here cover only the subtleties (tie handling in the heap oracle,
 * the vacuous-pass rules, and which lint claims are checkable).
 */

#include "fuzz/fuzz.hh"

#include <algorithm>
#include <cstdarg>
#include <cstdio>
#include <cstring>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <queue>
#include <set>
#include <sstream>

#include "analysis/static/callgraph.hh"
#include "analysis/static/cfg.hh"
#include "analysis/static/lint.hh"
#include "analysis/static/liveness.hh"
#include "analysis/static/lockset.hh"
#include "analysis/static/rrm_state.hh"
#include "assembler/assembler.hh"
#include "base/distributions.hh"
#include "base/parse_num.hh"
#include "exp/json_in.hh"
#include "exp/json_out.hh"
#include "ext/context_cache.hh"
#include "kernel/machine_mt_kernel.hh"
#include "ckpt/io.hh"
#include "machine/cpu.hh"
#include "multithread/event_core.hh"
#include "multithread/fault_model.hh"
#include "multithread/mt_processor.hh"
#include "multithread/simulation_spec.hh"
#include "multithread/workload.hh"
#include "trace/audit.hh"
#include "trace/sink.hh"

namespace rr::fuzz {

namespace {

/** printf-style into a std::string (problem formatting). */
std::string
strf(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    char buf[512];
    std::vsnprintf(buf, sizeof buf, fmt, args);
    va_end(args);
    return buf;
}

// ---------------------------------------------------------------------
// reloc

Problems
checkReloc(const RelocSample &s)
{
    Problems problems;
    machine::RelocationUnit unit(
        s.numRegs, s.operandWidth,
        static_cast<machine::RelocationMode>(s.mode), s.banks);

    const unsigned table_size = unit.tableSize();
    for (size_t i = 0; i < s.ops.size(); ++i) {
        const RelocOp &op = s.ops[i];
        if (op.kind == RelocOp::SetMask)
            unit.setMask(op.value, op.bank);
        else
            unit.setContextSize(op.value);

        const machine::RelocationResult *table = unit.table();
        for (unsigned operand = 0; operand < table_size; ++operand) {
            const machine::RelocationResult ref =
                unit.relocate(operand);
            if (table[operand].physical != ref.physical ||
                table[operand].ok != ref.ok) {
                problems.push_back(strf(
                    "reloc: after op %zu, operand %u: table() gives "
                    "phys=%u ok=%d but relocate() gives phys=%u "
                    "ok=%d",
                    i, operand, table[operand].physical,
                    table[operand].ok ? 1 : 0, ref.physical,
                    ref.ok ? 1 : 0));
                if (problems.size() >= 4)
                    return problems;
            }
        }
    }
    return problems;
}

// ---------------------------------------------------------------------
// heap

/**
 * Owner-side bookkeeping shared by both heap drivers: per-thread
 * epochs, at most one live (pending) event per thread — the
 * MtProcessor contract — and epoch-rule staleness.
 */
struct HeapOwner
{
    std::vector<uint64_t> cur;       ///< current epoch per thread
    std::vector<uint64_t> staleBelow; ///< stale iff epoch <= this
    std::vector<bool> pending;       ///< tid has an undelivered event

    explicit HeapOwner(unsigned threads)
        : cur(threads, 1), staleBelow(threads, 0),
          pending(threads, false)
    {
    }

    bool isStale(const mt::CompletionEvent &ev) const
    {
        return ev.epoch <= staleBelow[ev.tid];
    }
};

struct Delivered
{
    uint64_t time;
    uint64_t epoch;
    uint32_t tid;

    bool operator==(const Delivered &other) const = default;
    auto operator<=>(const Delivered &other) const = default;
};

/** Reference: the pre-EventCore lazy-deletion priority queue. */
struct RefHeap
{
    struct Later
    {
        bool operator()(const mt::CompletionEvent &a,
                        const mt::CompletionEvent &b) const
        {
            return a.time > b.time;
        }
    };

    std::priority_queue<mt::CompletionEvent,
                        std::vector<mt::CompletionEvent>, Later>
        q;
};

/**
 * One side's full run over the script; times optionally uniqued.
 * The EventCore owner contract is enforced here: whenever a thread's
 * epoch advances (explicit Invalidate, or a Push while an event is
 * already outstanding), @p invalidate runs before anything else.
 */
template <typename PushFn, typename PopLiveFn, typename InvalFn>
std::vector<Delivered>
driveHeap(const HeapSample &s, bool unique_times, PushFn push,
          PopLiveFn popLive, InvalFn invalidate)
{
    HeapOwner owner(s.numThreads);
    std::vector<Delivered> delivered;
    uint64_t stamp = 0;
    const auto advanceEpoch = [&](uint32_t tid) {
        owner.staleBelow[tid] = owner.cur[tid];
        ++owner.cur[tid];
        owner.pending[tid] = false;
        invalidate(tid, owner);
    };
    for (const HeapOp &op : s.ops) {
        switch (op.kind) {
          case HeapOp::Push: {
            // Re-blocking a thread with an event outstanding: the
            // old event goes stale first (owner contract).
            if (owner.pending[op.tid])
                advanceEpoch(op.tid);
            const uint64_t time =
                unique_times ? op.time * 64 + stamp : op.time;
            ++stamp;
            push(mt::CompletionEvent{time, owner.cur[op.tid],
                                     op.tid});
            owner.pending[op.tid] = true;
            break;
          }
          case HeapOp::Pop: {
            std::optional<mt::CompletionEvent> ev = popLive(owner);
            if (ev) {
                owner.pending[ev->tid] = false;
                delivered.push_back({ev->time, ev->epoch, ev->tid});
            }
            break;
          }
          case HeapOp::Invalidate:
            if (owner.pending[op.tid])
                advanceEpoch(op.tid);
            break;
        }
    }
    // Final drain.
    for (;;) {
        std::optional<mt::CompletionEvent> ev = popLive(owner);
        if (!ev)
            break;
        owner.pending[ev->tid] = false;
        delivered.push_back({ev->time, ev->epoch, ev->tid});
    }
    return delivered;
}

Problems
checkHeap(const HeapSample &s)
{
    Problems problems;

    // --- pass 1: strict differential with unique times -------------
    // With all times distinct the heap order is total, so EventCore
    // and the lazy-deletion priority queue must deliver identical
    // (time, epoch, tid) sequences.
    {
        mt::EventCore core;
        const auto corePush = [&](const mt::CompletionEvent &ev) {
            core.push(ev);
        };
        const auto corePop =
            [&](HeapOwner &owner) -> std::optional<mt::CompletionEvent> {
            while (!core.empty()) {
                const mt::CompletionEvent ev = core.top();
                if (owner.isStale(ev)) {
                    core.popStale();
                    continue;
                }
                core.pop();
                return ev;
            }
            return std::nullopt;
        };
        const auto coreInval = [&](uint32_t tid, HeapOwner &) {
            core.invalidateThread(tid);
        };
        const std::vector<Delivered> coreSeq =
            driveHeap(s, true, corePush, corePop, coreInval);

        RefHeap ref;
        const auto refPush = [&](const mt::CompletionEvent &ev) {
            ref.q.push(ev);
        };
        const auto refPop =
            [&](HeapOwner &owner) -> std::optional<mt::CompletionEvent> {
            while (!ref.q.empty()) {
                const mt::CompletionEvent ev = ref.q.top();
                ref.q.pop();
                if (owner.isStale(ev))
                    continue;
                return ev;
            }
            return std::nullopt;
        };
        const auto refInval = [](uint32_t, HeapOwner &) {};
        const std::vector<Delivered> refSeq =
            driveHeap(s, true, refPush, refPop, refInval);

        if (coreSeq.size() != refSeq.size()) {
            problems.push_back(strf(
                "heap: unique-time run delivered %zu events via "
                "EventCore but %zu via priority_queue",
                coreSeq.size(), refSeq.size()));
        } else {
            for (size_t i = 0; i < coreSeq.size(); ++i) {
                if (coreSeq[i] == refSeq[i])
                    continue;
                problems.push_back(strf(
                    "heap: unique-time delivery %zu differs: "
                    "EventCore (t=%llu e=%llu tid=%u) vs "
                    "priority_queue (t=%llu e=%llu tid=%u)",
                    i,
                    static_cast<unsigned long long>(coreSeq[i].time),
                    static_cast<unsigned long long>(coreSeq[i].epoch),
                    coreSeq[i].tid,
                    static_cast<unsigned long long>(refSeq[i].time),
                    static_cast<unsigned long long>(refSeq[i].epoch),
                    refSeq[i].tid));
                break;
            }
        }
    }

    // --- pass 2: tie/compaction model check -------------------------
    // With raw (colliding) times, equal-time delivery order may
    // legitimately differ after a compaction re-heapifies, so the
    // oracle checks EventCore against a live-multiset model instead:
    // every delivery is a live event of minimal time, the live
    // counter tracks the model exactly, and the final drain returns
    // precisely the model's live multiset.
    {
        mt::EventCore core;
        std::multiset<Delivered> live;
        const auto modelPush = [&](const mt::CompletionEvent &ev) {
            core.push(ev);
            live.insert({ev.time, ev.epoch, ev.tid});
        };
        const auto modelInval = [&](uint32_t tid, HeapOwner &owner) {
            core.invalidateThread(tid);
            // Epoch-rule erase of the tid's live events.
            for (auto it = live.begin(); it != live.end();) {
                if (it->tid == tid &&
                    it->epoch <= owner.staleBelow[tid])
                    it = live.erase(it);
                else
                    ++it;
            }
        };
        const auto modelPop =
            [&](HeapOwner &owner) -> std::optional<mt::CompletionEvent> {
            while (!core.empty()) {
                const mt::CompletionEvent ev = core.top();
                if (owner.isStale(ev)) {
                    core.popStale();
                    continue;
                }
                core.pop();
                const Delivered d{ev.time, ev.epoch, ev.tid};
                const auto it = live.find(d);
                if (it == live.end()) {
                    problems.push_back(strf(
                        "heap: delivered event (t=%llu e=%llu "
                        "tid=%u) is not live in the model",
                        static_cast<unsigned long long>(ev.time),
                        static_cast<unsigned long long>(ev.epoch),
                        ev.tid));
                } else {
                    if (!live.empty() &&
                        live.begin()->time != ev.time) {
                        problems.push_back(strf(
                            "heap: delivered t=%llu but the minimal "
                            "live time is %llu",
                            static_cast<unsigned long long>(ev.time),
                            static_cast<unsigned long long>(
                                live.begin()->time)));
                    }
                    live.erase(it);
                }
                return ev;
            }
            return std::nullopt;
        };
        driveHeap(s, false, modelPush, modelPop, modelInval);
        if (!live.empty()) {
            problems.push_back(strf(
                "heap: %zu live events never delivered by the final "
                "drain (first: t=%llu tid=%u)",
                live.size(),
                static_cast<unsigned long long>(live.begin()->time),
                live.begin()->tid));
        }
        if (core.live() != 0 || !core.empty()) {
            problems.push_back(strf(
                "heap: core reports %zu live / %zu total after a "
                "full drain",
                core.live(), core.size()));
        }
    }
    return problems;
}

// ---------------------------------------------------------------------
// json

/** Compact serializer over the library's own quote/number routines. */
void
writeCompact(const exp::JsonValue &v, std::string &out)
{
    using Kind = exp::JsonValue::Kind;
    switch (v.kind) {
      case Kind::Null:
        out += "null";
        break;
      case Kind::Bool:
        out += v.boolean ? "true" : "false";
        break;
      case Kind::Number:
        out += exp::jsonNumber(v.number);
        break;
      case Kind::String:
        out += exp::jsonQuote(v.string);
        break;
      case Kind::Array:
        out += '[';
        for (size_t i = 0; i < v.elements.size(); ++i) {
            if (i)
                out += ',';
            writeCompact(v.elements[i], out);
        }
        out += ']';
        break;
      case Kind::Object:
        out += '{';
        for (size_t i = 0; i < v.members.size(); ++i) {
            if (i)
                out += ',';
            out += exp::jsonQuote(v.members[i].first);
            out += ':';
            writeCompact(v.members[i].second, out);
        }
        out += '}';
        break;
    }
}

bool
valuesEqual(const exp::JsonValue &a, const exp::JsonValue &b)
{
    using Kind = exp::JsonValue::Kind;
    if (a.kind != b.kind)
        return false;
    switch (a.kind) {
      case Kind::Null:
        return true;
      case Kind::Bool:
        return a.boolean == b.boolean;
      case Kind::Number:
        // Bitwise: NaN never appears (the parser rejects it) and
        // -0.0 must survive the round trip as -0.0.
        return std::memcmp(&a.number, &b.number, sizeof(double)) == 0;
      case Kind::String:
        return a.string == b.string;
      case Kind::Array:
        if (a.elements.size() != b.elements.size())
            return false;
        for (size_t i = 0; i < a.elements.size(); ++i)
            if (!valuesEqual(a.elements[i], b.elements[i]))
                return false;
        return true;
      case Kind::Object:
        if (a.members.size() != b.members.size())
            return false;
        for (size_t i = 0; i < a.members.size(); ++i) {
            if (a.members[i].first != b.members[i].first ||
                !valuesEqual(a.members[i].second,
                             b.members[i].second))
                return false;
        }
        return true;
    }
    return false;
}

/** Validate UTF-8 (RFC 3629: no surrogates, no overlongs, <= U+10FFFF). */
bool
utf8Valid(const std::string &text)
{
    const auto *p = reinterpret_cast<const unsigned char *>(
        text.data());
    const size_t n = text.size();
    size_t i = 0;
    while (i < n) {
        const unsigned char c = p[i];
        if (c < 0x80) {
            ++i;
            continue;
        }
        unsigned len;
        uint32_t cp;
        if ((c & 0xe0) == 0xc0) {
            len = 2;
            cp = c & 0x1f;
        } else if ((c & 0xf0) == 0xe0) {
            len = 3;
            cp = c & 0x0f;
        } else if ((c & 0xf8) == 0xf0) {
            len = 4;
            cp = c & 0x07;
        } else {
            return false;
        }
        if (i + len > n)
            return false;
        for (unsigned j = 1; j < len; ++j) {
            if ((p[i + j] & 0xc0) != 0x80)
                return false;
            cp = (cp << 6) | (p[i + j] & 0x3f);
        }
        if (len == 2 && cp < 0x80)
            return false;
        if (len == 3 && cp < 0x800)
            return false;
        if (len == 4 && cp < 0x10000)
            return false;
        if (cp > 0x10ffff || (cp >= 0xd800 && cp <= 0xdfff))
            return false;
        i += len;
    }
    return true;
}

void
forEachString(const exp::JsonValue &v,
              const std::function<void(const std::string &)> &fn)
{
    if (v.isString())
        fn(v.string);
    for (const exp::JsonValue &e : v.elements)
        forEachString(e, fn);
    for (const auto &[key, val] : v.members) {
        fn(key);
        forEachString(val, fn);
    }
}

Problems
checkJson(const JsonSample &s)
{
    Problems problems;
    const std::optional<exp::JsonValue> v1 = exp::parseJson(s.text);
    if (!v1)
        return problems; // vacuous: unparseable input

    std::string t2;
    writeCompact(*v1, t2);
    std::string error;
    const std::optional<exp::JsonValue> v2 =
        exp::parseJson(t2, &error);
    if (!v2) {
        problems.push_back(
            strf("json: writer output does not reparse (%s)",
                 error.c_str()));
        return problems;
    }
    if (!valuesEqual(*v1, *v2))
        problems.push_back(
            "json: value changed across a write/parse round trip");
    std::string t3;
    writeCompact(*v2, t3);
    if (t3 != t2)
        problems.push_back(
            "json: serialize(parse(serialize(v))) is not a fixpoint");

    // A JSON document that is pure ASCII can only denote Unicode
    // strings (via \u escapes), so every decoded string must be
    // valid UTF-8. Surrogate pairs decoded one-half-at-a-time
    // (CESU-8) violate this.
    const bool ascii = std::all_of(
        s.text.begin(), s.text.end(),
        [](char c) { return static_cast<unsigned char>(c) < 0x80; });
    if (ascii) {
        forEachString(*v1, [&](const std::string &str) {
            if (!utf8Valid(str) && problems.size() < 4) {
                problems.push_back(
                    "json: pure-ASCII document decoded to an "
                    "invalid-UTF-8 string (surrogate pair not "
                    "combined?)");
            }
        });
    }
    return problems;
}

// ---------------------------------------------------------------------
// num

/**
 * The documented strict grammar (docs/TOOLS.md): `[0-9]+` or
 * `0[xX][0-9a-fA-F]+`, nothing else — no sign, no whitespace, no
 * octal reinterpretation ("010" is decimal ten), value <= max.
 */
bool
strictReference(const std::string &text, uint64_t max, uint64_t &out)
{
    size_t i = 0;
    unsigned base = 10;
    if (text.size() >= 2 && text[0] == '0' &&
        (text[1] == 'x' || text[1] == 'X')) {
        base = 16;
        i = 2;
    }
    if (i >= text.size())
        return false;
    uint64_t value = 0;
    for (; i < text.size(); ++i) {
        const char c = text[i];
        unsigned digit;
        if (c >= '0' && c <= '9')
            digit = static_cast<unsigned>(c - '0');
        else if (base == 16 && c >= 'a' && c <= 'f')
            digit = static_cast<unsigned>(c - 'a') + 10;
        else if (base == 16 && c >= 'A' && c <= 'F')
            digit = static_cast<unsigned>(c - 'A') + 10;
        else
            return false;
        if (value > (~0ull - digit) / base)
            return false; // overflow
        value = value * base + digit;
    }
    if (value > max)
        return false;
    out = value;
    return true;
}

Problems
checkNum(const NumSample &s)
{
    Problems problems;
    uint64_t got = 0;
    const bool accepted =
        rr::parseUnsigned(s.text.c_str(), got, s.max);
    uint64_t want = 0;
    const bool grammar = strictReference(s.text, s.max, want);

    if (accepted && !grammar) {
        problems.push_back(strf(
            "num: parseUnsigned accepted \"%s\" (=%llu) which is "
            "outside the documented strict grammar",
            s.text.c_str(), static_cast<unsigned long long>(got)));
    } else if (!accepted && grammar) {
        problems.push_back(strf(
            "num: parseUnsigned rejected \"%s\" which the "
            "documented grammar accepts as %llu",
            s.text.c_str(), static_cast<unsigned long long>(want)));
    } else if (accepted && got != want) {
        problems.push_back(strf(
            "num: parseUnsigned(\"%s\") = %llu but the documented "
            "grammar reads it as %llu",
            s.text.c_str(), static_cast<unsigned long long>(got),
            static_cast<unsigned long long>(want)));
    }
    return problems;
}

// ---------------------------------------------------------------------
// phase

Problems
checkPhase(const PhaseSample &s)
{
    Problems problems;
    const auto makeModel = [&](uint64_t phase1_latency) {
        std::vector<mt::PhasedFaultModel::Phase> phases;
        phases.push_back({s.phase0Faults, s.meanRun,
                          static_cast<double>(s.latency0), false,
                          mt::FaultClass::Cache});
        phases.push_back({1ull << 60, s.meanRun,
                          static_cast<double>(phase1_latency), false,
                          mt::FaultClass::Cache});
        return std::make_shared<mt::PhasedFaultModel>(
            std::move(phases));
    };

    ext::ContextCacheConfig config;
    config.numThreads = s.threads;
    config.workDist = makeConstant(s.workPerThread);
    config.regsDist = makeConstant(12);
    config.numRegs = s.numRegs;
    config.seed = s.seed;

    config.faultModel = makeModel(s.latency1);
    const ext::ContextCacheStats slow = simulateContextCache(config);
    config.faultModel = makeModel(s.latency0);
    const ext::ContextCacheStats fast = simulateContextCache(config);

    // Identical phase-0 behaviour and identical rng consumption
    // (constant latencies draw nothing), so the useful work must
    // match...
    if (slow.usefulCycles != fast.usefulCycles) {
        problems.push_back(strf(
            "phase: useful cycles diverged (%llu vs %llu) though "
            "only the phase-1 latency differs",
            static_cast<unsigned long long>(slow.usefulCycles),
            static_cast<unsigned long long>(fast.usefulCycles)));
    }
    // ... while the 100x phase-1 latency must show up in the clock.
    // If it does not, fault draws ignore the per-thread sequence
    // index and threads are pinned to phase 0.
    if (slow.totalCycles == fast.totalCycles) {
        problems.push_back(strf(
            "phase: total cycles identical (%llu) with phase-1 "
            "latency %llu vs %llu — sequence-indexed fault draws "
            "are not reaching phase 1",
            static_cast<unsigned long long>(slow.totalCycles),
            static_cast<unsigned long long>(s.latency1),
            static_cast<unsigned long long>(s.latency0)));
    }
    return problems;
}

// ---------------------------------------------------------------------
// program

struct CpuRun
{
    struct Rec
    {
        uint64_t cycle;
        uint32_t pc;
        uint32_t word;
        uint32_t rrm;

        bool operator==(const Rec &other) const = default;
    };

    std::vector<Rec> trace;
    std::vector<uint32_t> regs;
    std::vector<uint32_t> mem;
    uint32_t pc = 0;
    uint32_t psw = 0;
    bool halted = false;
    machine::TrapKind trap = machine::TrapKind::None;
    uint64_t cycles = 0;
    uint64_t instret = 0;
    uint64_t faults = 0;
    machine::PipelineTimingStats timing;
    bool predecodeActive = false;
    bool dispatchActive = false;
};

machine::CpuConfig
cpuConfigOf(const ProgramSample &s, bool predecode,
            machine::DispatchMode dispatch)
{
    machine::CpuConfig config;
    config.numRegs = s.numRegs;
    config.operandWidth = s.operandWidth;
    config.ldrrmDelaySlots = s.delaySlots;
    config.memWords = s.memWords;
    config.relocationMode =
        static_cast<machine::RelocationMode>(s.mode);
    config.rrmBanks = s.banks;
    config.timing.takenBranchPenalty = s.takenBranchPenalty;
    config.timing.loadUsePenalty = s.loadUsePenalty;
    config.timing.ldrrmPenalty = s.ldrrmPenalty;
    config.predecode = predecode;
    config.dispatch = dispatch;
    return config;
}

CpuRun
runProgram(const ProgramSample &s, bool predecode,
           machine::DispatchMode dispatch, Problems *reloc_problems)
{
    machine::Cpu cpu(cpuConfigOf(s, predecode, dispatch));
    for (size_t i = 0; i < s.words.size(); ++i)
        cpu.mem().write(static_cast<uint32_t>(i), s.words[i]);

    CpuRun run;
    cpu.setTraceHook([&](const machine::TraceEntry &entry) {
        run.trace.push_back({entry.cycle, entry.pc,
                             isa::encode(entry.inst), entry.rrm});
        if (reloc_problems && reloc_problems->size() < 4) {
            // Oracle 2, exercised mid-execution at every mask state
            // the program reaches: the memoized table and the
            // uncached reference must agree on every operand.
            const machine::RelocationUnit &unit = cpu.relocation();
            const machine::RelocationResult *table = unit.table();
            for (unsigned op = 0; op < unit.tableSize(); ++op) {
                const machine::RelocationResult ref =
                    unit.relocate(op);
                if (table[op].physical != ref.physical ||
                    table[op].ok != ref.ok) {
                    reloc_problems->push_back(strf(
                        "program: at pc=%u (cycle %llu) table() and "
                        "relocate() disagree on operand %u",
                        entry.pc,
                        static_cast<unsigned long long>(entry.cycle),
                        op));
                    break;
                }
            }
        }
    });
    cpu.run(s.maxSteps);

    const uint32_t *regs = cpu.regs().data();
    run.regs.assign(regs, regs + s.numRegs);
    const uint32_t *mem = cpu.mem().data();
    run.mem.assign(mem, mem + s.memWords);
    run.pc = cpu.pc();
    run.psw = cpu.psw();
    run.halted = cpu.halted();
    run.trap = cpu.trap();
    run.cycles = cpu.cycles();
    run.instret = cpu.instructionsRetired();
    run.faults = cpu.faultCount();
    run.timing = cpu.timingStats();
    run.predecodeActive = cpu.predecodeActive();
    run.dispatchActive = cpu.dispatchActive();
    return run;
}

void
compareRuns(const CpuRun &off, const CpuRun &on, const char *mode,
            Problems &problems)
{
    const auto diff = [&](const char *what, uint64_t a, uint64_t b) {
        if (a != b)
            problems.push_back(strf(
                "program: %s differs with predecode off vs %s "
                "dispatch: %llu vs %llu",
                what, mode, static_cast<unsigned long long>(a),
                static_cast<unsigned long long>(b)));
    };
    diff("final pc", off.pc, on.pc);
    diff("final psw", off.psw, on.psw);
    diff("halted", off.halted, on.halted);
    diff("trap kind", static_cast<uint64_t>(off.trap),
         static_cast<uint64_t>(on.trap));
    diff("cycle count", off.cycles, on.cycles);
    diff("instructions retired", off.instret, on.instret);
    diff("fault count", off.faults, on.faults);
    diff("branch stalls", off.timing.branchStalls,
         on.timing.branchStalls);
    diff("load-use stalls", off.timing.loadUseStalls,
         on.timing.loadUseStalls);
    diff("ldrrm stalls", off.timing.ldrrmStalls,
         on.timing.ldrrmStalls);
    if (off.regs != on.regs)
        problems.push_back(strf(
            "program: final register file differs with predecode "
            "off vs %s dispatch",
            mode));
    if (off.mem != on.mem)
        problems.push_back(strf(
            "program: final memory differs with predecode off vs "
            "%s dispatch",
            mode));
    if (off.trace.size() != on.trace.size()) {
        problems.push_back(strf(
            "program: trace length differs with predecode off vs "
            "%s dispatch: %zu vs %zu",
            mode, off.trace.size(), on.trace.size()));
    } else {
        for (size_t i = 0; i < off.trace.size(); ++i) {
            if (off.trace[i] == on.trace[i])
                continue;
            problems.push_back(strf(
                "program: trace diverges under %s dispatch at "
                "instruction %zu (pc %u vs %u, cycle %llu vs %llu)",
                mode, i, off.trace[i].pc, on.trace[i].pc,
                static_cast<unsigned long long>(off.trace[i].cycle),
                static_cast<unsigned long long>(on.trace[i].cycle)));
            break;
        }
    }
}

void
checkLintClaims(const ProgramSample &s, const CpuRun &run,
                Problems &problems)
{
    assembler::Program program;
    program.base = 0;
    program.words = s.words;
    program.lines.assign(s.words.size(), 0);

    lint::Cfg cfg(program);
    lint::RrmOptions options;
    options.delaySlots = s.delaySlots;
    options.initialRrm = 0;
    options.mode = lint::RelocMode::Or;
    options.banks = 1;
    options.operandWidth = s.operandWidth;
    const lint::RrmAnalysis rrm(cfg, options);

    lint::LintOptions lintOptions;
    lintOptions.delaySlots = s.delaySlots;
    lintOptions.mode = lint::RelocMode::Or;
    lintOptions.banks = 1;
    lintOptions.operandWidth = s.operandWidth;
    const lint::LintResult lintResult =
        lint::lintProgram(program, lintOptions);

    // Union the per-window claims by window mask: multiple LDRRM
    // sites can open the same window.
    std::map<uint32_t, uint64_t> footprintByWindow;
    for (const lint::ThreadReport &report : lintResult.threads)
        footprintByWindow[report.rrm] |= report.footprint;

    for (const CpuRun::Rec &rec : run.trace) {
        if (problems.size() >= 4)
            return;
        const lint::AbsVal &before = rrm.rrmBefore(rec.pc);
        if (before.kind == lint::AbsVal::Bottom) {
            problems.push_back(strf(
                "program/lint: pc %u executed at runtime but the "
                "lint CFG claims it unreachable",
                rec.pc));
            continue;
        }
        if (!before.isConst())
            continue; // Top: lint makes no claim here
        if (before.value != rec.rrm) {
            problems.push_back(strf(
                "program/lint: pc %u — lint derives RRM=0x%x but "
                "the machine decoded under RRM=0x%x",
                rec.pc, before.value, rec.rrm));
            continue;
        }
        isa::Instruction inst;
        if (!isa::decode(rec.word, inst))
            continue;
        const lint::UseDef ud = lint::useDef(inst);
        const uint64_t touched = ud.uses | ud.defs;
        const auto it = footprintByWindow.find(rec.rrm);
        const uint64_t claimed =
            it == footprintByWindow.end() ? 0 : it->second;
        if (touched & ~claimed) {
            problems.push_back(strf(
                "program/lint: pc %u under window 0x%x touches "
                "registers 0x%llx outside the lint footprint "
                "0x%llx",
                rec.pc, rec.rrm,
                static_cast<unsigned long long>(touched),
                static_cast<unsigned long long>(claimed)));
        }
    }
}

Problems
checkProgram(const ProgramSample &s)
{
    Problems problems;
    // The identity oracle is a full dispatch-mode matrix: the
    // undecoded reference run against every predecoded dispatch
    // strategy. Switch, threaded, and fused dispatch must all retire
    // the same instruction stream with the same architectural state,
    // counters, and cycle-stamped trace.
    const CpuRun off =
        runProgram(s, false, machine::DispatchMode::Switch, nullptr);
    static constexpr struct
    {
        machine::DispatchMode dispatch;
        const char *name;
        bool wantDispatchActive;
    } kLegs[] = {
        {machine::DispatchMode::Switch, "switch", false},
        {machine::DispatchMode::Threaded, "threaded", true},
        {machine::DispatchMode::Fused, "fused", true},
    };
    for (const auto &leg : kLegs) {
        // Oracle 2 (table-vs-relocate) only needs one predecoded leg.
        Problems *reloc =
            leg.dispatch == machine::DispatchMode::Fused ? &problems
                                                         : nullptr;
        const CpuRun on = runProgram(s, true, leg.dispatch, reloc);
        if (!on.predecodeActive)
            problems.push_back(strf(
                "program: predecode did not engage for the %s leg",
                leg.name));
        if (on.dispatchActive != leg.wantDispatchActive)
            problems.push_back(strf(
                "program: superblock dispatch %s for the %s leg",
                on.dispatchActive ? "engaged" : "did not engage",
                leg.name));
        compareRuns(off, on, leg.name, problems);
        if (!problems.empty())
            break;
    }
    if (s.lintChecked && problems.empty())
        checkLintClaims(s, off, problems);
    return problems;
}

// ---------------------------------------------------------------------
// mt

mt::SimulationSpec
specOf(const MtSample &s)
{
    mt::SimulationSpec spec;
    spec.threads(s.threads)
        .registerDemand(s.regsLo, s.regsHi)
        .arch(static_cast<mt::ArchKind>(s.arch))
        .numRegs(s.numRegs)
        .operandWidth(s.operandWidth)
        .minContextSize(s.minContextSize)
        .fixedContextRegs(s.fixedContextRegs)
        .seed(s.seed);
    switch (s.family) {
      case 0:
        spec.cacheFaults(s.param0,
                         static_cast<uint64_t>(s.param1));
        break;
      case 1:
        spec.syncFaults(s.param0, s.param1);
        break;
      case 2:
        spec.combinedFaults(s.param0,
                            static_cast<uint64_t>(s.param1),
                            s.param2, s.param3);
        break;
      case 3:
        spec.deterministicFaults(
            static_cast<uint64_t>(s.param0),
            static_cast<uint64_t>(s.param1));
        break;
      default: {
        std::vector<mt::PhasedFaultModel::Phase> phases;
        phases.push_back({s.phase0Faults, s.param0, s.param1, false,
                          mt::FaultClass::Cache});
        phases.push_back({s.phase1Faults, s.param2, s.param3, true,
                          mt::FaultClass::Synchronization});
        auto model = std::make_shared<mt::PhasedFaultModel>(
            std::move(phases));
        const double mean = model->meanRunLength();
        spec.faultModel(std::move(model), mean);
        break;
      }
    }
    if (s.work > 0)
        spec.workPerThread(s.work);
    if (s.unload == 0)
        spec.neverUnload();
    else
        spec.twoPhaseUnload();
    if (s.residencyCap > 0)
        spec.residencyCap(s.residencyCap);
    if (s.priorityLevels > 1)
        spec.priorities(s.priorityLevels,
                        makeUniformInt(0, s.priorityLevels - 1));
    return spec;
}

void
compareStats(const mt::MtStats &a, const mt::MtStats &b,
             Problems &problems)
{
    const auto diff = [&](const char *what, uint64_t x, uint64_t y) {
        if (x != y)
            problems.push_back(strf(
                "mt: re-run changed %s: %llu vs %llu (simulation "
                "is not deterministic)",
                what, static_cast<unsigned long long>(x),
                static_cast<unsigned long long>(y)));
    };
    diff("totalCycles", a.totalCycles, b.totalCycles);
    diff("usefulCycles", a.usefulCycles, b.usefulCycles);
    diff("idleCycles", a.idleCycles, b.idleCycles);
    diff("switchCycles", a.switchCycles, b.switchCycles);
    diff("allocCycles", a.allocCycles, b.allocCycles);
    diff("deallocCycles", a.deallocCycles, b.deallocCycles);
    diff("loadCycles", a.loadCycles, b.loadCycles);
    diff("unloadCycles", a.unloadCycles, b.unloadCycles);
    diff("queueCycles", a.queueCycles, b.queueCycles);
    diff("faults", a.faults, b.faults);
    diff("loads", a.loads, b.loads);
    diff("unloads", a.unloads, b.unloads);
    diff("allocSuccesses", a.allocSuccesses, b.allocSuccesses);
    diff("allocFailures", a.allocFailures, b.allocFailures);
    diff("threadsFinished", a.threadsFinished, b.threadsFinished);
    if (std::memcmp(&a.efficiencyCentral, &b.efficiencyCentral,
                    sizeof(double)) != 0 ||
        std::memcmp(&a.efficiencyTotal, &b.efficiencyTotal,
                    sizeof(double)) != 0)
        problems.push_back("mt: re-run changed an efficiency value");
}

Problems
checkMt(const MtSample &s)
{
    Problems problems;
    mt::MtConfig config;
    try {
        config = specOf(s).build();
    } catch (const mt::SpecError &) {
        return problems; // vacuous: generator hit a validation edge
    }

    trace::TraceAuditor auditor(config.costs);
    config.traceSink = &auditor;
    const mt::MtStats stats = mt::simulate(config);

    for (const std::string &p :
         auditor.reconcile(mt::auditTotals(stats)))
        if (problems.size() < 6)
            problems.push_back("mt/audit: " + p);

    if (stats.accountedCycles() != stats.totalCycles) {
        problems.push_back(strf(
            "mt: cycle buckets sum to %llu but totalCycles is %llu",
            static_cast<unsigned long long>(stats.accountedCycles()),
            static_cast<unsigned long long>(stats.totalCycles)));
    }
    if (stats.threadsFinished != s.threads) {
        problems.push_back(strf(
            "mt: only %u of %u threads finished",
            stats.threadsFinished, s.threads));
    }
    const auto inUnit = [](double v) {
        return v >= 0.0 && v <= 1.0 + 1e-9;
    };
    if (!inUnit(stats.efficiencyCentral) ||
        !inUnit(stats.efficiencyTotal)) {
        problems.push_back(strf(
            "mt: efficiency out of [0,1]: central=%f total=%f",
            stats.efficiencyCentral, stats.efficiencyTotal));
    }

    // Determinism: an identical rebuild must reproduce every
    // statistic bit for bit (no sink the second time — tracing must
    // not perturb results either).
    const mt::MtStats again = mt::simulate(specOf(s).build());
    compareStats(stats, again, problems);
    return problems;
}

// ---------------------------------------------------------------------
// ckpt

bool
sameTraceEvent(const trace::TraceEvent &a, const trace::TraceEvent &b)
{
    return a.kind == b.kind && a.arch == b.arch && a.ok == b.ok &&
           a.tid == b.tid && a.ctx == b.ctx && a.regs == b.regs &&
           a.cycle == b.cycle && a.cycles == b.cycles &&
           a.aux == b.aux;
}

Problems
checkCkpt(const CkptSample &s)
{
    Problems problems;
    mt::MtConfig straightConfig;
    try {
        straightConfig = specOf(s.spec).build();
    } catch (const mt::SpecError &) {
        return problems; // vacuous: generator hit a validation edge
    }

    // The uninterrupted reference run.
    trace::VectorSink straightSink;
    straightConfig.traceSink = &straightSink;
    mt::MtProcessor straight(straightConfig);
    const mt::MtStats straightStats = straight.run();

    // Head: step to the boundary and snapshot. splitEvents past the
    // end means the head finishes first — a legal snapshot point.
    mt::MtConfig headConfig = specOf(s.spec).build();
    trace::VectorSink headSink;
    headConfig.traceSink = &headSink;
    mt::MtProcessor head(headConfig);
    head.begin();
    while (!head.done() && head.eventIndex() < s.splitEvents)
        head.step();
    const std::vector<uint8_t> doc = head.snapshot();

    // Tail: a fresh processor restored from the document.
    mt::MtConfig tailConfig = specOf(s.spec).build();
    trace::VectorSink tailSink;
    tailConfig.traceSink = &tailSink;
    mt::MtProcessor tail(tailConfig);
    try {
        tail.restore(doc);
    } catch (const ckpt::Error &error) {
        problems.push_back(
            std::string("ckpt: restore rejected its own snapshot: ") +
            error.what());
        return problems;
    }

    // A snapshot re-taken right after restore must be byte-identical
    // (snapshot . restore is a fixpoint).
    if (tail.snapshot() != doc)
        problems.push_back(
            "ckpt: snapshot is not byte-stable across restore");

    const mt::MtStats tailStats = tail.run();
    Problems statDiffs;
    compareStats(straightStats, tailStats, statDiffs);
    for (const std::string &p : statDiffs)
        if (problems.size() < 6)
            problems.push_back("ckpt: restored leg diverged: " + p);

    // The head and tail traces concatenate to the straight trace.
    const std::vector<trace::TraceEvent> &se = straightSink.events();
    const std::vector<trace::TraceEvent> &he = headSink.events();
    const std::vector<trace::TraceEvent> &te = tailSink.events();
    if (se.size() != he.size() + te.size()) {
        problems.push_back(strf(
            "ckpt: straight run emitted %zu events but head %zu + "
            "tail %zu",
            se.size(), he.size(), te.size()));
    } else {
        for (std::size_t i = 0; i < se.size(); ++i) {
            const trace::TraceEvent &b =
                i < he.size() ? he[i] : te[i - he.size()];
            if (!sameTraceEvent(se[i], b)) {
                problems.push_back(strf(
                    "ckpt: trace diverges at event %zu (%s the "
                    "snapshot)",
                    i, i < he.size() ? "before" : "after"));
                break;
            }
        }
    }

    // Hostile copy: one flipped bit anywhere must be rejected with
    // ckpt::Error (magic or checksum), never an abort.
    std::vector<uint8_t> bad = doc;
    bad[static_cast<std::size_t>(s.corruptPos % bad.size())] ^=
        static_cast<uint8_t>(1u << (s.corruptBit & 7));
    bool rejected = false;
    try {
        mt::MtProcessor victim(specOf(s.spec).build());
        victim.restore(bad);
    } catch (const ckpt::Error &) {
        rejected = true;
    }
    if (!rejected)
        problems.push_back(strf(
            "ckpt: corrupted document (byte %llu bit %u) was accepted",
            static_cast<unsigned long long>(s.corruptPos % bad.size()),
            static_cast<unsigned>(s.corruptBit & 7)));
    return problems;
}

// ---------------------------------------------------------------------
// xsim

/** Cycles deterministically through a fixed script of values. */
class ScriptedDist : public Distribution
{
  public:
    explicit ScriptedDist(std::vector<uint64_t> values)
        : values_(std::move(values))
    {
    }

    uint64_t
    sample(Rng &) const override
    {
        const uint64_t v = values_[next_ % values_.size()];
        ++next_;
        return v;
    }

    double
    mean() const override
    {
        double sum = 0;
        for (const uint64_t v : values_)
            sum += static_cast<double>(v);
        return sum / static_cast<double>(values_.size());
    }

    std::string describe() const override { return "scripted"; }

  private:
    std::vector<uint64_t> values_;
    mutable uint64_t next_ = 0;
};

/** The same schedule as a sequence-indexed fault model. */
class ScriptedFaultModel : public mt::FaultModel
{
  public:
    ScriptedFaultModel(std::vector<uint64_t> units, uint64_t latency)
        : units_(std::move(units)), latency_(latency)
    {
    }

    mt::FaultSample
    next(Rng &rng, uint64_t sequence) const override
    {
        (void)rng;
        return {2 * units_[sequence % units_.size()], latency_,
                mt::FaultClass::Cache};
    }

    double
    meanRunLength() const override
    {
        double sum = 0;
        for (const uint64_t u : units_)
            sum += static_cast<double>(2 * u);
        return sum / static_cast<double>(units_.size());
    }

    double
    meanLatency() const override
    {
        return static_cast<double>(latency_);
    }

    std::string describe() const override { return "scripted"; }

  private:
    std::vector<uint64_t> units_;
    uint64_t latency_;
};

Problems
checkXsim(const XsimSample &s)
{
    Problems problems;

    // --- machine side: real Figure 3 code, scripted segments ------
    // Threads consume segment draws in creation order (tid-major),
    // so a script cycled with period segmentsPerThread hands every
    // thread the same per-segment schedule.
    std::vector<uint64_t> perThread(s.segments);
    for (unsigned i = 0; i < s.segments; ++i)
        perThread[i] = s.script[i % s.script.size()];

    kernel::KernelConfig kconfig;
    kconfig.numThreads = s.threads;
    kconfig.regsUsed = s.regsUsed;
    kconfig.segmentUnits = std::make_shared<ScriptedDist>(perThread);
    kconfig.latency = makeConstant(s.latency);
    kconfig.segmentsPerThread = s.segments;
    kconfig.seed = s.seed;
    const kernel::KernelResult machine =
        kernel::runMachineKernel(kconfig);
    if (!machine.halted) {
        problems.push_back("xsim: machine kernel did not halt");
        return problems;
    }

    // Exact machine-side accounting: every scheduled unit ran, and
    // every segment raised exactly one fault.
    uint64_t unitsPerThread = 0;
    for (const uint64_t units : perThread)
        unitsPerThread += units;
    const uint64_t expectUnits =
        static_cast<uint64_t>(s.threads) * unitsPerThread;
    if (machine.workUnits != expectUnits)
        problems.push_back(strf(
            "xsim: machine executed %llu work units, schedule has "
            "%llu",
            static_cast<unsigned long long>(machine.workUnits),
            static_cast<unsigned long long>(expectUnits)));
    const uint64_t expectFaults =
        static_cast<uint64_t>(s.threads) * s.segments;
    if (machine.faults != expectFaults)
        problems.push_back(strf(
            "xsim: machine raised %llu faults, expected one per "
            "segment = %llu",
            static_cast<unsigned long long>(machine.faults),
            static_cast<unsigned long long>(expectFaults)));

    // --- event side: same schedule, matched Figure 4 charges ------
    const uint64_t work = 2 * unitsPerThread;

    mt::MtConfig sim;
    sim.workload = mt::homogeneousWorkload(s.threads, work, 12);
    sim.faultModel = std::make_shared<ScriptedFaultModel>(
        perThread, s.latency);
    sim.costs = runtime::CostModel::paperFixed(11);
    sim.costs.queueOp = 0;
    sim.costs.blockOverhead = 0;
    sim.numRegs = 128;
    sim.unloadPolicy = mt::UnloadPolicyKind::Never;
    sim.seed = s.seed;

    trace::TraceAuditor auditor(sim.costs);
    sim.traceSink = &auditor;
    const mt::MtStats event = mt::simulate(std::move(sim));

    for (const std::string &p :
         auditor.reconcile(mt::auditTotals(event)))
        if (problems.size() < 6)
            problems.push_back("xsim/audit: " + p);

    if (event.usefulCycles !=
        static_cast<uint64_t>(s.threads) * work)
        problems.push_back(strf(
            "xsim: event model ran %llu useful cycles, workload has "
            "%llu",
            static_cast<unsigned long long>(event.usefulCycles),
            static_cast<unsigned long long>(
                static_cast<uint64_t>(s.threads) * work)));
    if (event.threadsFinished != s.threads)
        problems.push_back(strf(
            "xsim: event model finished %u of %u threads",
            event.threadsFinished, s.threads));

    if (event.efficiencyTotal <= 0.0) {
        problems.push_back(strf(
            "xsim: event model efficiency is %f",
            event.efficiencyTotal));
        return problems;
    }
    // Whole-run efficiency, not the central window: with a matched
    // deterministic schedule the totals line up by construction,
    // while the 20-80% window clips whole run/stall bursts and the
    // machine's poll-granularity drift shifts its bursts relative to
    // the event model's — with few, uneven bursts the two windows
    // can clip different ones and the rates diverge arbitrarily.
    // The slack absorbs what the machine genuinely pays on top of
    // the matched charges (kernel preamble, fault completions
    // rounded up to the resume-poll period) which shrinks as the
    // run grows.
    const double slack = s.tolerance + 1.5 / s.segments;
    const double ratio =
        machine.efficiencyTotal / event.efficiencyTotal;
    if (ratio < 1.0 - slack || ratio > 1.0 + slack) {
        problems.push_back(strf(
            "xsim: machine/event efficiency ratio %.4f outside "
            "±%.0f%% (machine=%.4f event=%.4f, N=%u segments=%u "
            "latency=%llu)",
            ratio, slack * 100.0, machine.efficiencyTotal,
            event.efficiencyTotal, s.threads, s.segments,
            static_cast<unsigned long long>(s.latency)));
    }
    return problems;
}

// ---------------------------------------------------------------------
// callgraph

/** Forest depth of every procedure (tree roots at depth 1). */
std::vector<unsigned>
cgDepths(const CallgraphSample &s)
{
    std::vector<unsigned> depth(s.procs.size(), 1);
    for (size_t p = 0; p < s.procs.size(); ++p) {
        for (const uint32_t child : s.procs[p].calls)
            depth[child] = depth[p] + 1;
    }
    return depth;
}

/** One ground-truth shared-cell access site. */
struct CgSite
{
    uint32_t proc = 0; ///< sample procedure index
    uint32_t mem = 0;  ///< effective word address (kCgCellBase + cell)
    bool write = false;
    uint32_t held = 0; ///< lockset bitmask along the unique call path
};

/** What the construction itself implies the analyses must report. */
struct CgTruth
{
    std::vector<std::vector<CgSite>> byRoot; ///< per sample root
    std::set<uint32_t> racyMems;             ///< expected race words
};

CgTruth
truthOf(const CallgraphSample &s)
{
    // Mirror the analysis' per-root must-hold dataflow, including its
    // one deliberate imprecision: the lock procedures are shared, so
    // their entry state is the meet (intersection) over every call
    // site reached from the root, and the acquire/release return
    // edges carry *that* meet back to each caller — not the caller's
    // own lockset. Within a root every regular procedure still has a
    // unique call site (the sample graph is a forest and a root's
    // calls are distinct), so only the lock procedures merge context.
    constexpr uint32_t top = ~uint32_t{0};
    CgTruth truth;
    truth.byRoot.resize(s.roots.size());
    for (size_t r = 0; r < s.roots.size(); ++r) {
        // A[l] / R[l]: converged entry state of lk{l}_acq / lk{l}_rel.
        std::vector<uint32_t> acq_in(s.numLocks, top);
        std::vector<uint32_t> rel_in(s.numLocks, top);
        const auto meet = [](uint32_t a, uint32_t b) {
            return a == top ? b : (b == top ? a : (a & b));
        };

        // One descending Kleene pass: walk the root's call sequence
        // (a later tree starts in the previous tree's exit state),
        // recording each procedure's body lockset and gathering the
        // lock procedures' next entry states; repeat to fixpoint.
        std::vector<uint32_t> next_acq, next_rel;
        const std::function<uint32_t(uint32_t, uint32_t)> walk =
            [&](uint32_t p, uint32_t entry) -> uint32_t {
            const CgProc &proc = s.procs[p];
            uint32_t body = entry;
            if (proc.lock >= 0) {
                next_acq[proc.lock] =
                    meet(next_acq[proc.lock], entry);
                body = acq_in[proc.lock] == top
                           ? top
                           : acq_in[proc.lock] |
                                 (uint32_t{1} << proc.lock);
            }
            if (proc.cell >= 0) {
                truth.byRoot[r].push_back(
                    {p, kCgCellBase + static_cast<uint32_t>(proc.cell),
                     proc.write, body});
            }
            uint32_t cur = body;
            for (const uint32_t child : proc.calls)
                cur = walk(child, cur);
            if (proc.lock >= 0) {
                next_rel[proc.lock] = meet(next_rel[proc.lock], cur);
                return rel_in[proc.lock] == top
                           ? top
                           : rel_in[proc.lock] &
                                 ~(uint32_t{1} << proc.lock);
            }
            return cur;
        };
        for (unsigned iter = 0; iter < 64; ++iter) {
            truth.byRoot[r].clear();
            next_acq.assign(s.numLocks, top);
            next_rel.assign(s.numLocks, top);
            uint32_t cur = 0;
            for (const uint32_t p : s.roots[r].calls)
                cur = walk(p, cur);
            if (next_acq == acq_in && next_rel == rel_in)
                break;
            acq_in = next_acq;
            rel_in = next_rel;
        }
    }

    // Mirror LocksetAnalysis::findRaces: a word races when any two
    // accesses from different roots conflict (>= 1 write, disjoint
    // locksets).
    for (size_t r1 = 0; r1 < truth.byRoot.size(); ++r1) {
        for (size_t r2 = r1 + 1; r2 < truth.byRoot.size(); ++r2) {
            for (const CgSite &a : truth.byRoot[r1]) {
                for (const CgSite &b : truth.byRoot[r2]) {
                    if (a.mem == b.mem && (a.write || b.write) &&
                        (a.held & b.held) == 0)
                        truth.racyMems.insert(a.mem);
                }
            }
        }
    }
    return truth;
}

/** Parse a generated procedure label ("p7" -> 7). */
bool
cgProcIndex(const std::string &name, uint32_t &out)
{
    if (name.size() < 2 || name[0] != 'p')
        return false;
    uint64_t v = 0;
    if (!parseUnsigned(name.c_str() + 1, v))
        return false;
    out = static_cast<uint32_t>(v);
    return true;
}

Problems
checkCallgraph(const CallgraphSample &s)
{
    Problems problems;
    const std::string source = callgraphSource(s);
    const assembler::Program program = assembler::assemble(source);
    if (!program.ok()) {
        problems.push_back(strf(
            "callgraph: generated source does not assemble: %s",
            program.errors.front().str().c_str()));
        return problems;
    }

    lint::Cfg cfg(program);
    const lint::CallGraph graph(cfg);
    // The callgraph-aware dataflow propagates constants across call
    // return edges; without it no address inside a procedure folds.
    const lint::RrmAnalysis rrm(cfg, {}, &graph);
    const lint::LocksetAnalysis lockset(cfg, graph, rrm);
    const CgTruth truth = truthOf(s);

    // Thread roots and lock names must match the construction.
    std::map<std::string, uint32_t> root_by_name;
    for (uint32_t ri = 0; ri < lockset.roots().size(); ++ri)
        root_by_name[lockset.roots()[ri].name] = ri;
    if (lockset.roots().size() != s.roots.size()) {
        problems.push_back(strf(
            "callgraph: %zu thread roots constructed but the "
            "analysis found %zu",
            s.roots.size(), lockset.roots().size()));
        return problems;
    }
    std::vector<uint32_t> ls_root(s.roots.size(), 0);
    for (size_t r = 0; r < s.roots.size(); ++r) {
        const std::string name =
            r == 0 ? "entry" : strf("t%zu", r);
        const auto it = root_by_name.find(name);
        if (it == root_by_name.end()) {
            problems.push_back(strf(
                "callgraph: thread root '%s' not found by the "
                "analysis", name.c_str()));
            return problems;
        }
        ls_root[r] = it->second;
    }
    for (unsigned l = 0; l < s.numLocks; ++l) {
        const std::string expect = strf("lk%u", l);
        if (l >= graph.lockNames().size() ||
            graph.lockNames()[l] != expect) {
            problems.push_back(strf(
                "callgraph: lock %u is not '%s' in lockdef order",
                l, expect.c_str()));
            return problems;
        }
    }

    // Oracle 1a: the classified shared accesses are exactly the
    // construction's, site by site, lockset included.
    std::map<std::pair<uint32_t, uint32_t>, const CgSite *> expected;
    for (size_t r = 0; r < truth.byRoot.size(); ++r) {
        for (const CgSite &site : truth.byRoot[r])
            expected[{ls_root[r], site.proc}] = &site;
    }
    std::set<std::pair<uint32_t, uint32_t>> seen;
    for (const lint::Access &access : lockset.accesses()) {
        if (problems.size() >= 4)
            return problems;
        const uint32_t owner = graph.procOfAddress(access.address);
        uint32_t proc_idx = 0;
        if (owner == lint::CallGraph::noProc ||
            !cgProcIndex(graph.procedures()[owner].name, proc_idx)) {
            problems.push_back(strf(
                "callgraph: classified access at addr %u is not "
                "inside a generated procedure", access.address));
            continue;
        }
        const auto it = expected.find({access.root, proc_idx});
        if (it == expected.end()) {
            problems.push_back(strf(
                "callgraph: access at addr %u (root %u, proc p%u) "
                "has no constructed counterpart",
                access.address, access.root, proc_idx));
            continue;
        }
        if (!seen.insert({access.root, proc_idx}).second) {
            problems.push_back(strf(
                "callgraph: proc p%u classified twice for root %u",
                proc_idx, access.root));
            continue;
        }
        const CgSite &site = *it->second;
        if (access.mem != site.mem || access.write != site.write ||
            access.held != site.held) {
            problems.push_back(strf(
                "callgraph: access at addr %u (root %u, proc p%u): "
                "analysis says mem=0x%x write=%d held=0x%x, "
                "construction says mem=0x%x write=%d held=0x%x",
                access.address, access.root, proc_idx, access.mem,
                access.write ? 1 : 0, access.held, site.mem,
                site.write ? 1 : 0, site.held));
        }
    }
    if (problems.empty() && seen.size() != expected.size()) {
        problems.push_back(strf(
            "callgraph: %zu constructed shared accesses but the "
            "analysis classified %zu",
            expected.size(), seen.size()));
    }

    // Oracle 1b: reported races are exactly the constructed ones.
    std::set<uint32_t> reported;
    for (const lint::Race &race : lockset.races())
        reported.insert(race.mem);
    if (reported != truth.racyMems) {
        std::string got, want;
        for (const uint32_t mem : reported)
            got += strf(" 0x%x", mem);
        for (const uint32_t mem : truth.racyMems)
            want += strf(" 0x%x", mem);
        problems.push_back(strf(
            "callgraph: race set mismatch: analysis reports {%s }, "
            "construction implies {%s }",
            got.c_str(), want.c_str()));
    }

    // Oracle 1c: the full lint pipeline must agree — and find
    // nothing else in this clean-by-construction program.
    lint::LintOptions lint_options;
    lint_options.interprocedural = true;
    lint_options.lockset = true;
    const lint::LintResult lint_result =
        lint::lintProgram(program, lint_options);
    for (const lint::Finding &finding : lint_result.findings) {
        if (finding.code != "race") {
            problems.push_back(strf(
                "callgraph: unexpected finding [%s] at addr %u: %s",
                finding.code.c_str(), finding.address,
                finding.message.c_str()));
            break;
        }
    }
    if (lint_result.races.size() != truth.racyMems.size()) {
        problems.push_back(strf(
            "callgraph: lintProgram reports %zu races, construction "
            "implies %zu",
            lint_result.races.size(), truth.racyMems.size()));
    }
    if (!problems.empty())
        return problems;

    // Oracle 2: run every thread root on the machine; execution must
    // stay inside the interprocedural summary claims, and every
    // runtime shared-cell touch must have been classified.
    for (size_t r = 0; r < s.roots.size(); ++r) {
        machine::CpuConfig config;
        config.numRegs = kCgNumRegs;
        config.operandWidth = 6;
        config.memWords = kCgMemWords;
        machine::Cpu cpu(config);
        for (size_t i = 0; i < program.words.size(); ++i)
            cpu.mem().write(static_cast<uint32_t>(i),
                            program.words[i]);

        const uint32_t root_entry =
            graph.procedures()[lockset.roots()[ls_root[r]].proc]
                .entry;
        cpu.setPc(root_entry);

        struct Step
        {
            uint32_t pc;
            isa::Instruction inst;
            uint32_t ea; ///< LD/ST only
        };
        std::vector<Step> steps;
        cpu.setTraceHook([&](const machine::TraceEntry &entry) {
            // The hook fires before execution and the program never
            // relocates (RRM stays 0), so rs1 reads the architected
            // register directly and the effective address is exact.
            uint32_t ea = 0;
            if (entry.inst.op == isa::Opcode::LD ||
                entry.inst.op == isa::Opcode::ST) {
                ea = cpu.regs().data()[entry.inst.rs1] +
                     static_cast<uint32_t>(entry.inst.imm);
            }
            steps.push_back({entry.pc, entry.inst, ea});
        });
        cpu.run(s.maxSteps);
        if (!cpu.halted()) {
            problems.push_back(strf(
                "callgraph: root %zu did not halt within %llu steps "
                "(trap %d)",
                r, static_cast<unsigned long long>(s.maxSteps),
                static_cast<int>(cpu.trap())));
            return problems;
        }

        std::set<std::pair<uint32_t, uint32_t>> touched_sites;
        for (const Step &step : steps) {
            if (problems.size() >= 4)
                return problems;
            const uint32_t owner = graph.procOfAddress(step.pc);
            if (owner == lint::CallGraph::noProc) {
                problems.push_back(strf(
                    "callgraph: root %zu executed addr %u, which "
                    "belongs to no discovered procedure",
                    r, step.pc));
                continue;
            }
            const lint::Procedure &proc =
                graph.procedures()[owner];
            const lint::UseDef ud = lint::useDef(step.inst);
            const uint64_t used = ud.uses | ud.defs;
            if (used & ~proc.footprint) {
                problems.push_back(strf(
                    "callgraph: root %zu at addr %u touches regs "
                    "0x%llx outside procedure '%s' footprint 0x%llx",
                    r, step.pc,
                    static_cast<unsigned long long>(used),
                    proc.name.c_str(),
                    static_cast<unsigned long long>(
                        proc.footprint)));
                continue;
            }
            const bool is_mem = step.inst.op == isa::Opcode::LD ||
                                step.inst.op == isa::Opcode::ST;
            if (is_mem && step.ea >= kCgCellBase &&
                step.ea < kCgCellBase + s.numCells) {
                touched_sites.insert({step.pc, step.ea});
            }
        }

        // Every runtime cell touch must be a classified access of
        // this root, at the same site and address.
        std::set<std::pair<uint32_t, uint32_t>> classified;
        for (const lint::Access &access : lockset.accesses()) {
            if (access.root == ls_root[r])
                classified.insert({access.address, access.mem});
        }
        for (const auto &[pc, ea] : touched_sites) {
            if (!classified.count({pc, ea})) {
                problems.push_back(strf(
                    "callgraph: root %zu touched shared word 0x%x "
                    "at addr %u but the lockset pass did not "
                    "classify that access",
                    r, ea, pc));
                return problems;
            }
        }
    }
    return problems;
}

} // namespace

std::string
callgraphSource(const CallgraphSample &s)
{
    std::ostringstream out;
    out << "; generated by the rrfuzz callgraph domain\n";
    for (unsigned c = 0; c < s.numCells; ++c)
        out << "        .equ CELL" << c << ", "
            << (kCgCellBase + c) << '\n';
    for (unsigned l = 0; l < s.numLocks; ++l)
        out << "        .equ LOCKW" << l << ", "
            << (kCgLockBase + l) << '\n';
    out << '\n';
    for (size_t r = 1; r < s.roots.size(); ++r)
        out << "        .thread t" << r << '\n';
    for (unsigned l = 0; l < s.numLocks; ++l)
        out << "        .lockdef lk" << l << ", lk" << l
            << "_acq, lk" << l << "_rel\n";
    out << '\n';

    // Thread roots: entry first (address 0), then the .thread labels.
    for (size_t r = 0; r < s.roots.size(); ++r) {
        out << (r == 0 ? std::string("entry")
                       : "t" + std::to_string(r))
            << ":\n";
        for (const uint32_t callee : s.roots[r].calls)
            out << "        jal   r12, p" << callee << '\n';
        out << "        halt\n\n";
    }

    // Procedures, in index order — but only those reachable from a
    // root. Dead code with a call into a lock procedure would poison
    // the RRM analysis' constant propagation (unreachable labels are
    // conservatively seeded with an unknown mask), and the sample's
    // ground truth deliberately models only the reachable forest.
    std::vector<bool> emitted(s.procs.size(), false);
    {
        const std::function<void(uint32_t)> mark = [&](uint32_t p) {
            if (emitted[p])
                return;
            emitted[p] = true;
            for (const uint32_t child : s.procs[p].calls)
                mark(child);
        };
        for (const CgRoot &root : s.roots) {
            for (const uint32_t callee : root.calls)
                mark(callee);
        }
    }

    // A procedure at forest depth d is entered with its return
    // address in r(11+d) and calls its children through r(12+d);
    // lock procedures always link via r15.
    const std::vector<unsigned> depth = cgDepths(s);
    for (size_t p = 0; p < s.procs.size(); ++p) {
        const CgProc &proc = s.procs[p];
        if (!emitted[p])
            continue;
        const unsigned link = 11 + depth[p];
        out << 'p' << p << ":\n";
        if (proc.lock >= 0)
            out << "        jal   r15, lk" << proc.lock << "_acq\n";
        for (unsigned reg = 1; reg <= 11; ++reg) {
            if (proc.touch & (1u << reg))
                out << "        addi  r" << reg << ", r" << reg
                    << ", 1\n";
        }
        if (proc.cell >= 0) {
            out << "        li    r11, CELL" << proc.cell << '\n';
            out << "        " << (proc.write ? "st" : "ld")
                << "    r10, 0(r11)\n";
        }
        for (const uint32_t callee : proc.calls)
            out << "        jal   r" << (link + 1) << ", p" << callee
                << '\n';
        if (proc.lock >= 0)
            out << "        jal   r15, lk" << proc.lock << "_rel\n";
        out << "        jmp   r" << link << "\n\n";
    }

    // Spinlock idioms, one acquire/release pair per declared lock
    // (the .lockdef contract: the analyses trust these, so keep them
    // the canonical shape from docs/LINT.md).
    for (unsigned l = 0; l < s.numLocks; ++l) {
        out << "lk" << l << "_acq:\n"
            << "        li    r5, LOCKW" << l << '\n'
            << "        li    r6, 1\n"
            << "lk" << l << "_spin:\n"
            << "        ld    r7, 0(r5)\n"
            << "        beq   r7, r6, lk" << l << "_spin\n"
            << "        st    r6, 0(r5)\n"
            << "        jmp   r15\n\n";
        out << "lk" << l << "_rel:\n"
            << "        li    r5, LOCKW" << l << '\n'
            << "        li    r6, 0\n"
            << "        st    r6, 0(r5)\n"
            << "        jmp   r15\n\n";
    }
    return out.str();
}

Problems
checkSample(const AnySample &sample)
{
    return std::visit(
        [](const auto &s) -> Problems {
            using T = std::decay_t<decltype(s)>;
            if constexpr (std::is_same_v<T, RelocSample>)
                return checkReloc(s);
            else if constexpr (std::is_same_v<T, HeapSample>)
                return checkHeap(s);
            else if constexpr (std::is_same_v<T, JsonSample>)
                return checkJson(s);
            else if constexpr (std::is_same_v<T, NumSample>)
                return checkNum(s);
            else if constexpr (std::is_same_v<T, PhaseSample>)
                return checkPhase(s);
            else if constexpr (std::is_same_v<T, ProgramSample>)
                return checkProgram(s);
            else if constexpr (std::is_same_v<T, MtSample>)
                return checkMt(s);
            else if constexpr (std::is_same_v<T, XsimSample>)
                return checkXsim(s);
            else if constexpr (std::is_same_v<T, CallgraphSample>)
                return checkCallgraph(s);
            else
                return checkCkpt(s);
        },
        sample);
}

} // namespace rr::fuzz
