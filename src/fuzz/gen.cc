/**
 * @file
 * Sample generators. Each generator is a pure function of the Rng
 * stream, so a per-sample seed reproduces the sample exactly.
 *
 * Constraints the generators maintain (and the oracles rely on) are
 * documented per kind in docs/FUZZ.md; the broad rule is "valid by
 * construction, adversarial at the edges": geometry parameters stay
 * inside the constructors' asserted domains, while the *behaviour*
 * explored (mask churn, ties, delay-slot hazards, self-modifying
 * stores, traps) is as hostile as the contracts allow.
 */

#include "fuzz/fuzz.hh"

#include <algorithm>
#include <cstdio>
#include <initializer_list>

#include "base/logging.hh"
#include "isa/instruction.hh"

namespace rr::fuzz {

namespace {

/** True with probability pct/100. */
bool
chance(Rng &rng, unsigned pct)
{
    return rng.nextRange(1, 100) <= pct;
}

/** Pick one element of a small list. */
template <typename T>
T
pick(Rng &rng, std::initializer_list<T> list)
{
    const auto *begin = list.begin();
    return begin[rng.nextRange(0, list.size() - 1)];
}

unsigned
log2Floor(unsigned v)
{
    unsigned bits = 0;
    while ((2u << bits) <= v)
        ++bits;
    return bits;
}

// ---------------------------------------------------------------------
// reloc

RelocSample
genReloc(Rng &rng)
{
    RelocSample s;
    s.numRegs = 8u << rng.nextRange(0, 5); // 8..256
    s.operandWidth = static_cast<unsigned>(
        rng.nextRange(1, std::min(6u, log2Floor(s.numRegs))));
    s.banks = 1;
    if (s.operandWidth >= 2 && chance(rng, 30))
        s.banks = s.operandWidth >= 3 && chance(rng, 40) ? 4 : 2;
    s.mode = static_cast<uint8_t>(rng.nextRange(0, 2));

    // Mux/Add consult the context size; open with a definite one.
    if (s.mode != 0) {
        RelocOp op;
        op.kind = RelocOp::SetSize;
        op.value = 1u << rng.nextRange(0, s.operandWidth);
        s.ops.push_back(op);
    }

    const uint64_t n = rng.nextRange(1, 40);
    for (uint64_t i = 0; i < n; ++i) {
        RelocOp op;
        if (chance(rng, 15)) {
            op.kind = RelocOp::SetSize;
            op.value = 1u << rng.nextRange(0, s.operandWidth);
        } else {
            op.kind = RelocOp::SetMask;
            op.bank = static_cast<uint8_t>(rng.nextRange(0, s.banks - 1));
            uint32_t mask =
                static_cast<uint32_t>(rng.next() % s.numRegs);
            if (chance(rng, 50)) {
                // Size-aligned masks, the paper's intended usage.
                const uint32_t align =
                    1u << rng.nextRange(0, s.operandWidth);
                mask &= ~(align - 1);
            }
            // Revisit earlier masks often enough to exercise both
            // the 16-slot table cache and the single-bank memo.
            if (i >= 4 && chance(rng, 35)) {
                const auto &prev =
                    s.ops[rng.nextRange(0, s.ops.size() - 1)];
                if (prev.kind == RelocOp::SetMask)
                    mask = prev.value;
            }
            op.value = mask;
        }
        s.ops.push_back(op);
    }
    return s;
}

// ---------------------------------------------------------------------
// heap

HeapSample
genHeap(Rng &rng)
{
    HeapSample s;
    s.numThreads = static_cast<unsigned>(rng.nextRange(1, 8));
    const uint64_t n = rng.nextRange(4, 60);
    for (uint64_t i = 0; i < n; ++i) {
        HeapOp op;
        const uint64_t roll = rng.nextRange(1, 10);
        if (roll <= 5) {
            op.kind = HeapOp::Push;
            // A narrow time range makes equal-time ties routine.
            op.time = rng.nextRange(0, 40);
            op.tid =
                static_cast<uint32_t>(rng.nextRange(0, s.numThreads - 1));
        } else if (roll <= 8) {
            op.kind = HeapOp::Pop;
        } else {
            op.kind = HeapOp::Invalidate;
            op.tid =
                static_cast<uint32_t>(rng.nextRange(0, s.numThreads - 1));
        }
        s.ops.push_back(op);
    }
    return s;
}

// ---------------------------------------------------------------------
// json

/** Append a randomly adversarial JSON string literal (with quotes). */
void
appendJsonString(Rng &rng, std::string &out)
{
    out += '"';
    const uint64_t pieces = rng.nextRange(0, 6);
    for (uint64_t i = 0; i < pieces; ++i) {
        switch (rng.nextRange(0, 7)) {
          case 0: { // plain ASCII run
            const uint64_t len = rng.nextRange(1, 5);
            for (uint64_t j = 0; j < len; ++j)
                out += static_cast<char>('a' + rng.nextRange(0, 25));
            break;
          }
          case 1: // two-character escapes
            out += pick<const char *>(
                rng, {"\\n", "\\t", "\\r", "\\\\", "\\\"", "\\/",
                      "\\b", "\\f"});
            break;
          case 2: { // \uXXXX below the surrogate range
            char buf[8];
            std::snprintf(buf, sizeof buf, "\\u%04x",
                          static_cast<unsigned>(rng.nextRange(1, 0xd7ff)));
            out += buf;
            break;
          }
          case 3: { // surrogate pair (astral plane character)
            char buf[16];
            std::snprintf(
                buf, sizeof buf, "\\u%04x\\u%04x",
                static_cast<unsigned>(0xd800 + rng.nextRange(0, 0x3ff)),
                static_cast<unsigned>(0xdc00 + rng.nextRange(0, 0x3ff)));
            out += buf;
            break;
          }
          case 4: { // lone surrogate
            char buf[8];
            std::snprintf(
                buf, sizeof buf, "\\u%04x",
                static_cast<unsigned>(0xd800 + rng.nextRange(0, 0x7ff)));
            out += buf;
            break;
          }
          case 5: // raw control byte (the parser tolerates these)
            out += static_cast<char>(rng.nextRange(1, 0x1f));
            break;
          case 6: { // raw non-ASCII bytes (byte-transparent contract)
            const uint64_t len = rng.nextRange(1, 4);
            for (uint64_t j = 0; j < len; ++j)
                out += static_cast<char>(rng.nextRange(0x80, 0xff));
            break;
          }
          case 7: // NUL via escape
            out += "\\u0000";
            break;
        }
    }
    out += '"';
}

void
appendJsonValue(Rng &rng, std::string &out, unsigned depth)
{
    const uint64_t roll = rng.nextRange(0, depth >= 4 ? 4 : 6);
    switch (roll) {
      case 0:
        out += pick<const char *>(rng, {"null", "true", "false"});
        break;
      case 1: { // integer
        char buf[32];
        std::snprintf(buf, sizeof buf, "%lld",
                      static_cast<long long>(rng.next()) >>
                          rng.nextRange(0, 40));
        out += buf;
        break;
      }
      case 2: { // decimal / exponent forms
        char buf[48];
        switch (rng.nextRange(0, 2)) {
          case 0:
            std::snprintf(buf, sizeof buf, "%llu.%llu",
                          static_cast<unsigned long long>(
                              rng.nextRange(0, 1000)),
                          static_cast<unsigned long long>(
                              rng.nextRange(0, 999999)));
            break;
          case 1:
            std::snprintf(buf, sizeof buf, "-%llu.%llue%d",
                          static_cast<unsigned long long>(
                              rng.nextRange(0, 999)),
                          static_cast<unsigned long long>(
                              rng.nextRange(0, 99)),
                          static_cast<int>(rng.nextRange(0, 30)) - 15);
            break;
          default:
            std::snprintf(buf, sizeof buf, "%llue%d",
                          static_cast<unsigned long long>(
                              rng.nextRange(1, 9999)),
                          static_cast<int>(rng.nextRange(0, 12)));
            break;
        }
        out += buf;
        break;
      }
      case 3:
      case 4:
        appendJsonString(rng, out);
        break;
      case 5: { // array
        out += '[';
        const uint64_t n = rng.nextRange(0, 4);
        for (uint64_t i = 0; i < n; ++i) {
            if (i)
                out += ',';
            appendJsonValue(rng, out, depth + 1);
        }
        out += ']';
        break;
      }
      default: { // object
        out += '{';
        const uint64_t n = rng.nextRange(0, 4);
        for (uint64_t i = 0; i < n; ++i) {
            if (i)
                out += ',';
            appendJsonString(rng, out);
            out += ':';
            appendJsonValue(rng, out, depth + 1);
        }
        out += '}';
        break;
      }
    }
}

JsonSample
genJson(Rng &rng)
{
    JsonSample s;
    appendJsonValue(rng, s.text, 0);
    // Occasionally mutate a byte: most mutants fail to parse (the
    // oracle is then vacuous) but the parser must never crash, leak,
    // or accept-and-corrupt.
    if (chance(rng, 10) && !s.text.empty()) {
        const uint64_t at = rng.nextRange(0, s.text.size() - 1);
        s.text[at] = static_cast<char>(rng.nextRange(0x20, 0x7e));
    }
    return s;
}

// ---------------------------------------------------------------------
// num

NumSample
genNum(Rng &rng)
{
    static const char *const kSpecials[] = {
        "0",
        "18446744073709551615",  // UINT64_MAX
        "18446744073709551616",  // UINT64_MAX + 1
        "0xffffffffffffffff",
        "0x10000000000000000",
        "9223372036854775807",   // INT64_MAX
        "9223372036854775808",
        "0x8000000000000000",    // INT64_MIN magnitude
        "-9223372036854775808",  // INT64_MIN (signed: must reject)
        "+5",
        " 5",
        "5 ",
        "\t5",
        "05",
        "010",
        "0x",
        "0X1",
        "x1",
        "",
        "-1",
        "1e3",
        "0b101",
        "1_000",
    };
    NumSample s;
    if (chance(rng, 35)) {
        s.text = kSpecials[rng.nextRange(
            0, std::size(kSpecials) - 1)];
    } else {
        static const char kAlphabet[] = "0123456789abcdefxX+- \t";
        const uint64_t len = rng.nextRange(1, 20);
        for (uint64_t i = 0; i < len; ++i)
            s.text += kAlphabet[rng.nextRange(
                0, std::size(kAlphabet) - 2)];
    }
    switch (rng.nextRange(0, 3)) {
      case 0: s.max = ~0ull; break;
      case 1: s.max = 0x7fffffffffffffffull; break;
      case 2: s.max = 1u << 20; break;
      default: s.max = 1000; break;
    }
    return s;
}

// ---------------------------------------------------------------------
// phase

PhaseSample
genPhase(Rng &rng)
{
    PhaseSample s;
    s.threads = static_cast<unsigned>(rng.nextRange(4, 24));
    s.phase0Faults = rng.nextRange(1, 3);
    s.meanRun = static_cast<double>(rng.nextRange(16, 64));
    s.latency0 = rng.nextRange(10, 50);
    s.latency1 = rng.nextRange(1000, 5000);
    // Enough work that every thread leaves phase 0 with very high
    // probability (expected faults per thread ~ 2 * (phase0 + 6)).
    s.workPerThread = static_cast<uint64_t>(
        s.meanRun * static_cast<double>(s.phase0Faults + 6) * 2.0);
    s.numRegs = 128;
    s.seed = rng.next();
    return s;
}

// ---------------------------------------------------------------------
// program

/** Incremental RRISC image builder used by genProgram. */
struct ProgGen
{
    Rng &rng;
    ProgramSample &s;
    std::vector<isa::Instruction> code;
    size_t minLen = 0; ///< forward-branch targets must stay inside

    unsigned opMax;  ///< operand values are drawn below this
    // Register conventions inside generated programs:
    //   r3 = zero register (re-seeded after every window switch)
    //   r4 = scratch for masks / addresses
    //   r5 = loop counter
    static constexpr unsigned kZero = 3;
    static constexpr unsigned kScratch = 4;
    static constexpr unsigned kCounter = 5;

    bool lintFriendly = false;
    bool allowSmc = false;
    bool allowIndirect = false;
    bool allowWide = false;
    bool allowLoops = false;
    unsigned dataBase = 128;

    explicit ProgGen(Rng &r, ProgramSample &sample)
        : rng(r), s(sample), opMax(1u << sample.operandWidth)
    {
    }

    void emit(const isa::Instruction &inst) { code.push_back(inst); }

    isa::Instruction ins(isa::Opcode op, unsigned rd = 0,
                         unsigned rs1 = 0, unsigned rs2 = 0,
                         int32_t imm = 0)
    {
        isa::Instruction i;
        i.op = op;
        i.rd = static_cast<uint8_t>(rd);
        i.rs1 = static_cast<uint8_t>(rs1);
        i.rs2 = static_cast<uint8_t>(rs2);
        i.imm = imm;
        return i;
    }

    /** A source operand: usually small, occasionally too wide. */
    unsigned srcReg()
    {
        if (allowWide && s.operandWidth < 6 && chance(rng, 3))
            return static_cast<unsigned>(rng.nextRange(opMax, 63));
        return static_cast<unsigned>(rng.nextRange(0, opMax - 1));
    }

    /** A destination that preserves the zero/counter conventions. */
    unsigned dstReg()
    {
        for (;;) {
            const auto r =
                static_cast<unsigned>(rng.nextRange(0, opMax - 1));
            if (r != kZero && r != kCounter)
                return r;
        }
    }

    /** Materialize a small constant into @p reg (lint-const). */
    void emitConst(unsigned reg, int32_t value)
    {
        emit(ins(isa::Opcode::LUI, reg, 0, 0, 0));
        emit(ins(isa::Opcode::ADDI, reg, reg, 0, value));
    }

    void emitPrologue()
    {
        emitConst(1, static_cast<int32_t>(rng.nextRange(0, 1000)));
        emitConst(2, static_cast<int32_t>(rng.nextRange(0, 1000)));
        emit(ins(isa::Opcode::LUI, kZero, 0, 0, 0));
    }

    /** LUI/ADDI/LDRRM window switch; delay slots padded per flags. */
    void emitMaskSwitch()
    {
        uint32_t mask;
        if (s.mode == 2 /* Add */ && !chance(rng, 10)) {
            // Keep base + offset in range most of the time.
            const uint32_t room =
                s.numRegs > opMax ? s.numRegs - opMax : 1;
            mask = static_cast<uint32_t>(rng.next() % room);
        } else {
            mask = static_cast<uint32_t>(rng.next() % s.numRegs);
            if (chance(rng, 60)) {
                const uint32_t align =
                    1u << rng.nextRange(0, s.operandWidth);
                mask &= ~(align - 1);
            }
        }
        emitConst(kScratch, static_cast<int32_t>(mask));
        emit(ins(isa::Opcode::LDRRM, 0, kScratch, 0, 0));
        const bool pad = lintFriendly || chance(rng, 70);
        for (unsigned i = 0; i < s.delaySlots; ++i) {
            if (pad)
                emit(ins(isa::Opcode::NOP));
            else
                emitRandomAlu();
        }
        // Re-seed the conventions in the new window.
        emit(ins(isa::Opcode::LUI, kZero, 0, 0, 0));
    }

    void emitRandomAlu()
    {
        using isa::Opcode;
        if (chance(rng, 50)) {
            const auto op = pick<Opcode>(
                rng, {Opcode::ADD, Opcode::SUB, Opcode::AND,
                      Opcode::OR, Opcode::XOR, Opcode::SLL,
                      Opcode::SRL, Opcode::SRA, Opcode::SLT,
                      Opcode::SLTU});
            emit(ins(op, dstReg(), srcReg(), srcReg()));
        } else {
            const auto op = pick<Opcode>(
                rng, {Opcode::ADDI, Opcode::ANDI, Opcode::ORI,
                      Opcode::XORI, Opcode::SLTI, Opcode::SLLI,
                      Opcode::SRLI, Opcode::SRAI});
            int32_t imm;
            if (op == Opcode::SLLI || op == Opcode::SRLI ||
                op == Opcode::SRAI) {
                imm = static_cast<int32_t>(rng.nextRange(0, 31));
            } else {
                imm = static_cast<int32_t>(rng.nextRange(0, 200)) - 100;
            }
            emit(ins(op, dstReg(), srcReg(), 0, imm));
        }
    }

    void emitMemory()
    {
        const auto addr = static_cast<int32_t>(
            dataBase + rng.nextRange(0, 48));
        emitConst(kScratch, addr);
        const auto off = static_cast<int32_t>(rng.nextRange(0, 15));
        if (chance(rng, 50)) {
            emit(ins(isa::Opcode::LD, dstReg(), kScratch, 0, off));
        } else {
            emit(ins(isa::Opcode::ST, srcReg(), kScratch, 0, off));
        }
    }

    void emitSmc()
    {
        // Store into the code region; half the time store the zero
        // register (word 0 == NOP, so execution continues through a
        // *changed but valid* instruction — the predecode cache's
        // hardest case), otherwise store arbitrary register garbage.
        const auto target =
            static_cast<int32_t>(rng.nextRange(0, 60));
        emitConst(kScratch, target);
        const unsigned src = chance(rng, 50) ? kZero : srcReg();
        emit(ins(isa::Opcode::ST, src, kScratch, 0, 0));
    }

    void emitIndirect()
    {
        // LUI/ADDI an absolute target, then JMP or JALR to it. The
        // target is the instruction right after the jump.
        const auto target = static_cast<int32_t>(code.size()) + 3;
        emitConst(kScratch, target);
        if (chance(rng, 50))
            emit(ins(isa::Opcode::JMP, 0, kScratch, 0, 0));
        else
            emit(ins(isa::Opcode::JALR, dstReg(), kScratch, 0, 0));
    }

    void emitForwardBranch()
    {
        using isa::Opcode;
        const auto skip = static_cast<int32_t>(rng.nextRange(1, 3));
        if (chance(rng, 20)) {
            emit(ins(Opcode::JAL, dstReg(), 0, 0, skip + 1));
        } else {
            const auto op =
                pick<Opcode>(rng, {Opcode::BEQ, Opcode::BNE,
                                   Opcode::BLT, Opcode::BGE});
            emit(ins(op, 0, srcReg(), srcReg(), skip + 1));
        }
        minLen = std::max(minLen, code.size() + skip);
    }

    void emitLoop()
    {
        using isa::Opcode;
        const auto k = static_cast<int32_t>(rng.nextRange(1, 4));
        emit(ins(Opcode::ADDI, kCounter, kZero, 0, k));
        const auto top = static_cast<int32_t>(code.size());
        const uint64_t body = rng.nextRange(1, 2);
        for (uint64_t i = 0; i < body; ++i)
            emitRandomAlu();
        emit(ins(Opcode::ADDI, kCounter, kCounter, 0, -1));
        const auto at = static_cast<int32_t>(code.size());
        emit(ins(Opcode::BNE, 0, kCounter, kZero, top - at));
    }

    void emitMisc()
    {
        using isa::Opcode;
        switch (rng.nextRange(0, 5)) {
          case 0:
            emit(ins(Opcode::RDRRM, dstReg()));
            break;
          case 1:
            emit(ins(Opcode::MFPSW, dstReg()));
            break;
          case 2:
            emit(ins(Opcode::MTPSW, 0, srcReg()));
            break;
          case 3:
            emit(ins(Opcode::FF1, dstReg(), srcReg()));
            break;
          case 4:
            emit(ins(Opcode::FAULT, 0, 0, 0,
                     static_cast<int32_t>(rng.nextRange(0, 3))));
            break;
          default:
            if (s.banks > 1) {
                const bool bad = chance(rng, 5);
                const auto bank = static_cast<int32_t>(
                    bad ? s.banks : rng.nextRange(0, s.banks - 1));
                emit(ins(Opcode::LDRRMX, 0, srcReg(), 0, bank));
            } else {
                emit(ins(Opcode::NOP));
            }
            break;
        }
    }

    void build()
    {
        emitPrologue();
        const size_t bodyLen = 20 + rng.nextRange(0, 70);
        while (code.size() < bodyLen) {
            const uint64_t roll = rng.nextRange(1, 100);
            if (roll <= 18)
                emitMaskSwitch();
            else if (roll <= 26 && allowLoops)
                emitLoop();
            else if (roll <= 34)
                emitMemory();
            else if (roll <= 38 && allowSmc)
                emitSmc();
            else if (roll <= 42 && allowIndirect)
                emitIndirect();
            else if (roll <= 52)
                emitForwardBranch();
            else if (roll <= 62)
                emitMisc();
            else
                emitRandomAlu();
        }
        while (code.size() < minLen)
            emit(ins(isa::Opcode::NOP));
        emit(ins(isa::Opcode::HALT));

        s.words.reserve(code.size());
        for (const isa::Instruction &inst : code)
            s.words.push_back(isa::encode(inst));
        rr_assert(s.words.size() < dataBase,
                  "generated program overlaps its data region");
    }
};

ProgramSample
genProgram(Rng &rng)
{
    ProgramSample s;
    s.numRegs = 32u << rng.nextRange(0, 3); // 32..256
    s.operandWidth = static_cast<unsigned>(
        rng.nextRange(3, std::min(6u, log2Floor(s.numRegs))));
    s.banks = 1;
    if (s.operandWidth >= 3 && chance(rng, 25))
        s.banks = chance(rng, 40) ? 4 : 2;
    if (chance(rng, 70))
        s.mode = 0; // Or
    else
        s.mode = chance(rng, 50) ? 1 : 2; // Mux / Add
    s.delaySlots = static_cast<unsigned>(rng.nextRange(0, 2));
    s.memWords = pick<unsigned>(rng, {256, 1024, 4096});
    if (chance(rng, 50)) {
        s.takenBranchPenalty =
            static_cast<unsigned>(rng.nextRange(0, 3));
        s.loadUsePenalty = static_cast<unsigned>(rng.nextRange(0, 3));
        s.ldrrmPenalty = static_cast<unsigned>(rng.nextRange(0, 3));
    }
    s.maxSteps = 4000;

    ProgGen gen(rng, s);
    gen.allowSmc = chance(rng, 25);
    gen.allowIndirect = chance(rng, 15);
    gen.allowWide = s.operandWidth < 6 && chance(rng, 10);
    gen.allowLoops = chance(rng, 50);
    gen.dataBase = std::min(s.memWords / 2, 1500u);
    s.lintChecked = s.mode == 0 && s.banks == 1 && !gen.allowSmc &&
                    !gen.allowIndirect && !gen.allowWide;
    gen.lintFriendly = s.lintChecked;
    gen.build();
    return s;
}

// ---------------------------------------------------------------------
// mt

MtSample
genMt(Rng &rng)
{
    MtSample s;
    s.family = static_cast<uint8_t>(rng.nextRange(0, 4));
    s.arch = static_cast<uint8_t>(rng.nextRange(0, 2));
    s.operandWidth = static_cast<unsigned>(rng.nextRange(3, 6));
    const unsigned maxContext = 1u << s.operandWidth;

    switch (s.arch) {
      case 0: { // Flexible
        s.minContextSize = 1u << rng.nextRange(0, 2);
        s.regsHi = static_cast<unsigned>(
            rng.nextRange(1, std::min(maxContext, 24u)));
        s.regsLo = static_cast<unsigned>(rng.nextRange(1, s.regsHi));
        unsigned needed = s.minContextSize;
        while (needed < s.regsHi)
            needed <<= 1;
        s.numRegs = std::max(pick<unsigned>(rng, {32, 64, 128}),
                             needed);
        break;
      }
      case 1: { // FixedHw
        s.fixedContextRegs = pick<unsigned>(rng, {16, 32});
        s.regsHi = static_cast<unsigned>(
            rng.nextRange(1, s.fixedContextRegs));
        s.regsLo = static_cast<unsigned>(rng.nextRange(1, s.regsHi));
        s.numRegs = std::max(pick<unsigned>(rng, {64, 128}),
                             s.fixedContextRegs);
        break;
      }
      default: { // AddReloc
        s.numRegs = pick<unsigned>(rng, {64, 128});
        s.regsHi = static_cast<unsigned>(rng.nextRange(1, 24));
        s.regsLo = static_cast<unsigned>(rng.nextRange(1, s.regsHi));
        break;
      }
    }

    s.threads = pick<unsigned>(rng, {1, 2, 4, 16, 48});
    s.work = chance(rng, 50) ? rng.nextRange(200, 2000) : 0;

    s.param0 = static_cast<double>(rng.nextRange(8, 64));
    s.param1 = static_cast<double>(rng.nextRange(20, 200));
    s.param2 = static_cast<double>(rng.nextRange(8, 64));
    s.param3 = static_cast<double>(rng.nextRange(50, 400));
    s.phase0Faults = rng.nextRange(1, 6);
    s.phase1Faults = rng.nextRange(1, 6);

    s.unload = static_cast<uint8_t>(chance(rng, 40) ? 1 : 0);
    s.residencyCap = chance(rng, 30)
                         ? static_cast<unsigned>(rng.nextRange(1, 4))
                         : 0;
    s.priorityLevels = static_cast<unsigned>(rng.nextRange(1, 3));
    s.seed = rng.next();
    return s;
}

// ---------------------------------------------------------------------
// ckpt

CkptSample
genCkpt(Rng &rng)
{
    CkptSample s;
    s.spec = genMt(rng);
    // Small specs keep the oracle's three runs cheap; the interesting
    // structure is in *where* the snapshot lands, not run length.
    s.spec.threads = pick<unsigned>(rng, {1, 2, 4, 16});
    s.spec.work = rng.nextRange(200, 1500);
    // Bias toward the edges: event 0 (nothing begun), tiny prefixes,
    // and values past the end (snapshot of a finished run) all have
    // their own restore paths.
    const uint64_t roll = rng.nextRange(1, 10);
    if (roll <= 2)
        s.splitEvents = rng.nextRange(0, 2);
    else if (roll <= 8)
        s.splitEvents = rng.nextRange(3, 4000);
    else
        s.splitEvents = ~0ull; // clamped to "after the last event"
    s.corruptPos = rng.next();
    s.corruptBit = static_cast<uint8_t>(rng.nextRange(0, 7));
    return s;
}

// ---------------------------------------------------------------------
// xsim

XsimSample
genXsim(Rng &rng)
{
    XsimSample s;
    s.threads = static_cast<unsigned>(rng.nextRange(1, 6));
    s.regsUsed = static_cast<unsigned>(rng.nextRange(12, 16));
    s.segments = static_cast<unsigned>(rng.nextRange(4, 24));
    const uint64_t n = rng.nextRange(1, 6);
    for (uint64_t i = 0; i < n; ++i)
        s.script.push_back(rng.nextRange(10, 120));
    s.latency = rng.nextRange(50, 800);
    s.seed = rng.next();
    s.tolerance = 0.15;
    return s;
}

// ---------------------------------------------------------------------
// callgraph

CallgraphSample
genCallgraph(Rng &rng)
{
    CallgraphSample s;
    s.numCells = static_cast<unsigned>(rng.nextRange(1, 3));
    s.numLocks = static_cast<unsigned>(rng.nextRange(0, 2));
    s.maxSteps = 20000;

    const unsigned num_procs =
        static_cast<unsigned>(rng.nextRange(1, 10));
    s.procs.resize(num_procs);

    // Forest shape first: each procedure either starts a new tree or
    // attaches under an earlier one (single parent, depth <= 3, at
    // most 4 children), so every per-root call path is unique and
    // the ground-truth locksets below are exact.
    std::vector<unsigned> depth(num_procs, 1);
    std::vector<int> parent(num_procs, -1);
    for (unsigned i = 1; i < num_procs; ++i) {
        if (!chance(rng, 55))
            continue;
        const auto candidate = static_cast<uint32_t>(
            rng.nextRange(0, i - 1));
        if (depth[candidate] >= 3 ||
            s.procs[candidate].calls.size() >= 4)
            continue;
        parent[i] = static_cast<int>(candidate);
        depth[i] = depth[candidate] + 1;
        s.procs[candidate].calls.push_back(i);
    }

    for (unsigned i = 0; i < num_procs; ++i) {
        CgProc &proc = s.procs[i];
        const unsigned touches =
            static_cast<unsigned>(rng.nextRange(0, 3));
        for (unsigned t = 0; t < touches; ++t)
            proc.touch |= 1u << rng.nextRange(1, 11);
        if (chance(rng, 65)) {
            proc.cell = static_cast<int>(
                rng.nextRange(0, s.numCells - 1));
            proc.write = chance(rng, 60);
        }
        if (s.numLocks > 0 && chance(rng, 50)) {
            const int lock = static_cast<int>(
                rng.nextRange(0, s.numLocks - 1));
            // A spinlock re-acquired while held never returns.
            bool on_path = false;
            for (int a = parent[i]; a >= 0; a = parent[a])
                on_path = on_path || s.procs[a].lock == lock;
            if (!on_path)
                proc.lock = lock;
        }
    }

    // Roots call parentless procedures only; independent draws per
    // root make shared trees (the cross-thread case) common.
    const unsigned num_roots =
        static_cast<unsigned>(rng.nextRange(1, 4));
    s.roots.resize(num_roots);
    for (CgRoot &root : s.roots) {
        for (unsigned i = 0; i < num_procs; ++i) {
            if (parent[i] < 0 && root.calls.size() < 4 &&
                chance(rng, 60))
                root.calls.push_back(i);
        }
    }
    return s;
}

} // namespace

const char *
kindName(SampleKind kind)
{
    switch (kind) {
      case SampleKind::Reloc: return "reloc";
      case SampleKind::Heap: return "heap";
      case SampleKind::Json: return "json";
      case SampleKind::Num: return "num";
      case SampleKind::Phase: return "phase";
      case SampleKind::Program: return "program";
      case SampleKind::Mt: return "mt";
      case SampleKind::Xsim: return "xsim";
      case SampleKind::Callgraph: return "callgraph";
      case SampleKind::Ckpt: return "ckpt";
    }
    return "?";
}

bool
kindFromName(const std::string &name, SampleKind &out)
{
    for (unsigned i = 0; i < numSampleKinds; ++i) {
        const auto kind = static_cast<SampleKind>(i);
        if (name == kindName(kind)) {
            out = kind;
            return true;
        }
    }
    return false;
}

SampleKind
kindOf(const AnySample &sample)
{
    return static_cast<SampleKind>(sample.index());
}

AnySample
generateSample(SampleKind kind, Rng &rng)
{
    switch (kind) {
      case SampleKind::Reloc: return genReloc(rng);
      case SampleKind::Heap: return genHeap(rng);
      case SampleKind::Json: return genJson(rng);
      case SampleKind::Num: return genNum(rng);
      case SampleKind::Phase: return genPhase(rng);
      case SampleKind::Program: return genProgram(rng);
      case SampleKind::Mt: return genMt(rng);
      case SampleKind::Xsim: return genXsim(rng);
      case SampleKind::Callgraph: return genCallgraph(rng);
      case SampleKind::Ckpt: return genCkpt(rng);
    }
    rr_panic("bad sample kind");
}

} // namespace rr::fuzz
