/**
 * @file
 * Sample domains for rrfuzz (rr::fuzz).
 *
 * A *sample* is one self-contained, deterministic test case drawn by
 * a generator. Each domain pairs a generator (samples.hh + gen.cc)
 * with an oracle (check.cc) and a shrinker (shrink.cc); repro.cc can
 * serialize any sample to a standalone text file and back, which is
 * the format pinned under tests/fuzz/corpus/.
 *
 * The domains and the cross-implementation redundancy each one
 * reconciles (docs/FUZZ.md has the full oracle list):
 *
 *   reloc    RelocationUnit::relocate() vs the memoized table()
 *   heap     EventCore vs a reference lazy-deletion priority_queue
 *   json     exp:: JSON writer/parser round-trip properties
 *   num      strict CLI numeric parsing vs its documented grammar
 *   phase    sequence-indexed fault draws actually advance phases
 *   program  machine::Cpu predecode on vs off, plus rrlint claims
 *            vs registers actually touched at runtime
 *   mt       SimulationSpec runs audited by TraceAuditor, replayed
 *            for determinism
 *   xsim     machine-MT kernel cycle accounting vs the rr::mt model
 *            under a matched scripted fault schedule
 *   callgraph
 *            rrlint's interprocedural summaries and lockset race
 *            detector vs a constructed call forest with lock idioms:
 *            claims checked against both the construction's ground
 *            truth and the registers/memory the machine actually
 *            touches when each thread root runs
 *   ckpt     rr.ckpt.v1 snapshot/restore vs a straight run: snapshot
 *            an mt simulation at a generated event boundary, restore
 *            into a fresh processor, and require the remaining trace
 *            and final statistics to match bit-for-bit; a corrupted
 *            copy of the document must be rejected with ckpt::Error
 */

#ifndef RR_FUZZ_SAMPLES_HH
#define RR_FUZZ_SAMPLES_HH

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

namespace rr::fuzz {

/** The sample domains (one generator + oracle + shrinker each). */
enum class SampleKind : uint8_t
{
    Reloc,
    Heap,
    Json,
    Num,
    Phase,
    Program,
    Mt,
    Xsim,
    Callgraph,
    Ckpt,
};

/** Number of distinct sample kinds. */
constexpr unsigned numSampleKinds = 10;

/** @return stable printable name of @p kind (used in repro files). */
const char *kindName(SampleKind kind);

/** Look up a kind by name. @return false when unknown. */
bool kindFromName(const std::string &name, SampleKind &out);

/** Oracle verdict: problem descriptions; empty = sample passes. */
using Problems = std::vector<std::string>;

// ---------------------------------------------------------------------
// reloc: RelocationUnit::relocate() vs table()

/** One step of a relocation-unit script. */
struct RelocOp
{
    enum : uint8_t { SetMask, SetSize } kind = SetMask;
    uint32_t value = 0; ///< mask value / context size
    uint8_t bank = 0;   ///< bank for SetMask
};

/**
 * A relocation-unit geometry plus a script of mask/context-size
 * changes. The oracle compares relocate() against table() for every
 * operand after every step, so table memoization (including the
 * 16-slot recycling and the single-bank mask memo) can never drift
 * from the uncached reference.
 */
struct RelocSample
{
    unsigned numRegs = 32;
    unsigned operandWidth = 5;
    unsigned banks = 1;
    uint8_t mode = 0; ///< machine::RelocationMode value
    std::vector<RelocOp> ops;
};

// ---------------------------------------------------------------------
// heap: EventCore vs reference priority_queue

/** One step of an event-heap script. */
struct HeapOp
{
    enum : uint8_t { Push, Pop, Invalidate } kind = Push;
    uint64_t time = 0; ///< completion time for Push
    uint32_t tid = 0;  ///< thread for Push / Invalidate
};

/**
 * A script against the completion-event heap. The oracle runs it
 * against mt::EventCore and against a std::priority_queue with lazy
 * stale deletion (the pre-EventCore algorithm) and compares the
 * delivered event sequence and the live/stale accounting.
 */
struct HeapSample
{
    unsigned numThreads = 4;
    std::vector<HeapOp> ops;
};

// ---------------------------------------------------------------------
// json: writer/parser round-trip

/**
 * One JSON document (arbitrary bytes). The oracle requires: if the
 * document parses, then serialize -> parse -> serialize is a
 * fixpoint, the reparsed value is structurally identical, and a
 * pure-ASCII document never decodes to invalid UTF-8.
 */
struct JsonSample
{
    std::string text;
};

// ---------------------------------------------------------------------
// num: strict CLI numeric grammar

/**
 * One candidate numeric argument. The oracle checks
 * tools-layer parseUnsigned() against the documented grammar
 * (docs/TOOLS.md): nonempty decimal digits, or 0x/0X plus hex
 * digits; no sign, no whitespace, no trailing bytes; value <= max.
 */
struct NumSample
{
    std::string text;
    uint64_t max = ~0ull;
};

// ---------------------------------------------------------------------
// phase: sequence-indexed fault draws

/**
 * A context-cache simulation under a two-phase fault model whose
 * second phase has a much larger latency. If the simulator draws
 * faults without the per-thread sequence index, threads are pinned
 * to phase 0 and the run is bit-identical to the phase-0-only model
 * — which is exactly what the oracle rejects.
 */
struct PhaseSample
{
    unsigned threads = 8;
    uint64_t workPerThread = 4096;
    uint64_t phase0Faults = 2;
    double meanRun = 32.0;
    uint64_t latency0 = 20;
    uint64_t latency1 = 2000;
    unsigned numRegs = 128;
    uint64_t seed = 1;
};

// ---------------------------------------------------------------------
// program: predecode differential + runtime-vs-lint

/**
 * A generated RRISC image (base 0) plus the machine geometry to run
 * it under. Oracles: (1) predecode on vs off must produce
 * byte-identical traces and final architectural state; (2)
 * relocate() vs table() on every operand at every observed mask;
 * (3) when `lintChecked`, rrlint's flow-sensitive window claims must
 * cover every register the program actually touches at runtime.
 */
struct ProgramSample
{
    unsigned numRegs = 64;
    unsigned operandWidth = 5;
    unsigned delaySlots = 1;
    unsigned banks = 1;
    uint8_t mode = 0; ///< machine::RelocationMode value
    unsigned memWords = 1024;
    uint64_t maxSteps = 4000;
    unsigned takenBranchPenalty = 0;
    unsigned loadUsePenalty = 0;
    unsigned ldrrmPenalty = 0;

    /**
     * The sample obeys the lint-oracle constraints (Or mode, one
     * bank, no self-modifying stores, no indirect jumps, operands
     * inside [0, 2^w)), so the rrlint consistency oracle applies.
     */
    bool lintChecked = false;

    std::vector<uint32_t> words;
};

// ---------------------------------------------------------------------
// mt: audited SimulationSpec runs

/**
 * One event-model simulation spec, generated at the edges of
 * SimulationSpec validation. Oracles: TraceAuditor reconciles
 * exactly against the reported statistics, the cycle buckets
 * partition total time, and an identical re-run reproduces every
 * statistic bit-for-bit.
 */
struct MtSample
{
    unsigned threads = 64;
    unsigned regsLo = 6;
    unsigned regsHi = 24;
    uint64_t work = 0; ///< 0 = family default work per thread

    /** 0 cache, 1 sync, 2 combined, 3 deterministic, 4 phased. */
    uint8_t family = 0;
    double param0 = 32.0;  ///< mean run (cache leg)
    double param1 = 100.0; ///< latency (cache leg)
    double param2 = 16.0;  ///< sync mean run (combined / phased)
    double param3 = 200.0; ///< sync latency (combined / phased)
    uint64_t phase0Faults = 4; ///< phased only
    uint64_t phase1Faults = 4; ///< phased only

    uint8_t arch = 0; ///< mt::ArchKind value
    unsigned numRegs = 128;
    unsigned operandWidth = 5;
    unsigned minContextSize = 4;
    unsigned fixedContextRegs = 32;
    uint8_t unload = 0; ///< mt::UnloadPolicyKind value
    unsigned residencyCap = 0;
    unsigned priorityLevels = 1;
    uint64_t seed = 1;
};

// ---------------------------------------------------------------------
// xsim: machine kernel vs event model

/**
 * A matched pair: the cycle-level MachineMtKernel executing real
 * Figure 3 code and the event-driven MtProcessor charged the same
 * costs, both driven by the same scripted fault schedule (per-thread
 * segment lengths cycle through `script`, constant latency). The
 * oracle requires exact agreement on work units, useful cycles,
 * fault counts and completions, the two independently computed
 * whole-run efficiencies to agree within `tolerance` (plus a
 * segment-count-dependent allowance for poll-granularity rounding),
 * the kernel to halt, and the event model's trace to pass the
 * cycle-conservation audit.
 */
struct XsimSample
{
    unsigned threads = 2;   ///< resident thread count (contexts fit)
    unsigned regsUsed = 12; ///< C (context size = next power of two)
    std::vector<uint64_t> script; ///< work units per segment, cycled
    uint64_t latency = 200;
    unsigned segments = 16; ///< run segments per thread
    uint64_t seed = 1;
    double tolerance = 0.15;
};

// ---------------------------------------------------------------------
// callgraph: rrlint interprocedural + lockset vs construction/runtime

/** One generated procedure in a callgraph sample. */
struct CgProc
{
    /**
     * Extra registers this body touches directly (bitmask over
     * r1..r11; the emitter turns each bit into an `addi rX, rX, 1`).
     */
    uint32_t touch = 0;

    int cell = -1;      ///< shared cell index accessed (-1: none)
    bool write = false; ///< the access is a ST (LD otherwise)

    /**
     * Lock held around the whole body (-1: none): acquire is called
     * before the first touch, release after the last child call, so
     * the access and every callee inherit it. Must differ from every
     * forest ancestor's lock or the spinlock self-deadlocks.
     */
    int lock = -1;

    /**
     * Child procedures called, in order. Indices are strictly greater
     * than this procedure's own (the call graph is a forest: acyclic,
     * and every procedure has at most one caller), and the forest is
     * at most three procedures deep.
     */
    std::vector<uint32_t> calls;
};

/** One thread root (roots[0] is `entry`, the rest `.thread` labels). */
struct CgRoot
{
    /**
     * Top-level procedures called in sequence before HALT. Distinct,
     * and only parentless procedures — so within one root every
     * procedure is reachable along exactly one call path and the
     * constructed must-hold lockset is exact, while two roots sharing
     * a tree still exercise cross-thread access classification.
     */
    std::vector<uint32_t> calls;
};

/**
 * A whole-program concurrency sample: a procedure forest with lock
 * idioms and shared-cell accesses, expanded deterministically into
 * assembly by callgraphSource(). Only procedures reachable from a
 * root are emitted (dead code calling a lock procedure would poison
 * the RRM analysis' conservative unknown-mask seed for unreachable
 * labels, which the ground-truth model deliberately excludes). Oracles: (1) the program assembles
 * and rrlint --all reports *exactly* the races the construction
 * implies (site locksets included); (2) running each thread root on
 * machine::Cpu stays inside the per-procedure summary footprints and
 * every runtime shared-cell touch is classified by the lockset pass.
 */
struct CallgraphSample
{
    unsigned numCells = 1; ///< shared `.equ` cells (kCgCellBase + i)
    unsigned numLocks = 0; ///< declared locks (`.lockdef`)
    std::vector<CgProc> procs;
    std::vector<CgRoot> roots;
    uint64_t maxSteps = 20000;
};

// ---------------------------------------------------------------------
// ckpt: snapshot/restore differential over the mt simulator

/**
 * A checkpoint/restore case over one event-model simulation. The
 * oracle runs `spec` straight through, then re-runs it stepping
 * exactly `splitEvents` events (clamped to the run's length), takes an
 * rr.ckpt.v1 snapshot, restores it into a *fresh* MtProcessor and
 * finishes the run there. The restored leg's remaining trace events
 * and final statistics must match the straight run bit-for-bit, and
 * the snapshot re-taken immediately after restore must be
 * byte-identical to the original. Finally the document with one bit
 * flipped (position `corruptPos` % size, bit `corruptBit`) must be
 * rejected with ckpt::Error — never an abort.
 */
struct CkptSample
{
    MtSample spec;           ///< the simulation to checkpoint
    uint64_t splitEvents = 0; ///< event boundary to snapshot at
    uint64_t corruptPos = 0;  ///< byte to corrupt (mod document size)
    uint8_t corruptBit = 0;   ///< bit index (0..7) to flip there
};

/** Any sample, tagged by domain. */
using AnySample =
    std::variant<RelocSample, HeapSample, JsonSample, NumSample,
                 PhaseSample, ProgramSample, MtSample, XsimSample,
                 CallgraphSample, CkptSample>;

/** @return the domain tag of @p sample. */
SampleKind kindOf(const AnySample &sample);

} // namespace rr::fuzz

#endif // RR_FUZZ_SAMPLES_HH
