/**
 * @file
 * A two-pass assembler for RRISC.
 *
 * Syntax:
 *   - one instruction, label, or directive per line;
 *   - comments start with ';', '#', or '//' and run to end of line;
 *   - labels are 'name:' and may share a line with an instruction;
 *   - registers are context-relative: r0 .. r63; 'psw' is accepted by
 *     the mov pseudo-instruction;
 *   - immediates are decimal or 0x-hex, optionally negative;
 *   - memory operands use imm(rs1) form: ld r1, 4(r2);
 *   - branch/jump targets may be labels (PC-relative offsets are
 *     computed automatically) or explicit immediates.
 *
 * Directives:
 *   .org  ADDR       set the next emission address (word address)
 *   .word VALUE      emit a literal 32-bit word
 *   .align N         pad with zeros to an N-word boundary
 *   .equ  NAME, VAL  define an assembly-time constant
 *   .thread LABEL[, RRM]
 *                    declare LABEL as a static thread entry point,
 *                    optionally with its entry relocation mask
 *                    (annotation only: emits nothing; consumed by the
 *                    static analyses, docs/LINT.md)
 *   .lockdef NAME, ACQUIRE, RELEASE
 *                    declare a lock: calls to ACQUIRE take NAME,
 *                    calls to RELEASE drop it (annotation only)
 *
 * Pseudo-instructions:
 *   mov rd, rs       -> addi rd, rs, 0
 *   mov rd, psw      -> mfpsw rd
 *   mov psw, rs      -> mtpsw rs
 *   li  rd, imm      -> lui rd, hi; ori rd, rd, lo   (30-bit range)
 *   la  rd, label    -> li with the label's word address
 *   b   label        -> beq r0, r0, label
 *
 * This is the tool chain the paper assumes exists (Section 2.4): the
 * compiler emits context-relative register numbers starting at 0 and
 * reports each thread's register requirement; here, hand-written
 * assembly plays the role of compiled code.
 */

#ifndef RR_ASSEMBLER_ASSEMBLER_HH
#define RR_ASSEMBLER_ASSEMBLER_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace rr::assembler {

/** One assembly diagnostic. */
struct Diagnostic
{
    int line;            ///< 1-based source line
    std::string message; ///< what went wrong

    /** Render as "line N: message". */
    std::string str() const;
};

/** A `.lockdef NAME, ACQUIRE, RELEASE` annotation. */
struct LockDef
{
    std::string name;     ///< lock name used in lint reports
    uint32_t acquire = 0; ///< entry address of the acquire procedure
    uint32_t release = 0; ///< entry address of the release procedure
    int line = 0;         ///< 1-based source line of the directive
};

/** A `.thread LABEL[, RRM]` annotation: a static thread entry. */
struct ThreadDecl
{
    uint32_t address = 0; ///< entry word address
    bool hasRrm = false;  ///< an explicit entry mask was given
    uint32_t rrm = 0;     ///< entry RRM when hasRrm
    int line = 0;         ///< 1-based source line of the directive
};

/** The result of assembling a source string. */
struct Program
{
    /** Base word address of the image (set by a leading .org). */
    uint32_t base = 0;

    /** The assembled image, one 32-bit word per instruction. */
    std::vector<uint32_t> words;

    /** Label name -> absolute word address. */
    std::map<std::string, uint32_t> symbols;

    /** Word index -> source line (for traces and diagnostics). */
    std::vector<int> lines;

    /** Declared locks, in source order (.lockdef). */
    std::vector<LockDef> lockdefs;

    /** Declared thread entry points, in source order (.thread). */
    std::vector<ThreadDecl> threads;

    /**
     * Addresses of labels whose value is taken as data (by li/la or
     * .word), sorted ascending. The conservative indirect-call target
     * set: a JALR can only reach code whose address was materialised.
     */
    std::vector<uint32_t> addressTaken;

    /** Errors; assembly succeeded iff empty. */
    std::vector<Diagnostic> errors;

    /** @return true when no errors were produced. */
    bool ok() const { return errors.empty(); }

    /** Address of @p label; panics when undefined. */
    uint32_t addressOf(const std::string &label) const;

    /** @return true when @p addr falls inside the assembled image. */
    bool contains(uint32_t addr) const;

    /** Source line of the word at @p addr (0 when unknown/outside). */
    int lineAt(uint32_t addr) const;

    /**
     * Labels defined at @p addr, in lexicographic order. Static
     * analyses use this reverse lookup to name CFG entry points.
     */
    std::vector<std::string> labelsAt(uint32_t addr) const;
};

/**
 * Assemble RRISC source text.
 * Never throws; errors are reported in Program::errors.
 */
Program assemble(const std::string &source);

} // namespace rr::assembler

#endif // RR_ASSEMBLER_ASSEMBLER_HH
