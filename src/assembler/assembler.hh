/**
 * @file
 * A two-pass assembler for RRISC.
 *
 * Syntax:
 *   - one instruction, label, or directive per line;
 *   - comments start with ';', '#', or '//' and run to end of line;
 *   - labels are 'name:' and may share a line with an instruction;
 *   - registers are context-relative: r0 .. r63; 'psw' is accepted by
 *     the mov pseudo-instruction;
 *   - immediates are decimal or 0x-hex, optionally negative;
 *   - memory operands use imm(rs1) form: ld r1, 4(r2);
 *   - branch/jump targets may be labels (PC-relative offsets are
 *     computed automatically) or explicit immediates.
 *
 * Directives:
 *   .org  ADDR       set the next emission address (word address)
 *   .word VALUE      emit a literal 32-bit word
 *   .align N         pad with zeros to an N-word boundary
 *   .equ  NAME, VAL  define an assembly-time constant
 *
 * Pseudo-instructions:
 *   mov rd, rs       -> addi rd, rs, 0
 *   mov rd, psw      -> mfpsw rd
 *   mov psw, rs      -> mtpsw rs
 *   li  rd, imm      -> lui rd, hi; ori rd, rd, lo   (30-bit range)
 *   la  rd, label    -> li with the label's word address
 *   b   label        -> beq r0, r0, label
 *
 * This is the tool chain the paper assumes exists (Section 2.4): the
 * compiler emits context-relative register numbers starting at 0 and
 * reports each thread's register requirement; here, hand-written
 * assembly plays the role of compiled code.
 */

#ifndef RR_ASSEMBLER_ASSEMBLER_HH
#define RR_ASSEMBLER_ASSEMBLER_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace rr::assembler {

/** One assembly diagnostic. */
struct Diagnostic
{
    int line;            ///< 1-based source line
    std::string message; ///< what went wrong

    /** Render as "line N: message". */
    std::string str() const;
};

/** The result of assembling a source string. */
struct Program
{
    /** Base word address of the image (set by a leading .org). */
    uint32_t base = 0;

    /** The assembled image, one 32-bit word per instruction. */
    std::vector<uint32_t> words;

    /** Label name -> absolute word address. */
    std::map<std::string, uint32_t> symbols;

    /** Word index -> source line (for traces and diagnostics). */
    std::vector<int> lines;

    /** Errors; assembly succeeded iff empty. */
    std::vector<Diagnostic> errors;

    /** @return true when no errors were produced. */
    bool ok() const { return errors.empty(); }

    /** Address of @p label; panics when undefined. */
    uint32_t addressOf(const std::string &label) const;

    /** @return true when @p addr falls inside the assembled image. */
    bool contains(uint32_t addr) const;

    /** Source line of the word at @p addr (0 when unknown/outside). */
    int lineAt(uint32_t addr) const;

    /**
     * Labels defined at @p addr, in lexicographic order. Static
     * analyses use this reverse lookup to name CFG entry points.
     */
    std::vector<std::string> labelsAt(uint32_t addr) const;
};

/**
 * Assemble RRISC source text.
 * Never throws; errors are reported in Program::errors.
 */
Program assemble(const std::string &source);

} // namespace rr::assembler

#endif // RR_ASSEMBLER_ASSEMBLER_HH
