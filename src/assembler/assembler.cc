#include "assembler/assembler.hh"

#include <algorithm>
#include <cctype>
#include <optional>
#include <sstream>

#include "base/logging.hh"
#include "isa/instruction.hh"

namespace rr::assembler {

using isa::Format;
using isa::Instruction;
using isa::Opcode;

std::string
Diagnostic::str() const
{
    std::ostringstream os;
    os << "line " << line << ": " << message;
    return os.str();
}

uint32_t
Program::addressOf(const std::string &label) const
{
    const auto it = symbols.find(label);
    rr_assert(it != symbols.end(), "undefined label '", label, "'");
    return it->second;
}

bool
Program::contains(uint32_t addr) const
{
    return addr >= base && addr - base < words.size();
}

int
Program::lineAt(uint32_t addr) const
{
    if (!contains(addr))
        return 0;
    const size_t index = addr - base;
    return index < lines.size() ? lines[index] : 0;
}

std::vector<std::string>
Program::labelsAt(uint32_t addr) const
{
    std::vector<std::string> out;
    for (const auto &[name, sym_addr] : symbols) {
        if (sym_addr == addr)
            out.push_back(name);
    }
    return out;
}

namespace {

/** A parsed source statement: a mnemonic/directive plus operands. */
struct Statement
{
    int line = 0;
    std::string head;                  ///< mnemonic or directive
    std::vector<std::string> operands; ///< raw operand tokens
};

/** Strip comments and surrounding whitespace. */
std::string
cleanLine(const std::string &raw)
{
    std::string s = raw;
    for (const char *marker : {";", "#", "//"}) {
        const auto pos = s.find(marker);
        if (pos != std::string::npos)
            s = s.substr(0, pos);
    }
    const auto begin = s.find_first_not_of(" \t\r");
    if (begin == std::string::npos)
        return "";
    const auto end = s.find_last_not_of(" \t\r");
    return s.substr(begin, end - begin + 1);
}

std::string
toLower(std::string s)
{
    for (char &c : s)
        c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    return s;
}

bool
isIdentStart(char c)
{
    return std::isalpha(static_cast<unsigned char>(c)) || c == '_' ||
           c == '.';
}

bool
isIdentChar(char c)
{
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
           c == '.';
}

/** Split the operand part of a statement on commas. */
std::vector<std::string>
splitOperands(const std::string &text)
{
    std::vector<std::string> out;
    std::string cur;
    for (char c : text) {
        if (c == ',') {
            out.push_back(cleanLine(cur));
            cur.clear();
        } else {
            cur.push_back(c);
        }
    }
    const std::string last = cleanLine(cur);
    if (!last.empty() || !out.empty())
        out.push_back(last);
    return out;
}

/** The assembler proper; one instance per assemble() call. */
class AsmContext
{
  public:
    explicit AsmContext(const std::string &source)
        : source_(source)
    {
    }

    Program run();

  private:
    // ---- shared helpers -------------------------------------------------

    void error(int line, const std::string &msg)
    {
        program_.errors.push_back({line, msg});
    }

    /** Parse "r<N>"; returns nullopt on failure. */
    std::optional<unsigned> parseReg(const std::string &tok) const
    {
        const std::string t = toLower(tok);
        if (t.size() < 2 || t[0] != 'r')
            return std::nullopt;
        unsigned value = 0;
        for (size_t i = 1; i < t.size(); ++i) {
            if (!std::isdigit(static_cast<unsigned char>(t[i])))
                return std::nullopt;
            value = value * 10 + static_cast<unsigned>(t[i] - '0');
            if (value >= isa::maxOperandRegs)
                return std::nullopt;
        }
        return value;
    }

    /** Parse a literal integer (decimal or 0x hex, maybe negative). */
    static std::optional<int64_t> parseIntLiteral(const std::string &tok)
    {
        if (tok.empty())
            return std::nullopt;
        size_t pos = 0;
        bool negative = false;
        if (tok[pos] == '-' || tok[pos] == '+') {
            negative = tok[pos] == '-';
            ++pos;
        }
        if (pos >= tok.size())
            return std::nullopt;
        int base = 10;
        if (tok.size() - pos > 2 && tok[pos] == '0' &&
            (tok[pos + 1] == 'x' || tok[pos + 1] == 'X')) {
            base = 16;
            pos += 2;
        }
        int64_t value = 0;
        for (; pos < tok.size(); ++pos) {
            const char c = static_cast<char>(
                std::tolower(static_cast<unsigned char>(tok[pos])));
            int digit;
            if (c >= '0' && c <= '9')
                digit = c - '0';
            else if (base == 16 && c >= 'a' && c <= 'f')
                digit = c - 'a' + 10;
            else
                return std::nullopt;
            value = value * base + digit;
        }
        return negative ? -value : value;
    }

    /**
     * Resolve an expression token: integer literal, .equ constant, or
     * label. Only valid during pass 2 (labels must be known).
     */
    std::optional<int64_t> resolveValue(const std::string &tok) const
    {
        if (const auto lit = parseIntLiteral(tok))
            return lit;
        const auto eq = constants_.find(tok);
        if (eq != constants_.end())
            return eq->second;
        const auto sym = program_.symbols.find(tok);
        if (sym != program_.symbols.end())
            return static_cast<int64_t>(sym->second);
        return std::nullopt;
    }

    /**
     * Record @p tok in Program::addressTaken when it resolves through
     * the symbol table (its address escapes into a register or data
     * word, making it a potential indirect-jump target).
     */
    void noteAddressTaken(const std::string &tok)
    {
        if (parseIntLiteral(tok) || constants_.count(tok))
            return;
        const auto sym = program_.symbols.find(tok);
        if (sym != program_.symbols.end())
            program_.addressTaken.push_back(sym->second);
    }

    // ---- passes ---------------------------------------------------------

    /** Parse lines into statements, recording labels (pass 1). */
    void parseAndLayout();

    /** Size (in words) that @p stmt will emit. */
    unsigned statementSize(const Statement &stmt, int line);

    /** Encode statements into program words (pass 2). */
    void emitAll();

    void emitWord(uint32_t word, int line)
    {
        rr_assert(cursor_ >= program_.base, "cursor before base");
        const size_t index = cursor_ - program_.base;
        if (program_.words.size() <= index) {
            program_.words.resize(index + 1, 0);
            program_.lines.resize(index + 1, 0);
        }
        program_.words[index] = word;
        program_.lines[index] = line;
        ++cursor_;
    }

    void emitInst(const Instruction &inst, int line)
    {
        emitWord(isa::encode(inst), line);
    }

    void emitStatement(const Statement &stmt);
    void emitInstruction(const Statement &stmt, Opcode op);
    void emitPseudo(const Statement &stmt);

    const std::string &source_;
    Program program_;
    std::vector<Statement> statements_;
    std::map<std::string, int64_t> constants_;
    uint32_t cursor_ = 0;
    bool baseSet_ = false;
};

void
AsmContext::parseAndLayout()
{
    std::istringstream in(source_);
    std::string raw;
    int line_no = 0;
    uint32_t addr = 0;

    while (std::getline(in, raw)) {
        ++line_no;
        std::string text = cleanLine(raw);

        // Peel off any leading labels.
        while (!text.empty()) {
            size_t i = 0;
            if (!isIdentStart(text[0]))
                break;
            while (i < text.size() && isIdentChar(text[i]))
                ++i;
            if (i >= text.size() || text[i] != ':')
                break;
            const std::string label = text.substr(0, i);
            if (program_.symbols.count(label)) {
                error(line_no, "duplicate label '" + label + "'");
            } else {
                program_.symbols[label] = addr;
            }
            text = cleanLine(text.substr(i + 1));
        }
        if (text.empty())
            continue;

        // Split head / operands.
        size_t head_end = 0;
        while (head_end < text.size() &&
               !std::isspace(static_cast<unsigned char>(text[head_end]))) {
            ++head_end;
        }
        Statement stmt;
        stmt.line = line_no;
        stmt.head = toLower(text.substr(0, head_end));
        stmt.operands = splitOperands(cleanLine(text.substr(head_end)));

        // Directives that change layout are handled here so that label
        // addresses are known by the end of pass 1.
        if (stmt.head == ".org") {
            if (stmt.operands.size() != 1) {
                error(line_no, ".org expects one operand");
                continue;
            }
            const auto v = parseIntLiteral(stmt.operands[0]);
            if (!v || *v < 0) {
                error(line_no, ".org expects a nonnegative literal");
                continue;
            }
            const auto target = static_cast<uint32_t>(*v);
            if (!baseSet_ && statements_.empty()) {
                program_.base = target;
                baseSet_ = true;
            } else if (target < addr) {
                error(line_no, ".org cannot move backwards");
                continue;
            }
            addr = target;
            statements_.push_back(stmt);
            continue;
        }
        if (stmt.head == ".equ") {
            if (stmt.operands.size() != 2) {
                error(line_no, ".equ expects NAME, VALUE");
                continue;
            }
            const auto v = parseIntLiteral(stmt.operands[1]);
            if (!v) {
                error(line_no, ".equ value must be a literal");
                continue;
            }
            constants_[stmt.operands[0]] = *v;
            continue;
        }
        if (stmt.head == ".align") {
            if (stmt.operands.size() != 1) {
                error(line_no, ".align expects one operand");
                continue;
            }
            const auto v = parseIntLiteral(stmt.operands[0]);
            if (!v || *v <= 0) {
                error(line_no, ".align expects a positive literal");
                continue;
            }
            const auto align = static_cast<uint32_t>(*v);
            addr = (addr + align - 1) / align * align;
            statements_.push_back(stmt);
            continue;
        }

        addr += statementSize(stmt, line_no);
        statements_.push_back(stmt);

        // Re-resolve labels that were defined at this address before
        // the statement (already done above; nothing further needed).
    }

    // Fix label addresses: labels were recorded against the running
    // address *before* their statement, which is correct.
}

unsigned
AsmContext::statementSize(const Statement &stmt, int line)
{
    if (stmt.head == ".word")
        return 1;
    if (stmt.head == ".thread" || stmt.head == ".lockdef")
        return 0; // annotations: resolved in pass 2, emit nothing
    if (stmt.head == "li" || stmt.head == "la")
        return 2;
    if (stmt.head == "mov" || stmt.head == "b")
        return 1;
    Opcode op;
    if (isa::opcodeFromMnemonic(stmt.head, op))
        return 1;
    error(line, "unknown mnemonic or directive '" + stmt.head + "'");
    return 0;
}

void
AsmContext::emitAll()
{
    cursor_ = program_.base;
    for (const auto &stmt : statements_)
        emitStatement(stmt);
}

void
AsmContext::emitStatement(const Statement &stmt)
{
    const int line = stmt.line;

    if (stmt.head == ".org") {
        const auto v = parseIntLiteral(stmt.operands[0]);
        const auto target = static_cast<uint32_t>(*v);
        while (cursor_ < target)
            emitWord(0, line);
        return;
    }
    if (stmt.head == ".align") {
        const auto v = parseIntLiteral(stmt.operands[0]);
        const auto align = static_cast<uint32_t>(*v);
        while (cursor_ % align != 0)
            emitWord(0, line);
        return;
    }
    if (stmt.head == ".word") {
        if (stmt.operands.size() != 1) {
            error(line, ".word expects one operand");
            return;
        }
        const auto v = resolveValue(stmt.operands[0]);
        if (!v) {
            error(line, "cannot resolve '" + stmt.operands[0] + "'");
            emitWord(0, line);
            return;
        }
        noteAddressTaken(stmt.operands[0]);
        emitWord(static_cast<uint32_t>(*v), line);
        return;
    }
    if (stmt.head == ".thread") {
        if (stmt.operands.empty() || stmt.operands.size() > 2) {
            error(line, ".thread expects LABEL[, RRM]");
            return;
        }
        const auto entry = resolveValue(stmt.operands[0]);
        if (!entry || *entry < 0) {
            error(line, "cannot resolve '" + stmt.operands[0] + "'");
            return;
        }
        ThreadDecl decl;
        decl.address = static_cast<uint32_t>(*entry);
        decl.line = line;
        if (stmt.operands.size() == 2) {
            const auto rrm = resolveValue(stmt.operands[1]);
            if (!rrm || *rrm < 0) {
                error(line,
                      "cannot resolve '" + stmt.operands[1] + "'");
                return;
            }
            decl.hasRrm = true;
            decl.rrm = static_cast<uint32_t>(*rrm);
        }
        program_.threads.push_back(decl);
        return;
    }
    if (stmt.head == ".lockdef") {
        if (stmt.operands.size() != 3) {
            error(line, ".lockdef expects NAME, ACQUIRE, RELEASE");
            return;
        }
        LockDef def;
        def.name = stmt.operands[0];
        def.line = line;
        const auto acquire = resolveValue(stmt.operands[1]);
        const auto release = resolveValue(stmt.operands[2]);
        if (!acquire || *acquire < 0) {
            error(line, "cannot resolve '" + stmt.operands[1] + "'");
            return;
        }
        if (!release || *release < 0) {
            error(line, "cannot resolve '" + stmt.operands[2] + "'");
            return;
        }
        def.acquire = static_cast<uint32_t>(*acquire);
        def.release = static_cast<uint32_t>(*release);
        program_.lockdefs.push_back(def);
        return;
    }

    if (stmt.head == "mov" || stmt.head == "li" || stmt.head == "la" ||
        stmt.head == "b") {
        emitPseudo(stmt);
        return;
    }

    Opcode op;
    if (!isa::opcodeFromMnemonic(stmt.head, op)) {
        // Already reported in pass 1.
        return;
    }
    emitInstruction(stmt, op);
}

void
AsmContext::emitPseudo(const Statement &stmt)
{
    const int line = stmt.line;
    const auto &ops = stmt.operands;

    if (stmt.head == "mov") {
        if (ops.size() != 2) {
            error(line, "mov expects two operands");
            return;
        }
        const bool dst_psw = toLower(ops[0]) == "psw";
        const bool src_psw = toLower(ops[1]) == "psw";
        if (dst_psw && src_psw) {
            error(line, "mov psw, psw is meaningless");
            return;
        }
        if (dst_psw) {
            const auto rs = parseReg(ops[1]);
            if (!rs) {
                error(line, "bad register '" + ops[1] + "'");
                return;
            }
            Instruction inst;
            inst.op = Opcode::MTPSW;
            inst.rs1 = static_cast<uint8_t>(*rs);
            emitInst(inst, line);
            return;
        }
        const auto rd = parseReg(ops[0]);
        if (!rd) {
            error(line, "bad register '" + ops[0] + "'");
            return;
        }
        if (src_psw) {
            Instruction inst;
            inst.op = Opcode::MFPSW;
            inst.rd = static_cast<uint8_t>(*rd);
            emitInst(inst, line);
            return;
        }
        const auto rs = parseReg(ops[1]);
        if (!rs) {
            error(line, "bad register '" + ops[1] + "'");
            return;
        }
        emitInst(isa::makeI(Opcode::ADDI, *rd, *rs, 0), line);
        return;
    }

    if (stmt.head == "li" || stmt.head == "la") {
        if (ops.size() != 2) {
            error(line, stmt.head + " expects two operands");
            return;
        }
        const auto rd = parseReg(ops[0]);
        if (!rd) {
            error(line, "bad register '" + ops[0] + "'");
            return;
        }
        const auto v = resolveValue(ops[1]);
        if (!v) {
            error(line, "cannot resolve '" + ops[1] + "'");
            return;
        }
        if (*v < 0 || *v >= (int64_t{1} << 30)) {
            error(line, "li/la value out of 30-bit range");
            return;
        }
        noteAddressTaken(ops[1]);
        const auto value = static_cast<uint32_t>(*v);
        emitInst(isa::makeJ(Opcode::LUI, *rd,
                            static_cast<int32_t>(value >> 12)),
                 line);
        emitInst(isa::makeI(Opcode::ORI, *rd, *rd,
                            static_cast<int32_t>(value & 0xfff)),
                 line);
        return;
    }

    if (stmt.head == "b") {
        if (ops.size() != 1) {
            error(line, "b expects one operand");
            return;
        }
        const auto v = resolveValue(ops[0]);
        if (!v) {
            error(line, "cannot resolve '" + ops[0] + "'");
            return;
        }
        const int64_t offset = *v - static_cast<int64_t>(cursor_);
        emitInst(isa::makeB(Opcode::BEQ, 0, 0,
                            static_cast<int32_t>(offset)),
                 line);
        return;
    }

    rr_panic("unhandled pseudo '", stmt.head, "'");
}

void
AsmContext::emitInstruction(const Statement &stmt, Opcode op)
{
    const int line = stmt.line;
    const auto &ops = stmt.operands;
    const Format fmt = isa::formatOf(op);

    auto need = [&](size_t n) {
        if (ops.size() != n) {
            std::ostringstream os;
            os << stmt.head << " expects " << n << " operand(s), got "
               << ops.size();
            error(line, os.str());
            return false;
        }
        return true;
    };
    auto get_reg = [&](const std::string &tok,
                       unsigned &out) {
        const auto r = parseReg(tok);
        if (!r) {
            error(line, "bad register '" + tok + "'");
            return false;
        }
        out = *r;
        return true;
    };
    auto get_value = [&](const std::string &tok, int64_t &out) {
        const auto v = resolveValue(tok);
        if (!v) {
            error(line, "cannot resolve '" + tok + "'");
            return false;
        }
        out = *v;
        return true;
    };

    Instruction inst;
    inst.op = op;

    switch (fmt) {
      case Format::None:
        if (!need(0))
            return;
        break;

      case Format::R3: {
        if (!need(3))
            return;
        unsigned rd, rs1, rs2;
        if (!get_reg(ops[0], rd) || !get_reg(ops[1], rs1) ||
            !get_reg(ops[2], rs2)) {
            return;
        }
        inst = isa::makeR3(op, rd, rs1, rs2);
        break;
      }

      case Format::R2: {
        if (!need(2))
            return;
        unsigned rd, rs1;
        if (!get_reg(ops[0], rd) || !get_reg(ops[1], rs1))
            return;
        inst.rd = static_cast<uint8_t>(rd);
        inst.rs1 = static_cast<uint8_t>(rs1);
        break;
      }

      case Format::R1D: {
        if (!need(1))
            return;
        unsigned rd;
        if (!get_reg(ops[0], rd))
            return;
        inst.rd = static_cast<uint8_t>(rd);
        break;
      }

      case Format::R1S: {
        if (!need(1))
            return;
        unsigned rs1;
        if (!get_reg(ops[0], rs1))
            return;
        inst.rs1 = static_cast<uint8_t>(rs1);
        break;
      }

      case Format::I: {
        // Memory form "rd, imm(rs1)" for ld/st; otherwise
        // "rd, rs1, imm"; jalr also accepts "rd, rs1" with imm 0.
        if (op == Opcode::LD || op == Opcode::ST) {
            if (!need(2))
                return;
            unsigned rd;
            if (!get_reg(ops[0], rd))
                return;
            const auto open = ops[1].find('(');
            const auto close = ops[1].find(')');
            if (open == std::string::npos || close == std::string::npos ||
                close < open) {
                error(line, "expected imm(rs1) operand");
                return;
            }
            const std::string imm_text =
                open == 0 ? "0" : ops[1].substr(0, open);
            const std::string reg_text =
                ops[1].substr(open + 1, close - open - 1);
            unsigned rs1;
            int64_t imm;
            if (!get_reg(reg_text, rs1) || !get_value(imm_text, imm))
                return;
            inst = isa::makeI(op, rd, rs1,
                              static_cast<int32_t>(imm));
            break;
        }
        if (op == Opcode::JALR && ops.size() == 2) {
            unsigned rd, rs1;
            if (!get_reg(ops[0], rd) || !get_reg(ops[1], rs1))
                return;
            inst = isa::makeI(op, rd, rs1, 0);
            break;
        }
        if (!need(3))
            return;
        unsigned rd, rs1;
        int64_t imm;
        if (!get_reg(ops[0], rd) || !get_reg(ops[1], rs1) ||
            !get_value(ops[2], imm)) {
            return;
        }
        inst = isa::makeI(op, rd, rs1, static_cast<int32_t>(imm));
        break;
      }

      case Format::B: {
        if (!need(3))
            return;
        unsigned rs1, rs2;
        int64_t target;
        if (!get_reg(ops[0], rs1) || !get_reg(ops[1], rs2) ||
            !get_value(ops[2], target)) {
            return;
        }
        // Labels and absolute values become PC-relative offsets; raw
        // literals small enough to be offsets are used as-is only via
        // .equ, so treat every resolved value as an absolute target
        // unless it parses as a plain literal.
        int64_t offset;
        if (parseIntLiteral(ops[2]))
            offset = target;
        else
            offset = target - static_cast<int64_t>(cursor_);
        inst = isa::makeB(op, rs1, rs2, static_cast<int32_t>(offset));
        break;
      }

      case Format::J: {
        if (!need(2))
            return;
        unsigned rd;
        int64_t target;
        if (!get_reg(ops[0], rd) || !get_value(ops[1], target))
            return;
        int64_t offset;
        if (parseIntLiteral(ops[1]))
            offset = target;
        else
            offset = target - static_cast<int64_t>(cursor_);
        inst = isa::makeJ(op, rd, static_cast<int32_t>(offset));
        break;
      }

      case Format::UI: {
        if (!need(2))
            return;
        unsigned rd;
        int64_t imm;
        if (!get_reg(ops[0], rd) || !get_value(ops[1], imm))
            return;
        inst = isa::makeJ(op, rd, static_cast<int32_t>(imm));
        break;
      }

      case Format::Imm: {
        if (!need(1))
            return;
        int64_t imm;
        if (!get_value(ops[0], imm))
            return;
        inst.imm = static_cast<int32_t>(imm);
        break;
      }

      case Format::Rs1Imm: {
        if (!need(2))
            return;
        unsigned rs1;
        int64_t imm;
        if (!get_reg(ops[0], rs1) || !get_value(ops[1], imm))
            return;
        inst.rs1 = static_cast<uint8_t>(rs1);
        inst.imm = static_cast<int32_t>(imm);
        break;
      }
    }

    emitInst(inst, line);
}

Program
AsmContext::run()
{
    parseAndLayout();
    if (program_.errors.empty())
        emitAll();
    std::sort(program_.addressTaken.begin(),
              program_.addressTaken.end());
    program_.addressTaken.erase(
        std::unique(program_.addressTaken.begin(),
                    program_.addressTaken.end()),
        program_.addressTaken.end());
    return std::move(program_);
}

} // namespace

Program
assemble(const std::string &source)
{
    AsmContext ctx(source);
    return ctx.run();
}

} // namespace rr::assembler
